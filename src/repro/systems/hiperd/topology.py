"""Topology analysis of HiPer-D systems.

Operator-facing structural views that complement the robustness metric:

* :func:`path_slack_table` — per sensor-to-actuator path, the original
  latency, its budget, and the relative slack (the metric's critical
  feature is always a minimal-slack path when latency binds);
* :func:`bottleneck_stages` — applications ranked by per-data-set
  utilisation of their driving period (throughput pressure);
* :func:`path_overlap_matrix` — how many applications each pair of paths
  shares; overlapping paths fail together, which is why the per-feature
  radii of overlapping latency features are correlated.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SpecificationError
from repro.systems.hiperd.constraints import QoSSpec, _driving_period
from repro.systems.hiperd.model import HiPerDSystem
from repro.utils.tables import format_table

__all__ = ["path_slack_table", "bottleneck_stages", "path_overlap_matrix",
           "topology_report"]


def path_slack_table(system: HiPerDSystem, qos: QoSSpec
                     ) -> list[tuple[tuple[str, ...], float, float, float]]:
    """Per-path ``(path, latency, budget, relative slack)`` rows.

    Relative slack is ``budget/latency - 1``; rows are sorted tightest
    first.  Absolute per-path limits in the QoS override the relative
    budget, exactly as the feature builder does.
    """
    rows = []
    for path in system.sensor_actuator_paths():
        latency = system.path_latency(path)
        budget = qos.absolute_latency_limits.get(path)
        if budget is None:
            budget = qos.latency_slack * latency
        rows.append((path, latency, float(budget), budget / latency - 1.0))
    rows.sort(key=lambda r: r[3])
    return rows


def bottleneck_stages(system: HiPerDSystem
                      ) -> list[tuple[str, float, float, float]]:
    """Applications ranked by throughput pressure.

    Returns ``(app, computation time, driving period, utilisation)`` rows
    sorted by descending utilisation (``T_comp / period``); utilisation
    close to 1 means the stage barely keeps up with its sensors.
    """
    rows = []
    for app in system.applications:
        t = system.computation_time(app.name)
        period = _driving_period(system, app.name)
        rows.append((app.name, t, period, t / period))
    rows.sort(key=lambda r: -r[3])
    return rows


def path_overlap_matrix(system: HiPerDSystem) -> np.ndarray:
    """``(n_paths, n_paths)`` counts of shared applications between paths.

    The diagonal holds each path's own application count.  Heavily
    overlapping paths share fate: a single stage's slowdown moves all
    their latency features at once.
    """
    paths = system.sensor_actuator_paths()
    if not paths:
        raise SpecificationError("system has no sensor-to-actuator paths")
    app_names = {a.name for a in system.applications}
    sets = [frozenset(n for n in p if n in app_names) for p in paths]
    n = len(sets)
    overlap = np.zeros((n, n), dtype=int)
    for i in range(n):
        for j in range(n):
            overlap[i, j] = len(sets[i] & sets[j])
    return overlap


def topology_report(system: HiPerDSystem, qos: QoSSpec, *,
                    top_k: int = 5) -> str:
    """A combined text report: tightest paths and busiest stages."""
    slack_rows = [["->".join(p), lat, budget, f"{slack:.1%}"]
                  for p, lat, budget, slack in
                  path_slack_table(system, qos)[:top_k]]
    stage_rows = [[name, t, period, f"{util:.1%}"]
                  for name, t, period, util in
                  bottleneck_stages(system)[:top_k]]
    return "\n\n".join([
        format_table(["path", "latency", "budget", "slack"], slack_rows,
                     title=f"tightest {len(slack_rows)} paths"),
        format_table(["application", "T_comp", "period", "utilisation"],
                     stage_rows,
                     title=f"busiest {len(stage_rows)} stages"),
    ])
