"""HiPer-D-like continuously-running distributed system substrate.

The motivating system of the IPDPS 2005 paper (DARPA Quorum's HiPer-D): a
set of sensors streams data sets into a DAG of continuously-running
applications on dedicated heterogeneous machines; outputs drive actuators.
The allocation must satisfy **throughput** constraints (every application
and message keeps up with its sensors' data-set period), **latency**
constraints (every sensor-to-actuator path completes within a deadline),
and optional per-machine **utilisation** constraints.

Three *kinds* of perturbation parameters act on these features — exactly
the multi-kind setting the paper addresses:

* ``loads`` — sensor loads (objects per data set),
* ``exec`` — per-application unit execution times (seconds per object),
* ``msgsize`` — message sizes (bytes per data set).

Computation times are bilinear (load x unit-time), so with both kinds free
the features are genuinely *quadratic* and the boundary sets are curved —
the situation sketched in the paper's Figure 1.
"""

from repro.systems.hiperd.model import (
    Actuator,
    Application,
    HiPerDSystem,
    Machine,
    Message,
    Sensor,
)
from repro.systems.hiperd.timing import KINDS, FlatLayout, MappingAssembler
from repro.systems.hiperd.constraints import (
    QoSSpec,
    build_analysis,
    build_feature_specs,
)
from repro.systems.hiperd.generator import (
    HiPerDGenerationSpec,
    generate_hiperd_system,
)
from repro.systems.hiperd.simulate import (
    DataflowRecord,
    simulate_dataflow,
    steady_state_features,
)
from repro.systems.hiperd.traces import (
    ramp_trace,
    random_walk_trace,
    sinusoid_trace,
    spike_trace,
)
from repro.systems.hiperd.failures import (
    LinkFailureAnalysis,
    critical_links,
    link_failure_radius,
    system_with_failed_links,
    used_link_pairs,
)
from repro.systems.hiperd.placement import (
    PlacementStep,
    improve_placement,
    placement_rho,
)
from repro.systems.hiperd.heuristics import (
    PLACEMENT_HEURISTICS,
    balanced_work_placement,
    colocate_paths_placement,
    fastest_machine_placement,
    random_placement,
    replace_allocation,
)
from repro.systems.hiperd.topology import (
    bottleneck_stages,
    path_overlap_matrix,
    path_slack_table,
    topology_report,
)

__all__ = [
    "Machine",
    "Sensor",
    "Application",
    "Actuator",
    "Message",
    "HiPerDSystem",
    "KINDS",
    "FlatLayout",
    "MappingAssembler",
    "QoSSpec",
    "build_feature_specs",
    "build_analysis",
    "HiPerDGenerationSpec",
    "generate_hiperd_system",
    "DataflowRecord",
    "simulate_dataflow",
    "steady_state_features",
    "ramp_trace",
    "spike_trace",
    "random_walk_trace",
    "sinusoid_trace",
    "LinkFailureAnalysis",
    "used_link_pairs",
    "system_with_failed_links",
    "critical_links",
    "link_failure_radius",
    "PlacementStep",
    "placement_rho",
    "improve_placement",
    "PLACEMENT_HEURISTICS",
    "replace_allocation",
    "balanced_work_placement",
    "fastest_machine_placement",
    "colocate_paths_placement",
    "random_placement",
    "path_slack_table",
    "bottleneck_stages",
    "path_overlap_matrix",
    "topology_report",
]
