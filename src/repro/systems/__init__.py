"""Substrate systems the papers evaluate the robustness metric on.

* :mod:`repro.systems.independent` — independent-task heterogeneous
  computing: ETC matrices, allocations, and makespan-style features (the
  running example of the companion TPDS 2004 paper);
* :mod:`repro.systems.hiperd` — a HiPer-D-like continuously-running
  sensor/application DAG system with throughput, latency, and utilisation
  constraints and *multiple kinds* of perturbation parameters (sensor
  loads, execution times, message sizes) — the motivating system of the
  IPDPS 2005 paper;
* :mod:`repro.systems.heuristics` — resource-allocation heuristics used as
  comparison baselines (OLB, MET, MCT, min-min, max-min, sufferage,
  random, and robustness-maximising local search / simulated annealing /
  a genetic algorithm);
* :mod:`repro.systems.selfhost` — the self-hosting workload: the
  library's own :class:`~repro.resilience.supervisor.SupervisedExecutor`
  dispatch policy modelled as an allocation with two perturbation kinds
  (task costs, worker failure rates), closing the analytic-to-empirical
  loop via :mod:`repro.resilience.calibrate`.
"""

from repro.systems.independent import (
    Allocation,
    EtcMatrix,
    MakespanSystem,
    generate_etc_gamma,
    generate_etc_range_based,
)
from repro.systems.hiperd import HiPerDSystem, generate_hiperd_system
from repro.systems.selfhost import DispatchModel, SelfhostSystem

__all__ = [
    "Allocation",
    "EtcMatrix",
    "MakespanSystem",
    "generate_etc_gamma",
    "generate_etc_range_based",
    "HiPerDSystem",
    "generate_hiperd_system",
    "DispatchModel",
    "SelfhostSystem",
]
