"""Wiring the independent-task system into the FePIA framework.

The companion paper's makespan example, reproduced exactly:

* **Perturbation parameter** ``pi`` = the vector of actual task execution
  times on the machines they were assigned to; original values come from
  the ETC matrix (a single *kind* — all elements are seconds).
* **Performance features** ``phi_j`` = the finish time of each machine
  ``F_j = sum_{i on j} pi_i`` — a linear (0/1-coefficient) function of the
  execution times.
* **Robustness requirement**: the actual makespan must not exceed
  ``beta`` times the predicted makespan, i.e. every machine finish time is
  bounded by ``tau = beta * makespan_orig``.

With the Euclidean norm and no physical bounds, the analytic radius of
machine ``j`` is ``(tau - F_j^orig) / sqrt(n_j)`` with ``n_j`` the number
of tasks on the machine — the well-known closed form from the TPDS 2004
paper, which the tests verify against the generic solver.

The class also supports a **two-kind** variant for the IPDPS'05 setting:
an optional per-machine background-load parameter (different unit) that
adds ``F_j = sum pi_i + b_j`` — exercising the weighting schemes on this
substrate too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping, MaxMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import IdentityWeighting, WeightingScheme
from repro.exceptions import SpecificationError
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix

__all__ = ["MakespanSystem"]


@dataclass
class MakespanSystem:
    """An (ETC, allocation) pair exposing FePIA robustness analyses.

    Attributes
    ----------
    etc:
        The estimated-time-to-compute matrix.
    allocation:
        The resource allocation ``mu`` under study.
    background_loads:
        Optional per-machine constant loads of a *different kind* (e.g.
        OS/daemon overhead measured in load units with a seconds-per-unit
        conversion of 1); enables the multi-kind variant.
    """

    etc: EtcMatrix
    allocation: Allocation
    background_loads: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        # Allocation validates shape compatibility against the ETC.
        self.allocation._check_etc(self.etc)
        if self.background_loads is not None:
            b = np.asarray(self.background_loads, dtype=np.float64)
            if b.shape != (self.allocation.n_machines,):
                raise SpecificationError(
                    f"background_loads must have shape "
                    f"({self.allocation.n_machines},), got {b.shape}")
            if np.any(b < 0):
                raise SpecificationError("background_loads must be >= 0")
            self.background_loads = b

    # ------------------------------------------------------------------
    # plain performance quantities
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return self.allocation.n_tasks

    @property
    def n_machines(self) -> int:
        """Number of machines."""
        return self.allocation.n_machines

    def original_times(self) -> np.ndarray:
        """Original execution times ``pi_orig`` (ETC on assigned machines)."""
        return self.allocation.assigned_times(self.etc)

    def machine_finish_times(self) -> np.ndarray:
        """Original machine finish times (plus background loads if any)."""
        loads = self.allocation.machine_loads(self.etc)
        if self.background_loads is not None:
            loads = loads + self.background_loads
        return loads

    def makespan(self) -> float:
        """Original makespan (max machine finish time)."""
        return float(self.machine_finish_times().max())

    # ------------------------------------------------------------------
    # FePIA wiring
    # ------------------------------------------------------------------
    def execution_time_parameter(self) -> PerturbationParameter:
        """The execution-time perturbation parameter (seconds)."""
        return PerturbationParameter.nonnegative(
            "exec_times", self.original_times(), unit="s",
            description="actual task execution times on assigned machines")

    def background_parameter(self) -> PerturbationParameter:
        """The background-load parameter (load units), multi-kind variant."""
        if self.background_loads is None:
            raise SpecificationError(
                "system has no background loads; construct MakespanSystem "
                "with background_loads to use the multi-kind variant")
        return PerturbationParameter.nonnegative(
            "background", self.background_loads, unit="load",
            description="per-machine background load")

    def finish_time_specs(self, beta: float | None = None,
                          *, tau: float | None = None,
                          include_background: bool = False
                          ) -> list[FeatureSpec]:
        """Per-machine finish-time features bounded by a makespan limit.

        The limit is either relative (``tau = beta * makespan_orig``, the
        paper's form) or an absolute ``tau`` — the latter is what makes
        robustness comparisons across *different* allocations fair (all
        candidates are held to the same deadline).

        Machines with no tasks (and zero background) are skipped: their
        finish time is constant zero and contributes no constraint.

        Parameters
        ----------
        beta:
            Relative robustness requirement, ``> 1``; mutually exclusive
            with ``tau``.
        tau:
            Absolute makespan limit in seconds; must exceed the original
            makespan.
        include_background:
            Lay the mappings out over ``[exec_times, background]`` instead
            of ``[exec_times]`` alone.
        """
        tau = self._resolve_tau(beta, tau)
        n = self.n_tasks
        dim = n + (self.n_machines if include_background else 0)
        specs: list[FeatureSpec] = []
        for j in range(self.n_machines):
            coeffs = np.zeros(dim)
            coeffs[self.allocation.tasks_on(j)] = 1.0
            if include_background:
                coeffs[n + j] = 1.0
            if not np.any(coeffs):
                continue
            mapping = LinearMapping(coeffs)
            feature = PerformanceFeature(
                name=f"finish_time_m{j}",
                bounds=ToleranceBounds.upper(tau),
                unit="s",
                description=f"finish time of machine {j}")
            specs.append(FeatureSpec(feature, mapping))
        if not specs:
            raise SpecificationError("no machine has any load; nothing to bound")
        return specs

    def makespan_spec(self, beta: float | None = None,
                      *, tau: float | None = None,
                      include_background: bool = False) -> FeatureSpec:
        """The makespan itself as a single max-of-finish-times feature.

        Where :meth:`finish_time_specs` bounds each machine separately,
        this folds them into one :class:`~repro.core.mappings.MaxMapping`
        feature ``max_j F_j <= tau`` — the natural substrate for
        degradation curves (one feature, one curve) and for exercising
        the piecewise-linear solver paths on a real system.
        """
        tau = self._resolve_tau(beta, tau)
        components = [spec.mapping for spec in self.finish_time_specs(
            tau=tau, include_background=include_background)]
        feature = PerformanceFeature(
            name="makespan",
            bounds=ToleranceBounds.upper(tau),
            unit="s",
            description="max machine finish time")
        return FeatureSpec(feature, MaxMapping(components))

    def makespan_analysis(
        self,
        beta: float | None = None,
        *,
        tau: float | None = None,
        weighting: WeightingScheme | None = None,
        include_background: bool = False,
        respect_physical_bounds: bool = False,
        method: str = "auto",
        norm: float = 2,
        seed=None,
    ) -> RobustnessAnalysis:
        """FePIA analysis over the single max-feature :meth:`makespan_spec`.

        Same knobs as :meth:`robustness_analysis` plus ``method`` (the
        max mapping is not analytic, so the solver choice matters; the
        CLI's curve benchmark forces ``"bisection"``).
        """
        params = [self.execution_time_parameter()]
        if include_background:
            params.append(self.background_parameter())
        if weighting is None:
            weighting = IdentityWeighting()
        spec = self.makespan_spec(beta, tau=tau,
                                  include_background=include_background)
        return RobustnessAnalysis(
            [spec], params, weighting=weighting,
            respect_physical_bounds=respect_physical_bounds,
            method=method, norm=norm, seed=seed)

    def _resolve_tau(self, beta: float | None, tau: float | None) -> float:
        """Validate and resolve the (beta | tau) makespan-limit choice."""
        if (beta is None) == (tau is None):
            raise SpecificationError(
                "specify exactly one of beta (relative) or tau (absolute)")
        if beta is not None:
            if beta <= 1.0:
                raise SpecificationError(f"beta must be > 1, got {beta}")
            return beta * self.makespan()
        if tau <= self.makespan():
            raise SpecificationError(
                f"tau={tau:g} must exceed the original makespan "
                f"{self.makespan():g}; the allocation is infeasible under it")
        return float(tau)

    def robustness_analysis(
        self,
        beta: float | None = None,
        *,
        tau: float | None = None,
        weighting: WeightingScheme | None = None,
        include_background: bool = False,
        respect_physical_bounds: bool = False,
        norm: float = 2,
        seed=None,
    ) -> RobustnessAnalysis:
        """Build the full FePIA analysis for this allocation.

        Parameters
        ----------
        beta:
            Relative makespan requirement (``tau = beta * makespan_orig``);
            mutually exclusive with ``tau``.
        tau:
            Absolute makespan limit (for cross-allocation comparisons).
        weighting:
            P-space weighting; defaults to identity for the single-kind
            case (matching the 2004 paper) and must be a multi-kind scheme
            when ``include_background`` is set.
        include_background:
            Include the per-machine background-load parameter (second kind).
        respect_physical_bounds:
            Restrict boundary searches to non-negative times/loads.
        norm:
            Distance norm.
        seed:
            Solver seed.
        """
        params = [self.execution_time_parameter()]
        if include_background:
            params.append(self.background_parameter())
        if weighting is None:
            weighting = IdentityWeighting()
        specs = self.finish_time_specs(beta, tau=tau,
                                       include_background=include_background)
        return RobustnessAnalysis(
            specs, params, weighting=weighting,
            respect_physical_bounds=respect_physical_bounds,
            norm=norm, seed=seed)

    def analytic_radii(self, beta: float | None = None,
                       *, tau: float | None = None) -> np.ndarray:
        """Closed-form single-kind radii ``(tau - F_j)/sqrt(n_j)`` per machine.

        The TPDS 2004 closed form for the identity-weighted Euclidean case
        (machines with no tasks give ``inf``).  Used to validate the
        generic solver on this substrate.
        """
        tau = self._resolve_tau(beta, tau)
        finish = self.machine_finish_times()
        radii = np.empty(self.n_machines)
        for j in range(self.n_machines):
            n_j = self.allocation.tasks_on(j).size
            if n_j == 0:
                radii[j] = math.inf
            else:
                radii[j] = (tau - finish[j]) / math.sqrt(n_j)
        return radii

    def analytic_rho(self, beta: float | None = None,
                     *, tau: float | None = None) -> float:
        """Closed-form ``rho`` = min over machines of the analytic radii."""
        return float(np.min(self.analytic_radii(beta, tau=tau)))
