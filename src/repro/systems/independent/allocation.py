"""Resource allocations for the independent-task system.

An :class:`Allocation` assigns every task to exactly one machine.  It is
the object whose robustness ``rho_mu`` the metric framework measures — the
``mu`` subscript of the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SpecificationError
from repro.systems.independent.etc import EtcMatrix

__all__ = ["Allocation"]


@dataclass(frozen=True)
class Allocation:
    """Assignment of tasks to machines.

    Attributes
    ----------
    assignment:
        Integer array; ``assignment[i]`` is the machine index of task ``i``.
    n_machines:
        Total machine count (machines may be unused).
    """

    assignment: np.ndarray
    n_machines: int

    def __post_init__(self) -> None:
        a = np.asarray(self.assignment, dtype=np.intp)
        if a.ndim != 1 or a.size == 0:
            raise SpecificationError("assignment must be a non-empty 1-D array")
        if self.n_machines < 1:
            raise SpecificationError("n_machines must be >= 1")
        if np.any(a < 0) or np.any(a >= self.n_machines):
            raise SpecificationError(
                f"assignment refers to machines outside [0, {self.n_machines})")
        object.__setattr__(self, "assignment", a)

    @property
    def n_tasks(self) -> int:
        """Number of tasks assigned."""
        return int(self.assignment.size)

    def tasks_on(self, machine: int) -> np.ndarray:
        """Indices of the tasks mapped to ``machine``."""
        if not 0 <= machine < self.n_machines:
            raise SpecificationError(
                f"machine {machine} out of range [0, {self.n_machines})")
        return np.flatnonzero(self.assignment == machine)

    def assigned_times(self, etc: EtcMatrix) -> np.ndarray:
        """Per-task estimated times on their assigned machines.

        These are the original values of the execution-time perturbation
        parameter: ``pi_orig[i] = ETC[i, assignment[i]]``.
        """
        self._check_etc(etc)
        return etc.values[np.arange(self.n_tasks), self.assignment].copy()

    def machine_loads(self, etc: EtcMatrix) -> np.ndarray:
        """Estimated finish time of every machine under this allocation."""
        self._check_etc(etc)
        loads = np.zeros(self.n_machines)
        np.add.at(loads, self.assignment, self.assigned_times(etc))
        return loads

    def makespan(self, etc: EtcMatrix) -> float:
        """Estimated makespan: the maximum machine finish time."""
        return float(self.machine_loads(etc).max())

    def _check_etc(self, etc: EtcMatrix) -> None:
        if etc.n_tasks != self.n_tasks:
            raise SpecificationError(
                f"allocation has {self.n_tasks} tasks but ETC has "
                f"{etc.n_tasks}")
        if etc.n_machines != self.n_machines:
            raise SpecificationError(
                f"allocation has {self.n_machines} machines but ETC has "
                f"{etc.n_machines}")

    def with_move(self, task: int, machine: int) -> "Allocation":
        """A new allocation with one task moved (local-search neighbour)."""
        if not 0 <= task < self.n_tasks:
            raise SpecificationError(f"task {task} out of range")
        if not 0 <= machine < self.n_machines:
            raise SpecificationError(f"machine {machine} out of range")
        new = self.assignment.copy()
        new[task] = machine
        return Allocation(new, self.n_machines)

    def with_swap(self, task_a: int, task_b: int) -> "Allocation":
        """A new allocation with two tasks' machines exchanged."""
        if not (0 <= task_a < self.n_tasks and 0 <= task_b < self.n_tasks):
            raise SpecificationError("task index out of range")
        new = self.assignment.copy()
        new[task_a], new[task_b] = new[task_b], new[task_a]
        return Allocation(new, self.n_machines)
