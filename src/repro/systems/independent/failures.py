"""Discrete robustness against machine failures (E13).

The paper lists "sudden machine or link failures" among the uncertainties
a general robustness approach must cover.  Failures are *discrete*
perturbations — a machine is up or down — so the continuous radius is
replaced by its combinatorial analogue:

    the **failure radius** of an allocation is the smallest number of
    simultaneous machine failures for which *some* failure set forces the
    (re-balanced) makespan past the deadline ``tau``, minus one — i.e.
    the largest ``k`` such that the allocation survives **every**
    ``k``-subset of failures.

Recovery model: tasks of failed machines are re-mapped greedily by
minimum completion time (MCT) onto the survivors, the standard rescue
policy in the HC literature.  If every machine fails, the system is down
by definition.

Alongside the adversarial radius, :func:`survival_probability` estimates
the probabilistic counterpart: the chance of meeting the deadline when
each machine fails independently with probability ``p``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SpecificationError
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix
from repro.utils.rng import default_rng

__all__ = ["FailureAnalysis", "makespan_after_failures",
           "failure_radius", "survival_probability"]


def makespan_after_failures(etc: EtcMatrix, allocation: Allocation,
                            failed) -> float:
    """Makespan after failing ``failed`` machines and re-mapping by MCT.

    Surviving machines keep their assigned tasks; the failed machines'
    tasks are re-mapped one by one (in index order) to the survivor that
    completes them earliest.

    Parameters
    ----------
    etc, allocation:
        The instance.
    failed:
        Iterable of failed machine indices.

    Returns
    -------
    float
        The post-recovery makespan, or ``inf`` if every machine failed.
    """
    failed = set(int(f) for f in failed)
    for f in failed:
        if not 0 <= f < allocation.n_machines:
            raise SpecificationError(f"machine index {f} out of range")
    survivors = [m for m in range(allocation.n_machines) if m not in failed]
    if not survivors:
        return math.inf
    loads = np.zeros(allocation.n_machines)
    displaced = []
    for task in range(allocation.n_tasks):
        machine = int(allocation.assignment[task])
        if machine in failed:
            displaced.append(task)
        else:
            loads[machine] += etc.values[task, machine]
    surv = np.array(survivors)
    for task in displaced:
        completion = loads[surv] + etc.values[task, surv]
        j = int(np.argmin(completion))
        loads[surv[j]] = completion[j]
    return float(loads[surv].max())


@dataclass(frozen=True)
class FailureAnalysis:
    """Outcome of the adversarial failure-radius computation.

    Attributes
    ----------
    radius:
        Largest ``k`` such that every ``k``-subset of failures is
        survived (0 = some single failure already breaks the deadline).
    breaking_set:
        A smallest failure set that breaks the deadline (``None`` when
        even losing all-but-one machine is survivable).
    tau:
        The deadline used.
    worst_makespans:
        ``worst_makespans[k]`` = worst post-recovery makespan over all
        ``k``-subsets, for ``k = 0 .. n_machines-1``.
    """

    radius: int
    breaking_set: tuple[int, ...] | None
    tau: float
    worst_makespans: tuple[float, ...]


def failure_radius(etc: EtcMatrix, allocation: Allocation, tau: float
                   ) -> FailureAnalysis:
    """Adversarial failure radius by exhaustive subset search.

    Exhaustive over failure subsets, so intended for the small machine
    counts (<= ~12) of the papers' scenarios; the search prunes by
    stopping at the first cardinality with a breaking set.

    Raises
    ------
    SpecificationError
        If the allocation misses ``tau`` with no failures at all.
    """
    base = makespan_after_failures(etc, allocation, ())
    if base > tau:
        raise SpecificationError(
            f"allocation already misses tau={tau:g} with zero failures "
            f"(makespan {base:g})")
    worst = [base]
    breaking = None
    radius = allocation.n_machines - 1
    for k in range(1, allocation.n_machines):
        worst_k = -math.inf
        worst_set = None
        for subset in itertools.combinations(range(allocation.n_machines), k):
            ms = makespan_after_failures(etc, allocation, subset)
            if ms > worst_k:
                worst_k = ms
                worst_set = subset
        worst.append(worst_k)
        if worst_k > tau:
            radius = k - 1
            breaking = worst_set
            break
    return FailureAnalysis(radius=radius, breaking_set=breaking, tau=float(tau),
                           worst_makespans=tuple(worst))


def survival_probability(etc: EtcMatrix, allocation: Allocation, tau: float,
                         p_fail: float, *, n_samples: int = 2000,
                         seed=None) -> float:
    """Monte-Carlo probability of meeting ``tau`` under random failures.

    Each machine fails independently with probability ``p_fail``; failed
    machines' tasks are re-mapped by MCT.

    Parameters
    ----------
    p_fail:
        Per-machine failure probability in ``[0, 1]``.
    n_samples:
        Monte-Carlo draws.
    seed:
        RNG seed.
    """
    if not 0.0 <= p_fail <= 1.0:
        raise SpecificationError(f"p_fail must be in [0, 1], got {p_fail}")
    if n_samples < 1:
        raise SpecificationError("n_samples must be >= 1")
    rng = default_rng(seed)
    draws = rng.random((n_samples, allocation.n_machines)) < p_fail
    survived = 0
    for row in draws:
        failed = np.flatnonzero(row)
        ms = makespan_after_failures(etc, allocation, failed)
        if ms <= tau:
            survived += 1
    return survived / n_samples
