"""ETC (estimated time to compute) matrices and their generators.

An ETC matrix ``E`` has ``E[i, j]`` = estimated execution time of task ``i``
on machine ``j``.  Two standard synthetic generators from the HC-scheduling
literature are provided:

* the **range-based** method (Braun et al.): a task weight drawn from
  ``U(1, R_task)`` is scaled per machine by ``U(1, R_mach)``;
* the **CVB (gamma) method** (Ali et al.): task weights and machine scalers
  drawn from gamma distributions parameterised by coefficients of
  variation, giving smoother control over heterogeneity.

Both support the *consistency* classes: **consistent** (machine ``a``
faster than ``b`` for one task means faster for all — rows sorted),
**inconsistent** (no structure), and **semi-consistent** (even-indexed
columns consistent, the rest inconsistent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.exceptions import SpecificationError
from repro.utils.rng import default_rng
from repro.utils.validation import as_2d_float_array, check_positive

__all__ = ["EtcMatrix", "generate_etc_range_based", "generate_etc_gamma"]

Consistency = Literal["consistent", "inconsistent", "semiconsistent"]


@dataclass(frozen=True)
class EtcMatrix:
    """An ETC matrix with validation and convenience accessors.

    Attributes
    ----------
    values:
        ``(n_tasks, n_machines)`` array of positive execution-time
        estimates.
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        vals = as_2d_float_array(self.values, name="ETC values")
        check_positive(vals, name="ETC values")
        object.__setattr__(self, "values", vals)

    @property
    def n_tasks(self) -> int:
        """Number of tasks (rows)."""
        return int(self.values.shape[0])

    @property
    def n_machines(self) -> int:
        """Number of machines (columns)."""
        return int(self.values.shape[1])

    def time(self, task: int, machine: int) -> float:
        """Estimated time of ``task`` on ``machine``."""
        return float(self.values[task, machine])

    def best_machine(self, task: int) -> int:
        """Machine minimising the estimated time of ``task`` (MET choice)."""
        return int(np.argmin(self.values[task]))

    def task_heterogeneity(self) -> float:
        """Coefficient of variation of mean task times (rows)."""
        means = self.values.mean(axis=1)
        return float(means.std() / means.mean())

    def machine_heterogeneity(self) -> float:
        """Coefficient of variation of mean machine times (columns)."""
        means = self.values.mean(axis=0)
        return float(means.std() / means.mean())


def _apply_consistency(values: np.ndarray, consistency: Consistency,
                       rng: np.random.Generator) -> np.ndarray:
    """Impose a consistency class on a raw ETC matrix (in place copy)."""
    values = values.copy()
    if consistency == "consistent":
        values.sort(axis=1)
    elif consistency == "semiconsistent":
        # Sort the even-indexed columns of every row; odd columns keep their
        # inconsistent draws, the standard construction from the literature.
        even = np.arange(0, values.shape[1], 2)
        sub = values[:, even]
        sub.sort(axis=1)
        values[:, even] = sub
    elif consistency != "inconsistent":
        raise SpecificationError(
            f"unknown consistency class {consistency!r}; use 'consistent', "
            "'inconsistent' or 'semiconsistent'")
    return values


def generate_etc_range_based(
    n_tasks: int,
    n_machines: int,
    *,
    task_range: float = 100.0,
    machine_range: float = 10.0,
    consistency: Consistency = "inconsistent",
    seed=None,
) -> EtcMatrix:
    """Range-based ETC generation (Braun et al.).

    ``E[i, j] = tau_i * u_ij`` with ``tau_i ~ U(1, task_range)`` and
    ``u_ij ~ U(1, machine_range)``.  High/low task (machine) heterogeneity
    corresponds to a large/small ``task_range`` (``machine_range``).

    Parameters
    ----------
    n_tasks, n_machines:
        Matrix shape.
    task_range, machine_range:
        Upper limits of the uniform draws (both must exceed 1).
    consistency:
        Consistency class to impose.
    seed:
        RNG seed.
    """
    if n_tasks < 1 or n_machines < 1:
        raise SpecificationError("need at least one task and one machine")
    if task_range <= 1 or machine_range <= 1:
        raise SpecificationError("ranges must exceed 1")
    rng = default_rng(seed)
    tau = rng.uniform(1.0, task_range, size=n_tasks)
    scale = rng.uniform(1.0, machine_range, size=(n_tasks, n_machines))
    raw = tau[:, None] * scale
    return EtcMatrix(_apply_consistency(raw, consistency, rng))


def generate_etc_gamma(
    n_tasks: int,
    n_machines: int,
    *,
    mean_task_time: float = 100.0,
    task_cov: float = 0.6,
    machine_cov: float = 0.3,
    consistency: Consistency = "inconsistent",
    seed=None,
) -> EtcMatrix:
    """CVB (coefficient-of-variation-based) gamma ETC generation (Ali et al.).

    Draw a mean time ``q_i ~ Gamma(alpha_t, mean/alpha_t)`` per task with
    ``alpha_t = 1/task_cov^2``, then per machine
    ``E[i, j] ~ Gamma(alpha_m, q_i/alpha_m)`` with
    ``alpha_m = 1/machine_cov^2``.

    Parameters
    ----------
    n_tasks, n_machines:
        Matrix shape.
    mean_task_time:
        Grand mean of the execution times.
    task_cov, machine_cov:
        Coefficients of variation controlling task and machine
        heterogeneity (must be positive; typical "high" is about 0.9 and
        "low" about 0.3 in the literature).
    consistency:
        Consistency class to impose.
    seed:
        RNG seed.
    """
    if n_tasks < 1 or n_machines < 1:
        raise SpecificationError("need at least one task and one machine")
    if mean_task_time <= 0:
        raise SpecificationError("mean_task_time must be positive")
    if task_cov <= 0 or machine_cov <= 0:
        raise SpecificationError("coefficients of variation must be positive")
    rng = default_rng(seed)
    alpha_t = 1.0 / task_cov ** 2
    alpha_m = 1.0 / machine_cov ** 2
    q = rng.gamma(shape=alpha_t, scale=mean_task_time / alpha_t, size=n_tasks)
    # Guard against pathologically tiny draws that would make downstream
    # normalized weighting ill-conditioned.
    q = np.maximum(q, 1e-6 * mean_task_time)
    raw = rng.gamma(shape=alpha_m, scale=q[:, None] / alpha_m,
                    size=(n_tasks, n_machines))
    raw = np.maximum(raw, 1e-6 * mean_task_time)
    return EtcMatrix(_apply_consistency(raw, consistency, rng))
