"""Stochastic robustness: the probabilistic counterpart of the radius.

The deterministic radius answers "how far can the times drift before the
deadline breaks"; the stochastic view asks "with *random* drift of a given
spread, what is the probability the deadline holds?"  (This is the
direction the robustness literature took after the papers reproduced
here.)  Model: the actual execution time of task ``i`` is gamma-distributed
with mean equal to its ETC entry and a common coefficient of variation
``cov`` — the same distributional family the CVB ETC generator uses.

Two estimators are provided and cross-validated in the tests:

* :func:`stochastic_robustness_mc` — plain Monte Carlo over time vectors;
* :func:`stochastic_robustness_clt` — a normal approximation: each
  machine's finish time is a sum of independent gammas, approximated as
  Gaussian with the exact mean/variance, and machines are independent, so

      P(makespan <= tau) ~= prod_j Phi((tau - mu_j) / sigma_j) .

The deterministic radius shows up as a guarantee: drift vectors within the
radius ball can never violate, so the violation probability is bounded by
the probability mass outside the ball.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.exceptions import SpecificationError
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix
from repro.utils.rng import default_rng

__all__ = ["stochastic_robustness_mc", "stochastic_robustness_clt"]


def _validate(etc: EtcMatrix, allocation: Allocation, tau: float,
              cov: float) -> np.ndarray:
    allocation._check_etc(etc)
    if tau <= 0:
        raise SpecificationError(f"tau must be positive, got {tau}")
    if cov <= 0:
        raise SpecificationError(f"cov must be positive, got {cov}")
    return allocation.assigned_times(etc)


def stochastic_robustness_mc(
    etc: EtcMatrix,
    allocation: Allocation,
    tau: float,
    *,
    cov: float = 0.2,
    n_samples: int = 5000,
    seed=None,
) -> float:
    """Monte-Carlo estimate of ``P(makespan <= tau)`` under gamma noise.

    Each task's actual time is ``Gamma(shape, scale)`` with
    ``shape = 1/cov^2`` and mean equal to its assigned ETC entry; draws
    are independent across tasks.

    Parameters
    ----------
    etc, allocation, tau:
        The instance and deadline.
    cov:
        Common coefficient of variation of the per-task noise.
    n_samples:
        Monte-Carlo draws.
    seed:
        RNG seed.
    """
    means = _validate(etc, allocation, tau, cov)
    if n_samples < 1:
        raise SpecificationError("n_samples must be >= 1")
    rng = default_rng(seed)
    shape = 1.0 / cov ** 2
    times = rng.gamma(shape=shape, scale=means / shape,
                      size=(n_samples, means.size))
    # makespan per draw: accumulate per machine
    n_machines = allocation.n_machines
    machine_of = allocation.assignment
    finish = np.zeros((n_samples, n_machines))
    for j in range(n_machines):
        tasks = np.flatnonzero(machine_of == j)
        if tasks.size:
            finish[:, j] = times[:, tasks].sum(axis=1)
    makespans = finish.max(axis=1)
    return float(np.mean(makespans <= tau))


def stochastic_robustness_clt(
    etc: EtcMatrix,
    allocation: Allocation,
    tau: float,
    *,
    cov: float = 0.2,
) -> float:
    """Normal-approximation estimate of ``P(makespan <= tau)``.

    Machine ``j``'s finish time has exact mean ``mu_j = sum means`` and
    variance ``sigma_j^2 = cov^2 * sum means^2`` (independent gammas);
    approximating each as Gaussian and machines as independent:

        P = prod_j Phi((tau - mu_j) / sigma_j) .

    Empty machines contribute probability 1.  Accuracy improves with the
    number of tasks per machine (CLT); the tests quantify the agreement
    with the Monte-Carlo estimator.
    """
    means = _validate(etc, allocation, tau, cov)
    prob = 1.0
    for j in range(allocation.n_machines):
        tasks = allocation.tasks_on(j)
        if tasks.size == 0:
            continue
        mu = float(means[tasks].sum())
        sigma = cov * math.sqrt(float(np.sum(means[tasks] ** 2)))
        if sigma == 0.0:  # pragma: no cover - means are positive
            prob *= 1.0 if mu <= tau else 0.0
        else:
            prob *= float(norm.cdf((tau - mu) / sigma))
    return prob
