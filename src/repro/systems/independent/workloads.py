"""Canned workload scenarios for the independent-task experiments.

Bundles ETC generation parameters into named scenarios mirroring the
heterogeneity/consistency grid of the Braun et al. benchmark suite that the
HC-scheduling literature (including the companion paper's experiments)
standardises on: {high, low} task heterogeneity x {high, low} machine
heterogeneity x {consistent, semiconsistent, inconsistent}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SpecificationError
from repro.systems.independent.etc import EtcMatrix, generate_etc_gamma

__all__ = ["WorkloadSpec", "braun_suite", "generate_workload"]

#: Coefficient-of-variation values used for "high" and "low" heterogeneity.
_HETEROGENEITY_COV = {"high": 0.9, "low": 0.3}


@dataclass(frozen=True)
class WorkloadSpec:
    """A named independent-task workload configuration.

    Attributes
    ----------
    name:
        Scenario label, e.g. ``"hihi-consistent"``.
    n_tasks, n_machines:
        Problem size.
    task_heterogeneity, machine_heterogeneity:
        ``"high"`` or ``"low"``.
    consistency:
        ETC consistency class.
    mean_task_time:
        Grand mean execution time (seconds).
    """

    name: str
    n_tasks: int
    n_machines: int
    task_heterogeneity: str
    machine_heterogeneity: str
    consistency: str
    mean_task_time: float = 100.0

    def __post_init__(self) -> None:
        if self.task_heterogeneity not in _HETEROGENEITY_COV:
            raise SpecificationError(
                f"task_heterogeneity must be 'high' or 'low', got "
                f"{self.task_heterogeneity!r}")
        if self.machine_heterogeneity not in _HETEROGENEITY_COV:
            raise SpecificationError(
                f"machine_heterogeneity must be 'high' or 'low', got "
                f"{self.machine_heterogeneity!r}")
        if self.n_tasks < 1 or self.n_machines < 1:
            raise SpecificationError("need at least one task and one machine")


def generate_workload(spec: WorkloadSpec, *, seed=None) -> EtcMatrix:
    """Generate the ETC matrix of a :class:`WorkloadSpec` (gamma method)."""
    return generate_etc_gamma(
        spec.n_tasks,
        spec.n_machines,
        mean_task_time=spec.mean_task_time,
        task_cov=_HETEROGENEITY_COV[spec.task_heterogeneity],
        machine_cov=_HETEROGENEITY_COV[spec.machine_heterogeneity],
        consistency=spec.consistency,  # validated by the generator
        seed=seed,
    )


def braun_suite(n_tasks: int = 24, n_machines: int = 6) -> list[WorkloadSpec]:
    """The 12-scenario heterogeneity/consistency grid at a given size.

    Returns scenarios named ``"<hh><mm>-<consistency>"`` with ``hh``/``mm``
    in {``hi``, ``lo``}, e.g. ``"hilo-semiconsistent"``.
    """
    specs = []
    for th in ("high", "low"):
        for mh in ("high", "low"):
            for cons in ("consistent", "semiconsistent", "inconsistent"):
                name = f"{th[:2]}{mh[:2]}-{cons}"
                specs.append(WorkloadSpec(
                    name=name, n_tasks=n_tasks, n_machines=n_machines,
                    task_heterogeneity=th, machine_heterogeneity=mh,
                    consistency=cons))
    return specs
