"""Independent-task heterogeneous computing substrate.

The running example of the companion TPDS 2004 paper: ``T`` independent
tasks mapped onto ``M`` heterogeneous machines, characterised by an
*estimated time to compute* (ETC) matrix.  The robustness question: by how
much may the actual execution times drift from the ETC estimates before the
makespan exceeds ``beta`` times its predicted value?
"""

from repro.systems.independent.etc import (
    EtcMatrix,
    generate_etc_gamma,
    generate_etc_range_based,
)
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.makespan import MakespanSystem
from repro.systems.independent.workloads import (
    WorkloadSpec,
    braun_suite,
    generate_workload,
)
from repro.systems.independent.failures import (
    FailureAnalysis,
    failure_radius,
    makespan_after_failures,
    survival_probability,
)
from repro.systems.independent.stochastic import (
    stochastic_robustness_clt,
    stochastic_robustness_mc,
)

__all__ = [
    "EtcMatrix",
    "generate_etc_gamma",
    "generate_etc_range_based",
    "Allocation",
    "MakespanSystem",
    "WorkloadSpec",
    "braun_suite",
    "generate_workload",
    "FailureAnalysis",
    "failure_radius",
    "makespan_after_failures",
    "survival_probability",
    "stochastic_robustness_mc",
    "stochastic_robustness_clt",
]
