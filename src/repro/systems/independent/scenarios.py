"""Shock catalogue for the independent-task makespan system.

The star of the catalogue is ``critical-drift``: a deterministic ramp
along the system's *closed-form critical direction*.  For the
identity-weighted Euclidean case the TPDS 2004 radius of machine ``j``
is ``(tau - F_j)/sqrt(n_j)``; the minimising machine ``c`` is the
critical one, and the unit direction that realizes its radius puts
``1/sqrt(n_c)`` on each of its tasks and zero elsewhere.  Along that
direction a perturbation violates the makespan requirement **exactly**
when its P-space length exceeds ``rho`` — so the lab's empirical
violation rate must match the radius-based prediction step for step,
and the bootstrap CI brackets the analytic prediction by construction.
That is the acceptance check wired into ``tests/scenarios/``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.scenarios.shocks import ShockScenario
from repro.systems.independent.makespan import MakespanSystem

__all__ = ["critical_drift_scenario", "makespan_scenario_catalogue"]


def critical_drift_scenario(
    system: MakespanSystem,
    beta: float | None = None,
    *,
    tau: float | None = None,
    n_steps: int = 40,
    overshoot: float = 2.0,
    jitter: float = 0.0,
) -> ShockScenario:
    """The ramp along the closed-form critical direction.

    The drift reaches ``overshoot * rho`` at the final step, so with the
    default ``overshoot=2`` roughly the second half of every trajectory
    violates — enough mass on both sides of the boundary for the
    bootstrap CI to be informative.  An even ``n_steps`` is bumped to
    odd: with ``overshoot=2`` the midpoint step would otherwise land
    *exactly* on the boundary, where solver epsilon could make the
    empirical and predicted counts disagree by one step.
    """
    if n_steps % 2 == 0:
        n_steps += 1
    radii = system.analytic_radii(beta, tau=tau)
    rho = float(np.min(radii))
    critical = int(np.argmin(radii))
    tasks = system.allocation.tasks_on(critical)
    direction = np.zeros(system.n_tasks)
    direction[tasks] = 1.0 / math.sqrt(tasks.size)
    return ShockScenario(
        name="critical-drift",
        kind="drift",
        magnitude=overshoot * rho,
        n_steps=n_steps,
        jitter=jitter,
        params=("exec_times",),
        directions={"exec_times": tuple(direction)},
        description=(f"ramp along machine {critical}'s unit critical "
                     "direction; violation occurs exactly when the "
                     "P-distance exceeds rho"))


def makespan_scenario_catalogue(
    system: MakespanSystem,
    beta: float | None = None,
    *,
    tau: float | None = None,
    n_steps: int = 40,
) -> list[ShockScenario]:
    """The shipped scenarios for a makespan system.

    All magnitudes are scaled by the analytic ``rho`` of the allocation,
    so the catalogue is meaningful for any instance size: shocks probe
    the neighbourhood of the robustness boundary rather than some fixed
    absolute displacement.
    """
    rho = float(np.min(system.analytic_radii(beta, tau=tau)))
    catalogue = [
        critical_drift_scenario(system, beta, tau=tau, n_steps=n_steps),
        ShockScenario(
            name="exec-spike",
            kind="spike",
            magnitude=rho,
            n_steps=n_steps,
            rate=0.3,
            params=("exec_times",),
            description="sporadic per-task execution-time spikes at "
                        "radius scale"),
        ShockScenario(
            name="uniform-drift",
            kind="drift",
            magnitude=1.5 * rho,
            n_steps=n_steps,
            jitter=0.1,
            params=("exec_times",),
            description="jittered uniform inflation of every execution "
                        "time"),
    ]
    if system.background_loads is not None:
        catalogue.append(ShockScenario(
            name="correlated-surge",
            kind="correlated",
            magnitude=rho,
            n_steps=n_steps,
            description="one latent factor co-moving execution times "
                        "and background loads (multi-kind)"))
    return catalogue
