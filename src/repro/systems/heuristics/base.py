"""Heuristic interface and shared objective functions."""

from __future__ import annotations

import abc
from typing import Callable

from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix

__all__ = ["AllocationHeuristic", "makespan_objective"]


class AllocationHeuristic(abc.ABC):
    """Strategy producing an :class:`Allocation` from an ETC matrix.

    Heuristics are stateless value objects; randomised ones take a ``seed``
    at construction so runs are reproducible.
    """

    #: Short display name used in comparison tables; subclasses override.
    name: str = "heuristic"

    @abc.abstractmethod
    def allocate(self, etc: EtcMatrix) -> Allocation:
        """Map every task of ``etc`` to a machine."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def makespan_objective(etc: EtcMatrix) -> Callable[[Allocation], float]:
    """An objective (to minimise) returning the allocation's makespan.

    Used by the metaheuristics; the robustness experiments pass a
    ``-rho`` objective instead to *maximise* robustness.
    """
    def objective(allocation: Allocation) -> float:
        return allocation.makespan(etc)
    return objective
