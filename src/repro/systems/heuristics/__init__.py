"""Resource-allocation heuristics for the independent-task substrate.

These are the standard immediate- and batch-mode mapping heuristics from
the HC-scheduling literature, used by the experiments to produce the sets
of candidate allocations whose robustness the metric compares:

* immediate greedy: :class:`OLB`, :class:`MET`, :class:`MCT`;
* batch: :class:`MinMin`, :class:`MaxMin`, :class:`Sufferage`;
* baselines: :class:`RandomAllocator`, :class:`RoundRobin`;
* metaheuristics that optimise an arbitrary objective (makespan or the
  robustness metric itself): :class:`HillClimber`,
  :class:`SimulatedAnnealer`, :class:`GeneticAllocator`.
"""

from repro.systems.heuristics.base import AllocationHeuristic, makespan_objective
from repro.systems.heuristics.greedy import MCT, MET, OLB, RoundRobin
from repro.systems.heuristics.minmin import MaxMin, MinMin, Sufferage
from repro.systems.heuristics.random_alloc import RandomAllocator
from repro.systems.heuristics.local_search import HillClimber, SimulatedAnnealer
from repro.systems.heuristics.ga import GeneticAllocator

__all__ = [
    "AllocationHeuristic",
    "makespan_objective",
    "OLB",
    "MET",
    "MCT",
    "RoundRobin",
    "MinMin",
    "MaxMin",
    "Sufferage",
    "RandomAllocator",
    "HillClimber",
    "SimulatedAnnealer",
    "GeneticAllocator",
]

#: The standard heuristic lineup used by comparison experiments.
STANDARD_LINEUP = (OLB, MET, MCT, RoundRobin, MinMin, MaxMin, Sufferage,
                   RandomAllocator)
