"""Local-search metaheuristics over allocations.

Both optimisers minimise an arbitrary ``objective(Allocation) -> float``:
pass :func:`~repro.systems.heuristics.base.makespan_objective` to minimise
makespan, or ``lambda a: -rho(a)`` to *maximise* the robustness metric —
the comparison the companion paper's experiments are built around
(robust allocations are not the same as short ones).

The neighbourhood is single-task reassignment plus pairwise swap.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.exceptions import SpecificationError
from repro.systems.heuristics.base import AllocationHeuristic
from repro.systems.heuristics.greedy import MCT
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix
from repro.utils.rng import default_rng

__all__ = ["HillClimber", "SimulatedAnnealer"]

Objective = Callable[[Allocation], float]


def _random_neighbour(allocation: Allocation, rng) -> Allocation:
    """A random move or swap neighbour."""
    if allocation.n_tasks >= 2 and rng.random() < 0.3:
        a, b = rng.choice(allocation.n_tasks, size=2, replace=False)
        return allocation.with_swap(int(a), int(b))
    task = int(rng.integers(allocation.n_tasks))
    machine = int(rng.integers(allocation.n_machines))
    return allocation.with_move(task, machine)


class HillClimber(AllocationHeuristic):
    """Steepest-descent over the move/swap neighbourhood.

    Parameters
    ----------
    objective_factory:
        ``factory(etc) -> objective``; the objective is minimised.
    max_iterations:
        Stop after this many accepted improvements at the latest.
    n_neighbours:
        Random neighbours examined per step (sampled, not exhaustive, so
        large instances stay tractable).
    initial:
        Heuristic producing the starting allocation (default MCT).
    seed:
        RNG seed.
    """

    name = "HillClimb"

    def __init__(self, objective_factory: Callable[[EtcMatrix], Objective],
                 *, max_iterations: int = 200, n_neighbours: int = 32,
                 initial: AllocationHeuristic | None = None, seed=None) -> None:
        if max_iterations < 1 or n_neighbours < 1:
            raise SpecificationError(
                "max_iterations and n_neighbours must be >= 1")
        self._objective_factory = objective_factory
        self._max_iterations = max_iterations
        self._n_neighbours = n_neighbours
        self._initial = initial if initial is not None else MCT()
        self._seed = seed

    def allocate(self, etc: EtcMatrix) -> Allocation:
        rng = default_rng(self._seed)
        objective = self._objective_factory(etc)
        current = self._initial.allocate(etc)
        current_val = objective(current)
        for _ in range(self._max_iterations):
            best_neigh = None
            best_val = current_val
            for _ in range(self._n_neighbours):
                cand = _random_neighbour(current, rng)
                val = objective(cand)
                if val < best_val:
                    best_neigh, best_val = cand, val
            if best_neigh is None:
                break
            current, current_val = best_neigh, best_val
        return current


class SimulatedAnnealer(AllocationHeuristic):
    """Simulated annealing with geometric cooling.

    Parameters
    ----------
    objective_factory:
        ``factory(etc) -> objective`` (minimised).
    n_steps:
        Total proposal count.
    t_initial, t_final:
        Temperature schedule endpoints (geometric interpolation); the
        acceptance rule is Metropolis on the objective difference.
    initial:
        Starting-allocation heuristic (default MCT).
    seed:
        RNG seed.
    """

    name = "SA"

    def __init__(self, objective_factory: Callable[[EtcMatrix], Objective],
                 *, n_steps: int = 2000, t_initial: float = 1.0,
                 t_final: float = 1e-3,
                 initial: AllocationHeuristic | None = None, seed=None) -> None:
        if n_steps < 1:
            raise SpecificationError("n_steps must be >= 1")
        if t_initial <= 0 or t_final <= 0 or t_final > t_initial:
            raise SpecificationError(
                "need 0 < t_final <= t_initial for the cooling schedule")
        self._objective_factory = objective_factory
        self._n_steps = n_steps
        self._t_initial = float(t_initial)
        self._t_final = float(t_final)
        self._initial = initial if initial is not None else MCT()
        self._seed = seed

    def allocate(self, etc: EtcMatrix) -> Allocation:
        rng = default_rng(self._seed)
        objective = self._objective_factory(etc)
        current = self._initial.allocate(etc)
        current_val = objective(current)
        best, best_val = current, current_val
        # Normalise temperatures by the initial objective scale so the
        # schedule works across problem magnitudes.
        scale = max(abs(current_val), 1e-12)
        cooling = (self._t_final / self._t_initial) ** (1.0 / self._n_steps)
        temp = self._t_initial
        for _ in range(self._n_steps):
            cand = _random_neighbour(current, rng)
            val = objective(cand)
            delta = (val - current_val) / scale
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                current, current_val = cand, val
                if val < best_val:
                    best, best_val = cand, val
            temp *= cooling
        return best
