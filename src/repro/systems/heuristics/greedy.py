"""Immediate-mode greedy mapping heuristics: OLB, MET, MCT, round-robin.

Each considers tasks one at a time in index order (the immediate-mode
convention) and assigns without revisiting earlier decisions:

* **OLB** (opportunistic load balancing) — the machine that becomes idle
  soonest, ignoring the task's execution time;
* **MET** (minimum execution time) — the machine with the smallest ETC for
  the task, ignoring current load (can overload the fastest machine);
* **MCT** (minimum completion time) — the machine minimising current load
  plus the task's ETC (the classic compromise);
* **round-robin** — cyclic assignment, a structure-free baseline.
"""

from __future__ import annotations

import numpy as np

from repro.systems.heuristics.base import AllocationHeuristic
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix

__all__ = ["OLB", "MET", "MCT", "RoundRobin"]


class OLB(AllocationHeuristic):
    """Opportunistic load balancing: next task to the earliest-idle machine."""

    name = "OLB"

    def allocate(self, etc: EtcMatrix) -> Allocation:
        loads = np.zeros(etc.n_machines)
        assignment = np.empty(etc.n_tasks, dtype=np.intp)
        for i in range(etc.n_tasks):
            j = int(np.argmin(loads))
            assignment[i] = j
            loads[j] += etc.values[i, j]
        return Allocation(assignment, etc.n_machines)


class MET(AllocationHeuristic):
    """Minimum execution time: each task to its fastest machine."""

    name = "MET"

    def allocate(self, etc: EtcMatrix) -> Allocation:
        assignment = np.argmin(etc.values, axis=1).astype(np.intp)
        return Allocation(assignment, etc.n_machines)


class MCT(AllocationHeuristic):
    """Minimum completion time: each task to the machine finishing it first."""

    name = "MCT"

    def allocate(self, etc: EtcMatrix) -> Allocation:
        loads = np.zeros(etc.n_machines)
        assignment = np.empty(etc.n_tasks, dtype=np.intp)
        for i in range(etc.n_tasks):
            completion = loads + etc.values[i]
            j = int(np.argmin(completion))
            assignment[i] = j
            loads[j] = completion[j]
        return Allocation(assignment, etc.n_machines)


class RoundRobin(AllocationHeuristic):
    """Cyclic assignment ignoring all timing information."""

    name = "RR"

    def allocate(self, etc: EtcMatrix) -> Allocation:
        assignment = (np.arange(etc.n_tasks) % etc.n_machines).astype(np.intp)
        return Allocation(assignment, etc.n_machines)
