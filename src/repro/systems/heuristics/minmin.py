"""Batch-mode mapping heuristics: min-min, max-min, sufferage.

All three maintain, for every unmapped task, its minimum completion time
(MCT) over machines given the current loads, then differ in which task they
commit next:

* **min-min** — the task with the *smallest* MCT (keeps machines balanced
  by placing easy work first);
* **max-min** — the task with the *largest* MCT (places hard work first so
  it doesn't dominate the tail);
* **sufferage** — the task that would "suffer" most if denied its best
  machine (largest difference between its best and second-best completion
  times).
"""

from __future__ import annotations

import numpy as np

from repro.systems.heuristics.base import AllocationHeuristic
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix

__all__ = ["MinMin", "MaxMin", "Sufferage"]


def _batch_allocate(etc: EtcMatrix, select) -> Allocation:
    """Shared batch loop; ``select(best_ct, second_ct)`` picks the task."""
    n_tasks, n_machines = etc.n_tasks, etc.n_machines
    loads = np.zeros(n_machines)
    assignment = np.empty(n_tasks, dtype=np.intp)
    unmapped = np.ones(n_tasks, dtype=bool)
    for _ in range(n_tasks):
        idx = np.flatnonzero(unmapped)
        completion = loads[None, :] + etc.values[idx]       # (u, m)
        best_machine = np.argmin(completion, axis=1)
        best_ct = completion[np.arange(idx.size), best_machine]
        if n_machines > 1:
            part = np.partition(completion, 1, axis=1)
            second_ct = part[:, 1]
        else:
            second_ct = best_ct
        pick = select(best_ct, second_ct)
        task = idx[pick]
        machine = int(best_machine[pick])
        assignment[task] = machine
        loads[machine] += etc.values[task, machine]
        unmapped[task] = False
    return Allocation(assignment, n_machines)


class MinMin(AllocationHeuristic):
    """Commit the task with the smallest minimum completion time first."""

    name = "MinMin"

    def allocate(self, etc: EtcMatrix) -> Allocation:
        return _batch_allocate(etc, lambda best, second: int(np.argmin(best)))


class MaxMin(AllocationHeuristic):
    """Commit the task with the largest minimum completion time first."""

    name = "MaxMin"

    def allocate(self, etc: EtcMatrix) -> Allocation:
        return _batch_allocate(etc, lambda best, second: int(np.argmax(best)))


class Sufferage(AllocationHeuristic):
    """Commit the task with the greatest best-vs-second-best gap first."""

    name = "Sufferage"

    def allocate(self, etc: EtcMatrix) -> Allocation:
        return _batch_allocate(
            etc, lambda best, second: int(np.argmax(second - best)))
