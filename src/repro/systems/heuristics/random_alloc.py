"""Uniformly random allocation — the floor every heuristic should beat."""

from __future__ import annotations

import numpy as np

from repro.systems.heuristics.base import AllocationHeuristic
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix
from repro.utils.rng import default_rng

__all__ = ["RandomAllocator"]


class RandomAllocator(AllocationHeuristic):
    """Assign every task to a uniformly random machine.

    Parameters
    ----------
    seed:
        RNG seed for reproducible draws.
    """

    name = "Random"

    def __init__(self, seed=None) -> None:
        self._rng = default_rng(seed)

    def allocate(self, etc: EtcMatrix) -> Allocation:
        assignment = self._rng.integers(
            0, etc.n_machines, size=etc.n_tasks).astype(np.intp)
        return Allocation(assignment, etc.n_machines)
