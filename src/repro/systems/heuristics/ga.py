"""A compact genetic algorithm over allocations.

Chromosome = the assignment vector itself; uniform crossover, per-gene
reassignment mutation, tournament selection, elitism of one.  Like the
local-search optimisers it minimises an arbitrary objective, so it can
evolve either short-makespan or high-robustness allocations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import SpecificationError
from repro.systems.heuristics.base import AllocationHeuristic
from repro.systems.heuristics.greedy import MCT
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix
from repro.utils.rng import default_rng

__all__ = ["GeneticAllocator"]

Objective = Callable[[Allocation], float]


class GeneticAllocator(AllocationHeuristic):
    """Genetic algorithm over assignment vectors (objective minimised).

    Parameters
    ----------
    objective_factory:
        ``factory(etc) -> objective``.
    population:
        Population size (>= 4).
    generations:
        Number of generations.
    mutation_rate:
        Per-gene probability of random reassignment.
    tournament:
        Tournament size for parent selection.
    seed_with_mct:
        Include the MCT allocation in the initial population (strong
        warm start, standard practice in the HC-GA literature).
    seed:
        RNG seed.
    """

    name = "GA"

    def __init__(self, objective_factory: Callable[[EtcMatrix], Objective],
                 *, population: int = 32, generations: int = 60,
                 mutation_rate: float = 0.05, tournament: int = 3,
                 seed_with_mct: bool = True, seed=None) -> None:
        if population < 4:
            raise SpecificationError("population must be >= 4")
        if generations < 1:
            raise SpecificationError("generations must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise SpecificationError("mutation_rate must be in [0, 1]")
        if tournament < 2:
            raise SpecificationError("tournament must be >= 2")
        self._objective_factory = objective_factory
        self._population = population
        self._generations = generations
        self._mutation_rate = mutation_rate
        self._tournament = tournament
        self._seed_with_mct = seed_with_mct
        self._seed = seed

    def allocate(self, etc: EtcMatrix) -> Allocation:
        rng = default_rng(self._seed)
        objective = self._objective_factory(etc)
        n_tasks, n_machines = etc.n_tasks, etc.n_machines

        pop = rng.integers(0, n_machines,
                           size=(self._population, n_tasks)).astype(np.intp)
        if self._seed_with_mct:
            pop[0] = MCT().allocate(etc).assignment

        def fitness(row: np.ndarray) -> float:
            return objective(Allocation(row, n_machines))

        fit = np.array([fitness(row) for row in pop])
        for _ in range(self._generations):
            elite_idx = int(np.argmin(fit))
            new_pop = [pop[elite_idx].copy()]
            while len(new_pop) < self._population:
                # Tournament selection of two parents.
                parents = []
                for _ in range(2):
                    contenders = rng.integers(0, self._population,
                                              size=self._tournament)
                    parents.append(pop[contenders[np.argmin(fit[contenders])]])
                # Uniform crossover + mutation.
                mask = rng.random(n_tasks) < 0.5
                child = np.where(mask, parents[0], parents[1]).astype(np.intp)
                mut = rng.random(n_tasks) < self._mutation_rate
                if np.any(mut):
                    child[mut] = rng.integers(0, n_machines,
                                              size=int(mut.sum()))
                new_pop.append(child)
            pop = np.stack(new_pop)
            fit = np.array([fitness(row) for row in pop])
        best = pop[int(np.argmin(fit))]
        return Allocation(best, n_machines)
