"""Deterministic fluid model of the :class:`SupervisedExecutor` dispatch policy.

The self-hosting system closes the loop the ROADMAP asks for: the
executor that *computes* robustness radii is itself modelled as a
resource allocation whose robustness is measured.  The model reproduces
the supervisor's dispatch semantics — wave scheduling, per-task
deadlines, bounded retries, quarantine with an in-process drain
(:func:`~repro.resilience.supervisor.resolve_task_failures`), and the
circuit breaker's serial degraded mode — as a *fluid* recursion over
per-task retry mass:

* tasks are assigned round-robin (task ``i`` to worker ``i mod W``),
  the supervisor's dispatch order;
* each task starts wave 1 with retry mass ``1``; after a wave the mass
  is multiplied by the task's effective failure probability (its
  worker's failure rate, or ``1`` when the task's cost exceeds the
  per-attempt deadline — a timeout fails *every* attempt);
* a wave lasts as long as its most loaded worker (parallel dispatch) or
  the sum of all loads (serial breaker-degraded dispatch); the breaker
  trips when the failed mass of a wave reaches ``breaker_threshold``
  and holds serial mode for ``breaker_cooldown`` waves, mirroring
  :class:`~repro.resilience.supervisor.CircuitBreaker` event counting;
* mass surviving all ``max_task_retries + 1`` waves is quarantined and
  drained serially at full (undeadlined) cost, exactly like
  ``resolve_task_failures`` re-running sentinels in-process.

The same wave accounting evaluates a *measured* run: given the per-task
attempt counts of a real :class:`~repro.resilience.supervisor.BatchReport`,
:meth:`DispatchModel.replay` uses indicator masses (task ``i`` present in
waves ``1..attempts_i``) instead of fluid expectations, producing the
same three features from observed behaviour — wall-clock free, hence
byte-stable across worker counts.

Features (all monotone non-decreasing in every cost and failure rate,
which keeps boundary searches well-posed):

* ``makespan`` — total batch time: wave durations plus quarantine drain;
* ``max_load`` — the largest cumulative load any single worker
  processes (the max queue backlog of the rDLB setting);
* ``recovery`` — time spent past the ideal first wave (retry waves plus
  drain): how long the batch takes to *recover* from its failures.

Every public entry point routes through one batched kernel
(:meth:`DispatchModel._account_many`) whose per-row arithmetic is
independent of the batch size, so a single :meth:`simulate` is
bit-identical to the corresponding row of a :meth:`simulate_many` —
the contract the solver kernels and the radius cache rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SpecificationError

__all__ = ["DispatchModel", "SelfhostMetrics", "SELFHOST_FEATURES"]

#: Metric names exposed by :class:`SelfhostMetrics`, in canonical order.
SELFHOST_FEATURES = ("makespan", "max_load", "recovery")


@dataclass(frozen=True)
class SelfhostMetrics:
    """Performance features of one (simulated or replayed) batch.

    Attributes
    ----------
    makespan:
        Total batch completion time: every wave's duration plus the
        serial quarantine drain.
    max_load:
        Largest cumulative load processed by any single worker across
        all waves (the maximum queue backlog).
    recovery:
        Time past the ideal single-wave run — retry waves plus drain;
        zero for a fault-free batch.
    drain:
        Serial in-process time re-running quarantined mass at full cost.
    quarantined_mass:
        Retry mass left after the final wave (fractional for the fluid
        model, a task count for a replay).
    wave_durations:
        Per-wave durations, in dispatch order.
    serial_waves:
        Waves executed in breaker-degraded serial mode.
    """

    makespan: float
    max_load: float
    recovery: float
    drain: float
    quarantined_mass: float
    wave_durations: tuple[float, ...]
    serial_waves: int

    def value(self, feature: str) -> float:
        """The named feature (``makespan`` | ``max_load`` | ``recovery``)."""
        if feature not in SELFHOST_FEATURES:
            raise SpecificationError(
                f"unknown selfhost feature {feature!r}; expected one of "
                f"{SELFHOST_FEATURES}")
        return getattr(self, feature)

    def to_dict(self) -> dict:
        """JSON-safe summary (used by the selfhost artifact)."""
        return {
            "makespan": float(self.makespan),
            "max_load": float(self.max_load),
            "recovery": float(self.recovery),
            "drain": float(self.drain),
            "quarantined_mass": float(self.quarantined_mass),
            "waves": len(self.wave_durations),
            "serial_waves": int(self.serial_waves),
        }


@dataclass(frozen=True)
class DispatchModel:
    """The supervisor's dispatch policy as a deterministic allocation model.

    Attributes
    ----------
    n_tasks:
        Batch size.
    workers:
        Modelled pool size ``W``; tasks are assigned round-robin.  This
        is the *allocation under study*, independent of how many OS
        processes a real run happens to use.
    max_task_retries:
        Re-invocations allowed per task after its first attempt
        (:class:`~repro.resilience.supervisor.SupervisorConfig` field of
        the same name); the model runs ``max_task_retries + 1`` waves.
    deadline:
        Optional per-attempt wall-clock deadline (``task_timeout``).  A
        task whose cost exceeds it fails every attempt and is drained at
        full cost after quarantine.
    breaker_threshold:
        Failed mass within one wave that trips the modelled breaker
        (mirrors ``BreakerConfig.failure_threshold`` counting events;
        scale it with the batch size — the real breaker counts
        pool-level incidents, not individual task failures).
    breaker_cooldown:
        Waves the breaker holds serial mode once tripped
        (mirrors ``BreakerConfig.cooldown``).
    """

    n_tasks: int
    workers: int
    max_task_retries: int = 2
    deadline: float | None = None
    breaker_threshold: float = 3.0
    breaker_cooldown: int = 2

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise SpecificationError(
                f"n_tasks must be >= 1, got {self.n_tasks}")
        if self.workers < 1:
            raise SpecificationError(
                f"workers must be >= 1, got {self.workers}")
        if self.max_task_retries < 0:
            raise SpecificationError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}")
        if self.deadline is not None and not self.deadline > 0:
            raise SpecificationError(
                f"deadline must be positive, got {self.deadline}")
        if not self.breaker_threshold > 0:
            raise SpecificationError(
                f"breaker_threshold must be positive, got "
                f"{self.breaker_threshold}")
        if self.breaker_cooldown < 1:
            raise SpecificationError(
                f"breaker_cooldown must be >= 1, got {self.breaker_cooldown}")

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def worker_of(self) -> np.ndarray:
        """Round-robin worker index of every task."""
        return np.arange(self.n_tasks) % self.workers

    def tasks_on(self, worker: int) -> np.ndarray:
        """Indices of the tasks assigned to ``worker``."""
        return np.arange(worker, self.n_tasks, self.workers)

    # ------------------------------------------------------------------
    # the shared batched wave accounting
    # ------------------------------------------------------------------
    def _check_costs_rows(self, costs) -> np.ndarray:
        costs = np.atleast_2d(np.asarray(costs, dtype=np.float64))
        if costs.shape[-1] != self.n_tasks:
            raise SpecificationError(
                f"costs must have length {self.n_tasks}, got "
                f"{costs.shape[-1]}")
        # Boundary searches probe outside the physical box; clip so the
        # features stay defined (and monotone) on all of pi-space.
        return np.clip(costs, 0.0, None)

    def _account_many(self, costs_rows: np.ndarray, mass_cube: np.ndarray,
                      residual_rows: np.ndarray) -> dict:
        """Fold per-wave task masses into feature arrays, row by row.

        ``mass_cube[r, v, i]`` is task ``i``'s retry mass dispatched in
        wave ``v`` of row ``r`` (fractional for the fluid model, 0/1 for
        a replay); ``residual_rows[r]`` is the quarantined mass drained
        after the last wave.  Per-row reductions run over fixed-shape
        lanes, so results are bit-identical whether a row is evaluated
        alone or inside a batch.
        """
        m, n_waves, _ = mass_cube.shape
        attempt_cost = costs_rows if self.deadline is None \
            else np.minimum(costs_rows, self.deadline)
        contrib = mass_cube * attempt_cost[:, None, :]
        # (m, n_waves, W) per-wave per-worker loads; a small loop over
        # workers keeps every row's reduction order batch-independent.
        loads = np.stack([contrib[:, :, self.tasks_on(w)].sum(axis=2)
                          for w in range(self.workers)], axis=2)
        worker_totals = loads.sum(axis=1)
        makespan = np.zeros(m)
        first_wave = np.zeros(m)
        serial_waves = np.zeros(m, dtype=np.int64)
        serial_remaining = np.zeros(m, dtype=np.int64)
        durations = np.empty((m, n_waves))
        for v in range(n_waves):
            wave_loads = loads[:, v, :]
            serial_now = serial_remaining > 0
            dur = np.where(serial_now, wave_loads.sum(axis=1),
                           wave_loads.max(axis=1))
            durations[:, v] = dur
            makespan += dur
            if v == 0:
                first_wave = dur.copy()
            serial_waves += serial_now
            serial_remaining = np.maximum(serial_remaining - 1, 0)
            failed = mass_cube[:, v + 1, :].sum(axis=1) if v + 1 < n_waves \
                else residual_rows.sum(axis=1)
            serial_remaining = np.where(failed >= self.breaker_threshold,
                                        self.breaker_cooldown,
                                        serial_remaining)
        drain = (residual_rows * costs_rows).sum(axis=1)
        makespan = makespan + drain
        return {
            "makespan": makespan,
            "max_load": worker_totals.max(axis=1),
            "recovery": makespan - first_wave,
            "drain": drain,
            "quarantined_mass": residual_rows.sum(axis=1),
            "durations": durations,
            "serial_waves": serial_waves,
        }

    def _metrics_from_row(self, accounted: dict, row: int) -> SelfhostMetrics:
        return SelfhostMetrics(
            makespan=float(accounted["makespan"][row]),
            max_load=float(accounted["max_load"][row]),
            recovery=float(accounted["recovery"][row]),
            drain=float(accounted["drain"][row]),
            quarantined_mass=float(accounted["quarantined_mass"][row]),
            wave_durations=tuple(float(d)
                                 for d in accounted["durations"][row]),
            serial_waves=int(accounted["serial_waves"][row]))

    def _fluid_masses(self, costs_rows: np.ndarray, rates_rows: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Expected per-wave masses and quarantined residual, per row."""
        f_eff = rates_rows[:, self.worker_of()]
        if self.deadline is not None:
            f_eff = np.where(costs_rows > self.deadline, 1.0, f_eff)
        n_waves = self.max_task_retries + 1
        m = costs_rows.shape[0]
        mass_cube = np.empty((m, n_waves, self.n_tasks))
        mass_cube[:, 0, :] = 1.0
        for v in range(1, n_waves):
            mass_cube[:, v, :] = mass_cube[:, v - 1, :] * f_eff
        residual = mass_cube[:, -1, :] * f_eff
        return mass_cube, residual

    def _check_rates_rows(self, rates) -> np.ndarray:
        rates = np.atleast_2d(np.asarray(rates, dtype=np.float64))
        if rates.shape[-1] != self.workers:
            raise SpecificationError(
                f"fail_rates must have length {self.workers}, got "
                f"{rates.shape[-1]}")
        return np.clip(rates, 0.0, 1.0)

    # ------------------------------------------------------------------
    # fluid prediction and measured replay
    # ------------------------------------------------------------------
    def simulate(self, costs, fail_rates) -> SelfhostMetrics:
        """Expected-behaviour features at ``(costs, fail_rates)``.

        ``fail_rates`` is per *worker* (length ``W``); both inputs are
        clipped to their physical ranges first so the mapping is total.
        """
        costs_rows = self._check_costs_rows(costs)
        rates_rows = self._check_rates_rows(fail_rates)
        if costs_rows.shape[0] != 1 or rates_rows.shape[0] != 1:
            raise SpecificationError(
                "simulate takes one operating point; use simulate_many "
                "for batches")
        mass_cube, residual = self._fluid_masses(costs_rows, rates_rows)
        return self._metrics_from_row(
            self._account_many(costs_rows, mass_cube, residual), 0)

    def simulate_many(self, costs_rows, rates_rows) -> dict:
        """Vectorised :meth:`simulate` over row batches.

        Returns the feature arrays (``makespan``, ``max_load``,
        ``recovery``, each shape ``(m,)``); row ``r`` is bit-identical
        to ``simulate(costs_rows[r], rates_rows[r])`` — the solver
        kernels' batching contract.
        """
        costs_rows = self._check_costs_rows(costs_rows)
        rates_rows = self._check_rates_rows(rates_rows)
        if costs_rows.shape[0] != rates_rows.shape[0]:
            raise SpecificationError(
                f"row counts differ: {costs_rows.shape[0]} cost rows vs "
                f"{rates_rows.shape[0]} rate rows")
        mass_cube, residual = self._fluid_masses(costs_rows, rates_rows)
        out = self._account_many(costs_rows, mass_cube, residual)
        return {name: out[name] for name in SELFHOST_FEATURES}

    def replay(self, costs, attempts, quarantined=None) -> SelfhostMetrics:
        """Measured features from a real run's per-task attempt counts.

        ``attempts[i]`` is the invocations a
        :class:`~repro.resilience.supervisor.BatchReport` charged to task
        ``i``; ``quarantined[i]`` marks tasks that never succeeded (their
        cost is drained at full price, like ``resolve_task_failures``).
        Indicator masses feed the identical accounting as
        :meth:`simulate`, so predicted and measured features are in the
        same unit and directly comparable.
        """
        costs_rows = self._check_costs_rows(costs)
        attempts = np.asarray(attempts, dtype=np.int64).ravel()
        if attempts.size != self.n_tasks:
            raise SpecificationError(
                f"attempts must have length {self.n_tasks}, got "
                f"{attempts.size}")
        if np.any(attempts < 1):
            raise SpecificationError("every task has at least one attempt")
        if quarantined is None:
            quarantined = np.zeros(self.n_tasks, dtype=bool)
        else:
            quarantined = np.asarray(quarantined, dtype=bool).ravel()
            if quarantined.size != self.n_tasks:
                raise SpecificationError(
                    f"quarantined must have length {self.n_tasks}, got "
                    f"{quarantined.size}")
        n_waves = int(attempts.max())
        waves = np.arange(1, n_waves + 1)[:, None]
        mass_cube = (attempts[None, :] >= waves).astype(np.float64)[None]
        residual = quarantined.astype(np.float64)[None]
        return self._metrics_from_row(
            self._account_many(costs_rows, mass_cube, residual), 0)

    def to_dict(self) -> dict:
        """JSON-safe model description (used by the selfhost artifact)."""
        return {
            "n_tasks": int(self.n_tasks),
            "workers": int(self.workers),
            "max_task_retries": int(self.max_task_retries),
            "deadline": None if self.deadline is None else float(self.deadline),
            "breaker_threshold": float(self.breaker_threshold),
            "breaker_cooldown": int(self.breaker_cooldown),
        }
