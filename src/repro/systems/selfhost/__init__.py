"""The self-hosting executor system: the reproduction measuring itself.

Models the :class:`~repro.resilience.supervisor.SupervisedExecutor`
dispatch policy (waves, deadlines, bounded retries, quarantine drain,
breaker-degraded serial mode) as a third FePIA example system with two
perturbation kinds — per-task costs and per-worker failure rates — and
feeds it through the generic radius machinery.  The companion
calibration layer (:mod:`repro.resilience.calibrate`) closes the loop
by running the *real* chaos harness at operating points chosen inside
and outside the computed radius.  See ``docs/SELFHOST.md``.
"""

from repro.systems.selfhost.model import (
    SELFHOST_FEATURES,
    DispatchModel,
    SelfhostMetrics,
)
from repro.systems.selfhost.scenarios import selfhost_scenario_catalogue
from repro.systems.selfhost.system import SelfhostMapping, SelfhostSystem

__all__ = [
    "SELFHOST_FEATURES",
    "DispatchModel",
    "SelfhostMetrics",
    "SelfhostMapping",
    "SelfhostSystem",
    "selfhost_scenario_catalogue",
]
