"""Wiring the self-hosting executor model into the FePIA framework.

The third example system beside makespan and HiPer-D — and the one that
closes the reproduction's loop, because the allocation under study is
the :class:`~repro.resilience.supervisor.SupervisedExecutor` policy this
library itself dispatches radius solves with.

* **Perturbation parameters** (two genuinely different *kinds*, the
  IPDPS'05 core setting): ``task_costs`` — per-task execution costs in
  seconds — and ``worker_fail_rates`` — per-worker failure
  probabilities, dimensionless and in ``[0, 1]``.
* **Performance features**: the batch ``makespan``, the ``max_load``
  any single worker accumulates (max queue backlog), and the
  ``recovery`` time spent beyond the ideal first wave — all produced by
  the deterministic :class:`~repro.systems.selfhost.model.DispatchModel`
  fluid simulation of waves, deadlines, retries, quarantine drain and
  breaker-degraded serial mode.
* **Robustness requirement**: each feature must not exceed ``beta``
  times its original (fault-free-rate) value.

Because the two kinds have different units, the default weighting is
the paper's :class:`~repro.core.weighting.NormalizedWeighting` (Eq. 5),
which needs strictly positive originals — so a self-host system under
analysis must declare *non-zero* origin failure rates (a fault-free
origin also has zero recovery time, which admits no relative bound).

With zero failure rates and no deadline the model degenerates to the
classic single-wave makespan, giving the same closed form the TPDS 2004
paper proves — :meth:`SelfhostSystem.analytic_cost_radii` exposes it as
the validation anchor for the generic solver on this substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import FeatureMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import NormalizedWeighting, WeightingScheme
from repro.exceptions import SpecificationError
from repro.utils.validation import as_2d_float_array
from repro.systems.selfhost.model import (
    SELFHOST_FEATURES,
    DispatchModel,
    SelfhostMetrics,
)

__all__ = ["SelfhostMapping", "SelfhostSystem"]


class SelfhostMapping(FeatureMapping):
    """One dispatch-model feature as a function of ``[costs, fail_rates]``.

    The flat input is the concatenation of the ``task_costs`` block
    (length ``n_tasks``) and the ``worker_fail_rates`` block (length
    ``workers``).  The mapping is picklable (plain data fields only) so
    radius solves fan out across processes, and exposes a
    :meth:`structure_key` so deterministic solves are shared through the
    :class:`~repro.parallel.cache.RadiusCache`.
    """

    def __init__(self, model: DispatchModel, feature: str) -> None:
        if feature not in SELFHOST_FEATURES:
            raise SpecificationError(
                f"unknown selfhost feature {feature!r}; expected one of "
                f"{SELFHOST_FEATURES}")
        super().__init__(model.n_tasks + model.workers)
        self.model = model
        self.feature = feature

    def value(self, x: np.ndarray) -> float:
        x = self._check_input(x)
        n = self.model.n_tasks
        metrics = self.model.simulate(x[:n], x[n:])
        return float(metrics.value(self.feature))

    def value_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised batch evaluation (one wave recursion for all rows).

        Row-for-row bit-identical with :meth:`value` — both routes go
        through the same batched accounting kernel, whose per-row
        reduction order is independent of the batch size.
        """
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        n = self.model.n_tasks
        out = self.model.simulate_many(xs[:, :n], xs[:, n:])
        return out[self.feature]

    def structure_key(self) -> tuple:
        m = self.model
        return ("selfhost", self.feature, m.n_tasks, m.workers,
                m.max_task_retries, m.deadline, m.breaker_threshold,
                m.breaker_cooldown)

    def __repr__(self) -> str:
        return (f"SelfhostMapping(feature={self.feature!r}, "
                f"model={self.model!r})")


@dataclass
class SelfhostSystem:
    """A (costs, fail-rates, policy) triple exposing FePIA analyses.

    Attributes
    ----------
    costs:
        Per-task execution costs in seconds (positive).
    fail_rates:
        Per-worker failure probabilities in ``[0, 1)``; the pool size is
        their length.  Must be strictly positive to use the default
        normalized weighting and the ``recovery`` feature.
    max_task_retries / deadline / breaker_threshold / breaker_cooldown:
        The supervisor policy under study (see
        :class:`~repro.systems.selfhost.model.DispatchModel`).
    """

    costs: np.ndarray
    fail_rates: np.ndarray
    max_task_retries: int = 2
    deadline: float | None = None
    breaker_threshold: float = 3.0
    breaker_cooldown: int = 2
    _model: DispatchModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        costs = np.asarray(self.costs, dtype=np.float64).ravel()
        rates = np.asarray(self.fail_rates, dtype=np.float64).ravel()
        if costs.size < 1 or np.any(costs <= 0):
            raise SpecificationError(
                "costs must be a non-empty vector of positive seconds")
        if rates.size < 1 or np.any(rates < 0) or np.any(rates >= 1):
            raise SpecificationError(
                "fail_rates must be a non-empty vector of probabilities "
                "in [0, 1)")
        self.costs = costs
        self.fail_rates = rates
        self._model = DispatchModel(
            n_tasks=costs.size, workers=rates.size,
            max_task_retries=self.max_task_retries, deadline=self.deadline,
            breaker_threshold=self.breaker_threshold,
            breaker_cooldown=self.breaker_cooldown)

    # ------------------------------------------------------------------
    # plain performance quantities
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of tasks in the modelled batch."""
        return self._model.n_tasks

    @property
    def workers(self) -> int:
        """Modelled pool size (the allocation under study)."""
        return self._model.workers

    @property
    def model(self) -> DispatchModel:
        """The frozen dispatch-policy model."""
        return self._model

    def origin_metrics(self) -> SelfhostMetrics:
        """Features at the original operating point."""
        return self._model.simulate(self.costs, self.fail_rates)

    def pi_orig(self) -> np.ndarray:
        """The flat original perturbation vector ``[costs, fail_rates]``."""
        return np.concatenate([self.costs, self.fail_rates])

    # ------------------------------------------------------------------
    # FePIA wiring
    # ------------------------------------------------------------------
    def cost_parameter(self) -> PerturbationParameter:
        """The per-task execution-cost perturbation parameter (seconds)."""
        return PerturbationParameter.nonnegative(
            "task_costs", self.costs, unit="s",
            description="actual per-task execution costs")

    def failure_parameter(self) -> PerturbationParameter:
        """The per-worker failure-rate parameter (dimensionless kind)."""
        return PerturbationParameter(
            "worker_fail_rates", self.fail_rates, unit="probability",
            lower=np.zeros(self.workers), upper=np.ones(self.workers),
            description="per-worker attempt failure probabilities")

    def perturbation_parameters(self) -> list[PerturbationParameter]:
        """Both kinds, in flat-vector order."""
        return [self.cost_parameter(), self.failure_parameter()]

    def feature_specs(self, beta: float,
                      features: tuple[str, ...] = SELFHOST_FEATURES
                      ) -> list[FeatureSpec]:
        """Relative-bound feature specs ``phi <= beta * phi_orig``.

        ``features`` selects a subset (the zero-failure-rate validation
        anchor uses ``("makespan",)`` because a fault-free origin has
        zero recovery, which admits no relative bound).
        """
        if beta <= 1.0:
            raise SpecificationError(f"beta must be > 1, got {beta}")
        origin = self.origin_metrics()
        specs: list[FeatureSpec] = []
        for name in features:
            orig = origin.value(name)
            if orig <= 0:
                raise SpecificationError(
                    f"feature {name!r} is {orig:g} at the origin; a "
                    "relative bound needs a positive original value "
                    "(declare non-zero origin failure rates, or select "
                    "other features)")
            feature = PerformanceFeature(
                name=f"selfhost_{name}",
                bounds=ToleranceBounds.upper(beta * orig),
                unit="s",
                description=f"dispatch-model {name} (origin {orig:g}s)")
            specs.append(FeatureSpec(feature, SelfhostMapping(self._model,
                                                              name)))
        return specs

    def robustness_analysis(
        self,
        beta: float = 1.3,
        *,
        features: tuple[str, ...] = SELFHOST_FEATURES,
        weighting: WeightingScheme | None = None,
        respect_physical_bounds: bool = True,
        method: str = "auto",
        norm: float = 2,
        seed=None,
        solver_timeout: float | None = None,
        workers: int = 1,
        executor=None,
        service=None,
        radius_cache=None,
    ) -> RobustnessAnalysis:
        """Build the full two-kind FePIA analysis for this policy.

        Defaults differ from the other systems where the substrate
        demands it: the weighting is :class:`NormalizedWeighting` (the
        two kinds have different units, so identity weighting is
        refused), physical bounds are respected (failure rates live in
        ``[0, 1]``), and the solver defaults to ``auto`` — the fluid
        simulation is piecewise-smooth, so the numeric projection solver
        (finite-difference Jacobians) converges to the exact boundary
        where directional bisection only brackets it from above.
        """
        if weighting is None:
            weighting = NormalizedWeighting()
        return RobustnessAnalysis(
            self.feature_specs(beta, features),
            self.perturbation_parameters(),
            weighting=weighting,
            respect_physical_bounds=respect_physical_bounds,
            method=method, norm=norm, seed=seed,
            solver_timeout=solver_timeout,
            workers=workers, executor=executor, service=service,
            radius_cache=radius_cache)

    # ------------------------------------------------------------------
    # validation anchor
    # ------------------------------------------------------------------
    def analytic_cost_radii(self, beta: float) -> np.ndarray:
        """Closed-form cost-only radii per worker, for the degenerate case.

        With all failure rates zero and no deadline the model collapses
        to a single wave — classic makespan over the round-robin
        allocation — so the identity-weighted Euclidean radius of worker
        ``w`` is ``(tau - load_w) / sqrt(n_w)``, the TPDS 2004 closed
        form.  Used to validate the generic solver on this substrate.
        """
        if np.any(self.fail_rates != 0) or self.deadline is not None:
            raise SpecificationError(
                "the closed form holds only for zero failure rates and "
                "no deadline (single-wave degenerate case)")
        if beta <= 1.0:
            raise SpecificationError(f"beta must be > 1, got {beta}")
        assigned = self._model.worker_of()
        loads = np.bincount(assigned, weights=self.costs,
                            minlength=self.workers)
        tau = beta * float(loads.max())
        radii = np.empty(self.workers)
        for w in range(self.workers):
            n_w = self._model.tasks_on(w).size
            radii[w] = math.inf if n_w == 0 \
                else (tau - loads[w]) / math.sqrt(n_w)
        return radii

    # ------------------------------------------------------------------
    # canonical workload
    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls, n_tasks: int = 96, workers: int = 3, *,
                 seed: int = 2005, max_task_retries: int = 2,
                 deadline: float | None = None) -> "SelfhostSystem":
        """The canonical seeded self-host workload used by CLI and tests.

        Sized so that *realized* chaos runs concentrate around the fluid
        prediction: the batch is large enough (32 tasks per modelled
        worker) that the retry-wave load has a small coefficient of
        variation, cost heterogeneity is gamma-distributed around 1s
        with bounded tail (one extra retry cannot dwarf a tolerance
        margin), and origin failure rates sit near 20% so the recovery
        feature has a scale well above single-retry granularity.  The
        breaker threshold scales with the batch — the real breaker
        counts pool-level incidents, not individual task failures, so a
        fixed small threshold would keep the model permanently serial.
        """
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=int(seed), spawn_key=(ord("s"), ord("h"))))
        costs = rng.gamma(shape=16.0, scale=1.0 / 16.0, size=n_tasks)
        rates = 0.15 + 0.1 * rng.random(workers)
        return cls(costs=costs, fail_rates=rates,
                   max_task_retries=max_task_retries, deadline=deadline,
                   breaker_threshold=max(3.0, n_tasks / 2.0))
