"""Shock catalogue for the self-hosting executor system.

The self-host substrate has two genuinely different kinds — per-task
costs in seconds and per-worker failure probabilities — so the star
entry is ``retry-storm``: a correlated burst co-moving both kinds at
once, the regime where the executor's retry waves and breaker matter.
Magnitudes are scaled from the mean original value of each kind, the
same convention as the HiPer-D catalogue (the generic solvers provide
the radius to the lab at run time).
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.shocks import ShockScenario
from repro.systems.selfhost.system import SelfhostSystem

__all__ = ["selfhost_scenario_catalogue"]


def selfhost_scenario_catalogue(
    system: SelfhostSystem,
    *,
    n_steps: int = 40,
    relative_magnitude: float = 0.4,
) -> list[ShockScenario]:
    """The shipped scenarios for a self-host system.

    Parameters
    ----------
    system:
        The :class:`~repro.systems.selfhost.system.SelfhostSystem` under
        study; the catalogue reads its original costs and failure rates.
    n_steps:
        Trajectory length for every scenario.
    relative_magnitude:
        Shock scale as a fraction of the mean original value of the
        touched kind(s).
    """
    mean_cost = float(np.mean(system.costs))
    mean_rate = float(np.mean(system.fail_rates))
    return [
        ShockScenario(
            name="retry-storm",
            kind="correlated",
            magnitude=relative_magnitude * mean_cost,
            n_steps=n_steps,
            description="one latent factor co-moving task costs and "
                        "worker failure rates (multi-kind)"),
        ShockScenario(
            name="cost-spike",
            kind="spike",
            magnitude=relative_magnitude * mean_cost,
            n_steps=n_steps,
            rate=0.25,
            params=("task_costs",),
            description="sporadic per-task cost spikes (stragglers)"),
        ShockScenario(
            name="cost-drift",
            kind="drift",
            magnitude=relative_magnitude * mean_cost,
            n_steps=n_steps,
            jitter=0.1,
            params=("task_costs",),
            description="jittered uniform task-cost inflation"),
        ShockScenario(
            name="failure-surge",
            kind="drift",
            magnitude=4.0 * mean_rate,
            n_steps=n_steps,
            params=("worker_fail_rates",),
            description="steady growth of every worker's failure "
                        "probability toward the retry budget"),
    ]
