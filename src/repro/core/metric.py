"""The robustness metric ``rho`` and structured reporting.

``rho_mu(Phi, P) = min_{phi_i in Phi} r_mu(phi_i, P)`` — the robustness of
resource allocation ``mu`` with respect to the feature set ``Phi`` against
the perturbation parameter set ``Pi`` — plus a tabular report of the
per-feature radii, witness bounds, and solver provenance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.fepia import RobustnessAnalysis
from repro.utils.tables import format_table

__all__ = ["FeatureRadiusRow", "RobustnessReport", "robustness_metric"]


@dataclass(frozen=True)
class FeatureRadiusRow:
    """One feature's contribution to the robustness report.

    Attributes
    ----------
    feature:
        Feature name.
    radius:
        P-space robustness radius ``r_mu(phi_i, P)``.
    original_value:
        ``phi_i`` at the original operating point.
    beta_min, beta_max:
        The tolerance interval.
    bound_hit:
        Which bound the witness boundary point attains (``None`` for an
        infinite radius).
    method:
        Solver that produced the radius.
    is_critical:
        Whether this feature attains the system minimum ``rho``.
    """

    feature: str
    radius: float
    original_value: float
    beta_min: float
    beta_max: float
    bound_hit: float | None
    method: str
    is_critical: bool


@dataclass(frozen=True)
class RobustnessReport:
    """Complete robustness assessment of one resource allocation.

    Attributes
    ----------
    rho:
        The system robustness metric (minimum radius over features).
    rows:
        Per-feature breakdown.
    weighting:
        Name of the weighting scheme used to build P-space.
    norm:
        The distance norm radii were measured in.
    """

    rho: float
    rows: tuple[FeatureRadiusRow, ...]
    weighting: str
    norm: float

    @property
    def critical_feature(self) -> str:
        """Name of the feature that limits the system's robustness."""
        for row in self.rows:
            if row.is_critical:
                return row.feature
        raise RuntimeError("report has no critical feature")  # pragma: no cover

    def to_table(self) -> str:
        """Render the report as an aligned text table."""
        headers = ["feature", "radius r(phi,P)", "phi_orig", "beta_min",
                   "beta_max", "bound hit", "solver", "critical"]
        rows = []
        for r in self.rows:
            rows.append([
                r.feature,
                r.radius,
                r.original_value,
                r.beta_min,
                r.beta_max,
                "-" if r.bound_hit is None else f"{r.bound_hit:.6g}",
                r.method,
                "*" if r.is_critical else "",
            ])
        title = (f"robustness rho = {self.rho:.6g}  "
                 f"(weighting={self.weighting}, norm=l{self.norm})")
        return format_table(headers, rows, title=title)

    def __str__(self) -> str:
        return self.to_table()


def robustness_metric(analysis: RobustnessAnalysis) -> RobustnessReport:
    """Run the full FePIA analysis and assemble a :class:`RobustnessReport`.

    Parameters
    ----------
    analysis:
        A configured :class:`~repro.core.fepia.RobustnessAnalysis`.

    Returns
    -------
    RobustnessReport
        ``rho`` plus the per-feature radii; features whose radius equals
        ``rho`` (within exact float equality, as ``rho`` is one of the
        radii) are flagged critical.
    """
    results = {spec.name: analysis.radius(spec) for spec in analysis.features}
    rho = min(res.radius for res in results.values())
    rows = []
    for spec in analysis.features:
        res = results[spec.name]
        rows.append(FeatureRadiusRow(
            feature=spec.name,
            radius=res.radius,
            original_value=res.original_value,
            beta_min=spec.feature.bounds.beta_min,
            beta_max=spec.feature.bounds.beta_max,
            bound_hit=res.bound_hit,
            method=res.method,
            is_critical=(res.radius == rho) or (
                math.isinf(rho) and math.isinf(res.radius)),
        ))
    return RobustnessReport(
        rho=rho,
        rows=tuple(rows),
        weighting=analysis.weighting.name,
        norm=analysis.norm,
    )
