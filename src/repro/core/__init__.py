"""Core robustness-metric framework (the paper's primary contribution).

The subpackage implements the FePIA four-step procedure of Ali et al. (TPDS
2004) and its IPDPS 2005 multi-kind extension:

* :mod:`repro.core.features` — performance features ``phi_i`` and their
  tolerable-variation bounds ``<beta_min, beta_max>`` (FePIA step 1);
* :mod:`repro.core.perturbation` — perturbation parameters ``pi_j``
  (FePIA step 2);
* :mod:`repro.core.mappings` — the impact functions ``f_ij`` (FePIA step 3);
* :mod:`repro.core.radius` and :mod:`repro.core.solvers` — robustness radii
  ``r_mu(phi_i, pi_j)`` (FePIA step 4, Eq. 1);
* :mod:`repro.core.weighting` / :mod:`repro.core.pspace` — the multi-kind
  concatenation ``P`` with sensitivity-based or normalized weighting
  (Sections 3.1 / 3.2 of the IPDPS 2005 paper, Eqs. 2 and 5);
* :mod:`repro.core.fepia` / :mod:`repro.core.metric` — orchestration and the
  final metric ``rho_mu(Phi, P) = min_i r_mu(phi_i, P)``;
* :mod:`repro.core.degeneracy` — closed forms for the paper's central
  analytic results (the ``1/sqrt(n)`` degeneracy and its normalized fix);
* :mod:`repro.core.feasibility` — the operating-point test of Sec. 3.1.
"""

from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.perturbation import PerturbationParameter
from repro.core.mappings import (
    FeatureMapping,
    LinearMapping,
    QuadraticMapping,
    ProductMapping,
    CallableMapping,
    MaxMapping,
    RestrictedMapping,
    ReweightedMapping,
)
from repro.core.diagnostics import Quality, SolverAttempt
from repro.core.radius import (
    RadiusProblem,
    RadiusResult,
    compute_radii,
    compute_radius,
)
from repro.core.weighting import (
    WeightingScheme,
    IdentityWeighting,
    SensitivityWeighting,
    NormalizedWeighting,
    CustomWeighting,
)
from repro.core.pspace import ConcatenatedPerturbation
from repro.core.fepia import RobustnessAnalysis, FeatureSpec
from repro.core.metric import RobustnessReport, robustness_metric
from repro.core.feasibility import FeasibilityChecker, FeasibilityVerdict
from repro.core.criticality import CriticalityReport, criticality_report

__all__ = [
    "PerformanceFeature",
    "ToleranceBounds",
    "PerturbationParameter",
    "FeatureMapping",
    "LinearMapping",
    "QuadraticMapping",
    "ProductMapping",
    "CallableMapping",
    "MaxMapping",
    "RestrictedMapping",
    "ReweightedMapping",
    "RadiusProblem",
    "RadiusResult",
    "compute_radii",
    "compute_radius",
    "Quality",
    "SolverAttempt",
    "WeightingScheme",
    "IdentityWeighting",
    "SensitivityWeighting",
    "NormalizedWeighting",
    "CustomWeighting",
    "ConcatenatedPerturbation",
    "RobustnessAnalysis",
    "FeatureSpec",
    "RobustnessReport",
    "robustness_metric",
    "FeasibilityChecker",
    "FeasibilityVerdict",
    "CriticalityReport",
    "criticality_report",
]
