"""Closed forms of the paper's central derivations (Sections 3.1 and 3.2).

Setting: the *general linear case*.  The performance feature is

    phi(pi_1, ..., pi_n) = k_1 pi_1 + ... + k_n pi_n ,

a linear function of ``n`` one-element perturbation parameters of different
kinds, with original values ``pi_j^orig`` and the relative requirement
``beta_max = beta * phi_orig`` (``beta > 1``); only the upper bound is
constrained.

Section 3.1 (sensitivity-based weighting, the 2004 proposal):

* Step 1 — per-parameter radius with the others frozen at their originals:

      r_mu(phi, pi_j) = (beta - 1) / k_j * sum_m k_m pi_m^orig ,

  hence ``alpha_j = 1 / r_mu(phi, pi_j)``.
* Step 2 — in P-space the constraint collapses to
  ``P_1 + ... + P_n = beta/(beta-1)`` and the radius is **exactly**

      r_mu(phi, P) = 1 / sqrt(n) ,

  independent of every ``k_j``, ``beta`` and ``pi_j^orig`` — the paper's
  negative result ("degeneracy").

Section 3.2 (normalization by original values, the 2005 proposal):

      r_mu(phi, P) = (beta - 1) * |sum_j k_j pi_j^orig|
                     / sqrt(sum_m (k_m pi_m^orig)^2) ,

  which depends on the coefficients, the requirement and the originals, as
  a useful measure should.

Every function here is pure closed-form arithmetic — no optimisation — so
the numeric machinery elsewhere in the library can be validated against
these expressions to machine precision (experiments E2/E3, and the property
tests in ``tests/core/test_degeneracy.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SpecificationError
from repro.utils.validation import as_1d_float_array, check_finite, check_positive

__all__ = [
    "LinearCase",
    "per_parameter_radius_linear",
    "sensitivity_alphas_linear",
    "sensitivity_radius_linear",
    "normalized_radius_linear",
]


@dataclass(frozen=True)
class LinearCase:
    """The general linear case of Section 3: coefficients, originals, beta.

    Attributes
    ----------
    coefficients:
        The ``k_j`` (nonzero; the paper's derivation divides by ``k_j``).
    originals:
        The ``pi_j^orig`` (positive, as they are physical quantities).
    beta:
        The relative requirement, ``beta > 1``.
    """

    coefficients: np.ndarray
    originals: np.ndarray
    beta: float

    def __post_init__(self) -> None:
        k = check_finite(as_1d_float_array(self.coefficients, name="coefficients"),
                         name="coefficients")
        orig = check_finite(as_1d_float_array(self.originals, name="originals"),
                            name="originals")
        if k.size != orig.size:
            raise SpecificationError(
                f"coefficients ({k.size}) and originals ({orig.size}) must "
                "have equal length")
        if np.any(k == 0):
            raise SpecificationError(
                "coefficients must be nonzero (the derivation divides by k_j)")
        check_positive(orig, name="originals")
        beta = float(self.beta)
        if beta <= 1.0:
            raise SpecificationError(f"beta must be > 1, got {beta}")
        object.__setattr__(self, "coefficients", k)
        object.__setattr__(self, "originals", orig)
        object.__setattr__(self, "beta", beta)

    @property
    def n(self) -> int:
        """Number of one-element perturbation parameters."""
        return int(self.coefficients.size)

    @property
    def phi_orig(self) -> float:
        """Original feature value ``sum_m k_m pi_m^orig``."""
        return float(self.coefficients @ self.originals)

    @property
    def beta_max(self) -> float:
        """The constraint level ``beta * phi_orig``."""
        return self.beta * self.phi_orig


def per_parameter_radius_linear(case: LinearCase, j: int) -> float:
    """Step-1 radius ``r_mu(phi, pi_j)`` with the other parameters frozen.

    The paper solves the one-dimensional constraint equation for ``pi_j``
    and obtains

        r_mu(phi, pi_j) = (beta - 1) / k_j * sum_m k_m pi_m^orig .

    Parameters
    ----------
    case:
        The linear case.
    j:
        Zero-based parameter index.
    """
    if not 0 <= j < case.n:
        raise SpecificationError(f"index j={j} out of range for n={case.n}")
    return float((case.beta - 1.0) / case.coefficients[j] * case.phi_orig)


def sensitivity_alphas_linear(case: LinearCase) -> np.ndarray:
    """The sensitivity weights ``alpha_j = 1/r_mu(phi, pi_j)`` (Equation 3).

        alpha_j = k_j / ((beta - 1) * sum_m k_m pi_m^orig) .
    """
    denom = (case.beta - 1.0) * case.phi_orig
    if denom == 0.0:
        raise SpecificationError(
            "degenerate case: (beta-1) * phi_orig is zero, alphas undefined")
    return case.coefficients / denom


def sensitivity_radius_linear(case: LinearCase) -> float:
    """Section 3.1's result: the sensitivity-weighted radius is ``1/sqrt(n)``.

    In P-space the constraint equation collapses to the plane
    ``P_1 + ... + P_n = beta/(beta-1)`` while
    ``P_orig`` sums to ``1/(beta-1)``; Equation 4 then gives

        r = |1/(beta-1) - beta/(beta-1)| / sqrt(n) = 1/sqrt(n) .

    The function evaluates the *un-simplified* plane-distance expression so
    tests can confirm it equals ``1/sqrt(n)`` rather than assuming it.
    """
    alphas = sensitivity_alphas_linear(case)
    p_orig = alphas * case.originals
    # Plane in P-space: sum_j P_j = beta/(beta-1); normal is the ones vector.
    rhs = case.beta / (case.beta - 1.0)
    return abs(float(np.sum(p_orig)) - rhs) / math.sqrt(case.n)


def normalized_radius_linear(case: LinearCase) -> float:
    """Section 3.2's normalized-weighting radius.

    With ``P_j = pi_j / pi_j^orig`` (so ``P_orig = [1..1]``), the constraint
    plane is ``sum_j k_j pi_j^orig P_j = beta * sum_m k_m pi_m^orig`` and
    Equation 4 yields

        r = (beta - 1) * |sum_j k_j pi_j^orig|
            / sqrt(sum_m (k_m pi_m^orig)^2) .
    """
    weighted = case.coefficients * case.originals
    denom = math.sqrt(float(np.sum(weighted ** 2)))
    if denom == 0.0:
        raise SpecificationError(
            "degenerate case: all k_j pi_j^orig vanish, radius undefined")
    return (case.beta - 1.0) * abs(float(np.sum(weighted))) / denom
