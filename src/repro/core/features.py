"""Performance features and their tolerable-variation bounds (FePIA step 1).

A *performance feature* ``phi_i`` is a scalar quantity-of-service that the
robustness requirement limits in variation — e.g. makespan, a machine's
finish time, an application's end-to-end latency, or a fractional
throughput utilisation.  The tolerable variation is an interval
``<beta_min, beta_max>``; the system is *robust* while every feature stays
inside its interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import SpecificationError

__all__ = ["ToleranceBounds", "PerformanceFeature"]


@dataclass(frozen=True)
class ToleranceBounds:
    """The tuple ``<beta_min, beta_max>`` bounding a feature's variation.

    Either end may be infinite: a latency constraint typically has
    ``beta_min = -inf`` (only the upper bound matters), while a throughput
    constraint may bound only from below.

    Attributes
    ----------
    beta_min:
        Lower bound of the tolerable interval (may be ``-inf``).
    beta_max:
        Upper bound of the tolerable interval (may be ``+inf``).
    """

    beta_min: float = -math.inf
    beta_max: float = math.inf

    def __post_init__(self) -> None:
        bmin = float(self.beta_min)
        bmax = float(self.beta_max)
        if math.isnan(bmin) or math.isnan(bmax):
            raise SpecificationError("tolerance bounds must not be NaN")
        if bmin >= bmax:
            raise SpecificationError(
                f"tolerance interval is empty: beta_min={bmin} >= beta_max={bmax}")
        if math.isinf(bmin) and math.isinf(bmax):
            raise SpecificationError(
                "at least one tolerance bound must be finite; an unbounded "
                "feature imposes no robustness requirement")
        object.__setattr__(self, "beta_min", bmin)
        object.__setattr__(self, "beta_max", bmax)

    @classmethod
    def upper(cls, beta_max: float) -> "ToleranceBounds":
        """Bounds with only a finite upper limit (latency-style constraint)."""
        return cls(beta_min=-math.inf, beta_max=beta_max)

    @classmethod
    def lower(cls, beta_min: float) -> "ToleranceBounds":
        """Bounds with only a finite lower limit (throughput-style constraint)."""
        return cls(beta_min=beta_min, beta_max=math.inf)

    @classmethod
    def relative(cls, original_value: float, beta: float,
                 *, two_sided: bool = False) -> "ToleranceBounds":
        """Bounds proportional to the feature's original value.

        This is the paper's canonical form ``beta_max = beta * phi_orig``
        with ``beta > 1`` ("makespan should not exceed 1.2 times its
        original value").  With ``two_sided=True`` the lower bound is set
        symmetrically to ``(2 - beta) * phi_orig``.

        Parameters
        ----------
        original_value:
            The unperturbed feature value ``phi_orig``.
        beta:
            Relative requirement, must be ``> 1``.
        two_sided:
            Also constrain from below.
        """
        beta = float(beta)
        original_value = float(original_value)
        if beta <= 1.0:
            raise SpecificationError(f"relative bound requires beta > 1, got {beta}")
        if original_value <= 0.0:
            raise SpecificationError(
                "relative bounds need a positive original value, got "
                f"{original_value}")
        upper = beta * original_value
        lower = (2.0 - beta) * original_value if two_sided else -math.inf
        return cls(beta_min=lower, beta_max=upper)

    @property
    def finite_bounds(self) -> tuple[float, ...]:
        """The subset of ``(beta_min, beta_max)`` that is finite."""
        out = []
        if math.isfinite(self.beta_min):
            out.append(self.beta_min)
        if math.isfinite(self.beta_max):
            out.append(self.beta_max)
        return tuple(out)

    def contains(self, value: float, *, strict: bool = False) -> bool:
        """Whether ``value`` lies in the tolerable interval.

        With ``strict=True`` boundary values are considered *outside*, which
        matches the open "region of robust operation" used when checking
        that a point strictly inside the robustness ball is safe.
        """
        if strict:
            return self.beta_min < value < self.beta_max
        return self.beta_min <= value <= self.beta_max

    def violation_amount(self, value: float) -> float:
        """Distance by which ``value`` exceeds the interval (0 if inside)."""
        if value > self.beta_max:
            return value - self.beta_max
        if value < self.beta_min:
            return self.beta_min - value
        return 0.0


@dataclass(frozen=True)
class PerformanceFeature:
    """A named QoS performance feature ``phi_i`` with its tolerance bounds.

    Attributes
    ----------
    name:
        Human-readable identifier (unique within an analysis).
    bounds:
        The tolerable-variation interval ``<beta_min, beta_max>``.
    unit:
        Unit of the feature's value (informational; used in reports).
    description:
        Optional free-text description for reports.
    """

    name: str
    bounds: ToleranceBounds
    unit: str = ""
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("feature name must be non-empty")
        if not isinstance(self.bounds, ToleranceBounds):
            raise SpecificationError(
                f"bounds must be a ToleranceBounds, got {type(self.bounds).__name__}")

    def is_satisfied(self, value: float, *, strict: bool = False) -> bool:
        """Whether a feature value satisfies this feature's QoS requirement."""
        return self.bounds.contains(value, strict=strict)
