"""Array-backend seam for the solver kernels.

The solver kernels under :mod:`repro.core.solvers` never import NumPy
directly (a lint-gated rule); they import the :data:`xp` proxy from this
module instead::

    from repro.core.backend import xp

    points = xp.asarray(origin) + ts[:, None] * directions

``xp`` forwards every attribute access to the *active* array module —
NumPy by default — so the kernels are written once against the NumPy API
and an API-compatible accelerator backend (numba's ``numpy`` shim, JAX's
``jax.numpy``, CuPy, ...) can be dropped in later without touching
solver logic.  Backends register under a short name and activate via
:func:`set_backend` or the :func:`use_backend` context manager::

    import repro.core.backend as backend

    backend.register_backend("jax", "jax.numpy")   # import is lazy
    with backend.use_backend("jax"):
        ...  # solver kernels now call jax.numpy

Two caveats the kernels rely on:

* **Bit-identity is a NumPy-backend contract.**  The batched/scalar
  bit-identity promises pinned across ``tests/core`` hold for the default
  NumPy backend; an alternate backend may legitimately produce different
  last-bit floats (different reduction orders, fused multiply-adds) and
  is expected to be validated against its own tolerance, not bitwise.
* **The proxy is attribute-level.**  ``xp.float64``, ``xp.errstate``,
  ``xp.linalg.norm`` … all resolve on the active module at call time, so
  switching backends affects subsequent calls immediately; values already
  produced by the previous backend are plain arrays and remain valid
  inputs wherever the APIs interoperate.
"""

from __future__ import annotations

import contextlib
import importlib
from types import ModuleType

import numpy as _numpy

from repro.exceptions import SpecificationError

__all__ = [
    "xp",
    "ArrayBackend",
    "active_backend",
    "available_backends",
    "backend_module",
    "register_backend",
    "set_backend",
    "use_backend",
]

#: Registered backends: name -> module object or lazy import path.
_REGISTRY: dict[str, ModuleType | str] = {"numpy": _numpy}
_active_name: str = "numpy"
_active_module: ModuleType = _numpy


class ArrayBackend:
    """Attribute proxy forwarding to the active array module."""

    __slots__ = ()

    def __getattr__(self, name: str):
        return getattr(_active_module, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<xp backend={_active_name!r} ({_active_module.__name__})>"


#: The provider the solver kernels import instead of ``numpy``.
xp = ArrayBackend()


def active_backend() -> str:
    """Name of the backend ``xp`` currently forwards to."""
    return _active_name


def backend_module() -> ModuleType:
    """The module object behind ``xp`` (default: ``numpy``)."""
    return _active_module


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted; registration != importable."""
    return tuple(sorted(_REGISTRY))


def register_backend(name: str, module: ModuleType | str) -> None:
    """Register an array backend under ``name``.

    ``module`` is either an imported module object or a dotted import
    path resolved lazily on first :func:`set_backend` — registering a
    backend whose dependency is absent is free and safe.
    """
    if not name or not isinstance(name, str):
        raise SpecificationError(f"backend name must be a non-empty string, "
                                 f"got {name!r}")
    if not isinstance(module, (ModuleType, str)):
        raise SpecificationError(
            f"backend {name!r} must register a module or an import path, "
            f"got {type(module).__name__}")
    _REGISTRY[name] = module


def set_backend(name: str) -> str:
    """Activate a registered backend; returns the previous backend's name.

    Raises :class:`~repro.exceptions.SpecificationError` for an unknown
    name or a lazily-registered backend whose import fails — in both
    cases the active backend is left unchanged.
    """
    global _active_name, _active_module
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise SpecificationError(
            f"unknown array backend {name!r}; registered: "
            f"{', '.join(available_backends())}") from None
    if isinstance(entry, str):
        try:
            entry = importlib.import_module(entry)
        except ImportError as exc:
            raise SpecificationError(
                f"array backend {name!r} is registered but not importable: "
                f"{exc}") from exc
        _REGISTRY[name] = entry
    previous = _active_name
    _active_name = name
    _active_module = entry
    return previous


@contextlib.contextmanager
def use_backend(name: str):
    """Context manager activating ``name`` and restoring the previous
    backend on exit; yields the :data:`xp` proxy."""
    previous = set_backend(name)
    try:
        yield xp
    finally:
        set_backend(previous)
