"""Weighting schemes for concatenating unlike perturbation parameters.

The IPDPS'05 paper's subject: perturbation parameters of different *kinds*
(units) cannot be concatenated directly — "one cannot assemble ``e_j`` and
``m_k`` in one ``pi_j`` without first adjusting for the unit changes".  A
:class:`WeightingScheme` supplies the per-element positive weights
``alpha`` that make the concatenation ``P = (alpha_1 x pi_1) * ...``
dimensionless:

* :class:`IdentityWeighting` — no adjustment; only legal when every
  parameter shares one unit (the single-kind case of the 2004 paper).
  Mixing units under it raises :class:`~repro.exceptions.UnitMismatchError`.
* :class:`SensitivityWeighting` — the 2004 paper's proposal,
  ``alpha_j = 1 / r_mu(phi_i, pi_j)``; shown *degenerate* in Section 3.1
  (radius is always ``1/sqrt(n)`` for linear features of one-element
  parameters).
* :class:`NormalizedWeighting` — the 2005 paper's fix (Equation 5):
  normalise every element by its own original value, so ``P_orig = [1..1]``.
* :class:`CustomWeighting` — user-chosen alphas (e.g. domain-derived
  exchange rates between seconds and bytes).
"""

from __future__ import annotations

import abc
import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.perturbation import PerturbationParameter
from repro.exceptions import SpecificationError, UnitMismatchError
from repro.utils.validation import as_1d_float_array

__all__ = [
    "WeightingScheme",
    "IdentityWeighting",
    "SensitivityWeighting",
    "NormalizedWeighting",
    "CustomWeighting",
]


class WeightingScheme(abc.ABC):
    """Strategy producing the per-element weights ``alpha`` for P-space.

    Subclasses implement :meth:`elementwise_alphas`; the returned flat array
    is positive, finite, and has one entry per element of the concatenated
    parameters, in declaration order.
    """

    #: Whether this scheme's alphas depend on per-parameter robustness
    #: radii (and therefore on the feature under analysis).
    requires_radii: bool = False

    @abc.abstractmethod
    def elementwise_alphas(
        self,
        params: Sequence[PerturbationParameter],
        per_param_radii: Mapping[str, float] | None = None,
    ) -> np.ndarray:
        """Flat positive weight vector for the concatenation of ``params``.

        Parameters
        ----------
        params:
            Perturbation parameters in concatenation order.
        per_param_radii:
            Map from parameter name to the single-parameter robustness
            radius ``r_mu(phi_i, pi_j)``; required only by schemes with
            ``requires_radii = True``.
        """

    @property
    def name(self) -> str:
        """Short scheme name used in reports."""
        return type(self).__name__.removesuffix("Weighting").lower()

    @staticmethod
    def _validate(alphas: np.ndarray) -> np.ndarray:
        alphas = np.asarray(alphas, dtype=np.float64)
        if np.any(~np.isfinite(alphas)) or np.any(alphas <= 0):
            raise SpecificationError(
                f"weights must be positive and finite, got {alphas!r}")
        return alphas


class IdentityWeighting(WeightingScheme):
    """No weighting: ``P = pi`` (the single-kind case of the 2004 paper).

    Refuses to combine parameters with different declared units — this is
    exactly the misuse the 2005 paper warns against, so the library makes it
    a hard error rather than a silent wrong answer.  Parameters with empty
    units are treated as mutually compatible (the caller asserts
    unit-consistency by leaving units unset).
    """

    def elementwise_alphas(
        self,
        params: Sequence[PerturbationParameter],
        per_param_radii: Mapping[str, float] | None = None,
    ) -> np.ndarray:
        units = {p.unit for p in params if p.unit}
        if len(units) > 1:
            raise UnitMismatchError(
                "IdentityWeighting cannot concatenate parameters with "
                f"different units {sorted(units)}; the Euclidean norm of the "
                "concatenation would add unlike units. Use Normalized- or "
                "SensitivityWeighting (Section 3 of the paper).")
        total = sum(p.dimension for p in params)
        return np.ones(total)


class SensitivityWeighting(WeightingScheme):
    """The 2004 paper's sensitivity-based weighting, ``alpha_j = 1/r_j``.

    Each parameter vector is scaled by the reciprocal of its own
    single-parameter robustness radius, so each weighted block is
    dimensionless.  The 2005 paper proves this degenerates for linear
    features of one-element parameters (radius always ``1/sqrt(n)``);
    the library keeps it as a first-class scheme precisely so that the
    degeneracy experiments (E2) can exercise it.
    """

    requires_radii = True

    def elementwise_alphas(
        self,
        params: Sequence[PerturbationParameter],
        per_param_radii: Mapping[str, float] | None = None,
    ) -> np.ndarray:
        if per_param_radii is None:
            raise SpecificationError(
                "SensitivityWeighting needs per-parameter radii "
                "r_mu(phi_i, pi_j); compute them first (RobustnessAnalysis "
                "does this automatically)")
        blocks = []
        for p in params:
            try:
                r = float(per_param_radii[p.name])
            except KeyError as exc:
                raise SpecificationError(
                    f"missing per-parameter radius for {p.name!r}") from exc
            if not math.isfinite(r) or r <= 0:
                raise SpecificationError(
                    f"sensitivity weighting needs a positive finite radius "
                    f"for {p.name!r}, got {r}; a zero radius means the "
                    "allocation sits on its boundary and an infinite one "
                    "means the parameter cannot violate the feature")
            blocks.append(np.full(p.dimension, 1.0 / r))
        return self._validate(np.concatenate(blocks))


class NormalizedWeighting(WeightingScheme):
    """The 2005 paper's proposal (Eq. 5): normalise by original values.

    ``P_l = pi_l / pi_l^orig`` elementwise, so ``P_orig = [1 1 ... 1]`` and
    the radius measures *relative* perturbations.  Requires every original
    value to be nonzero (the paper implicitly assumes positive originals;
    we accept any nonzero value and take the reciprocal's magnitude —
    weights must be positive for the box-bound transforms to be monotone,
    so negative originals are rejected explicitly).
    """

    def elementwise_alphas(
        self,
        params: Sequence[PerturbationParameter],
        per_param_radii: Mapping[str, float] | None = None,
    ) -> np.ndarray:
        blocks = []
        for p in params:
            if np.any(p.original <= 0):
                raise SpecificationError(
                    f"NormalizedWeighting requires strictly positive original "
                    f"values; parameter {p.name!r} has "
                    f"min {p.original.min():g}")
            blocks.append(1.0 / p.original)
        return self._validate(np.concatenate(blocks))


class CustomWeighting(WeightingScheme):
    """User-supplied weights, per parameter (scalar) or per element (array).

    Parameters
    ----------
    alphas:
        Mapping from parameter name to either a positive scalar applied to
        every element of that parameter, or a positive array with one entry
        per element.
    """

    def __init__(self, alphas: Mapping[str, float | Sequence[float]]) -> None:
        if not alphas:
            raise SpecificationError("CustomWeighting needs at least one weight")
        self._alphas = dict(alphas)

    def elementwise_alphas(
        self,
        params: Sequence[PerturbationParameter],
        per_param_radii: Mapping[str, float] | None = None,
    ) -> np.ndarray:
        blocks = []
        for p in params:
            if p.name not in self._alphas:
                raise SpecificationError(
                    f"CustomWeighting has no weight for parameter {p.name!r}")
            a = self._alphas[p.name]
            if np.isscalar(a):
                block = np.full(p.dimension, float(a))
            else:
                block = as_1d_float_array(a, name=f"alphas[{p.name}]")
                if block.size != p.dimension:
                    raise SpecificationError(
                        f"weight array for {p.name!r} has length {block.size}, "
                        f"expected {p.dimension}")
            blocks.append(block)
        return self._validate(np.concatenate(blocks))
