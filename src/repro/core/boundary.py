"""Boundary-set utilities shared by the radius solvers.

The boundary of the robust region for feature ``phi_i`` is the set
``{x : f(x) = beta_min or f(x) = beta_max}`` (FePIA step 4).  This module
provides structural analysis of mappings — in particular recognising when a
mapping (possibly wrapped in restriction/reweighting adapters) is affine, so
the closed-form hyperplane solver (the paper's Equation 4) applies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.mappings import (
    FeatureMapping,
    LinearMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)

__all__ = ["as_linear", "as_diagonal_quadratic", "BoundaryCrossing"]


def as_linear(mapping: FeatureMapping) -> LinearMapping | None:
    """Extract an equivalent :class:`LinearMapping`, or ``None``.

    Recognises:

    * a :class:`LinearMapping` itself;
    * a :class:`ReweightedMapping` over a linear base — still affine with
      coefficients ``k / alpha``;
    * a :class:`RestrictedMapping` over a linear base — affine in the free
      block with the frozen coordinates folded into the constant;
    * a :class:`SumMapping` whose components are all (recursively) linear.

    The radius dispatcher uses this to route any structurally-affine feature
    to the exact hyperplane solver instead of the iterative one.
    """
    if isinstance(mapping, LinearMapping):
        return mapping
    if isinstance(mapping, ReweightedMapping):
        inner = as_linear(mapping.base)
        if inner is None:
            return None
        return LinearMapping(inner.coefficients / mapping.alphas, inner.constant)
    if isinstance(mapping, RestrictedMapping):
        inner = as_linear(mapping.base)
        if inner is None:
            return None
        k = inner.coefficients
        frozen = np.ones(mapping.base.n_inputs, dtype=bool)
        frozen[mapping.free_indices] = False
        const = inner.constant + float(
            k[frozen] @ mapping.reference[frozen])
        return LinearMapping(k[mapping.free_indices], const)
    if isinstance(mapping, SumMapping):
        parts = [as_linear(c) for c in mapping.components]
        if any(p is None for p in parts):
            return None
        coeffs = np.sum([p.coefficients for p in parts], axis=0)
        const = float(sum(p.constant for p in parts))
        return LinearMapping(coeffs, const)
    return None


def as_diagonal_quadratic(mapping: FeatureMapping) -> QuadraticMapping | None:
    """Extract an equivalent diagonal positive quadratic, or ``None``.

    Recognises ``sum_i d_i x_i^2 + c`` with every ``d_i > 0`` and a zero
    linear term, directly or through a :class:`ReweightedMapping` (which
    rescales the diagonal by ``1/alpha_i^2``).  The dispatcher routes such
    features to the exact ellipsoid-projection solver.
    """
    if isinstance(mapping, ReweightedMapping):
        inner = as_diagonal_quadratic(mapping.base)
        if inner is None:
            return None
        d = np.diag(inner.quadratic) / mapping.alphas ** 2
        return QuadraticMapping(np.diag(d), None, inner.constant)
    if not isinstance(mapping, QuadraticMapping):
        return None
    Q = mapping.quadratic
    if np.any(mapping.linear != 0.0):
        return None
    if np.any(Q - np.diag(np.diag(Q)) != 0.0):
        return None
    if not np.all(np.diag(Q) > 0.0):
        return None
    return mapping


@dataclass(frozen=True)
class BoundaryCrossing:
    """A point where a feature crosses one of its tolerance bounds.

    Attributes
    ----------
    point:
        The boundary point in the perturbation space being searched.
    bound:
        The bound value (``beta_min`` or ``beta_max``) attained there.
    distance:
        Distance of ``point`` from the search origin in the problem's norm.
    """

    point: np.ndarray
    bound: float
    distance: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "point",
                           np.asarray(self.point, dtype=np.float64))
        object.__setattr__(self, "bound", float(self.bound))
        object.__setattr__(self, "distance", float(self.distance))
        if self.distance < 0 or math.isnan(self.distance):
            raise ValueError(f"distance must be >= 0, got {self.distance}")
