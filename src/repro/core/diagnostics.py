"""Result-quality grades and per-attempt solver diagnostics.

Every robustness-radius answer carries a :class:`Quality` tag stating how
much the caller may rely on it, and a trail of :class:`SolverAttempt`
records describing what each solver did (including the failures that were
previously swallowed silently).  The resilient cascade
(:mod:`repro.resilience.cascade`) degrades through these grades instead of
raising: an exact hyperplane projection is ``EXACT``; a verified numeric
projection is ``CONVERGED``; a directional-bisection or sampling witness is
a rigorous ``UPPER_BOUND`` on the radius; and ``FAILED`` means no usable
information survived at all (the radius field is then NaN).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Quality", "SolverAttempt", "quality_of_method"]


class Quality(str, enum.Enum):
    """How trustworthy a :class:`~repro.core.radius.RadiusResult` is.

    Members
    -------
    EXACT:
        Every tolerance bound was resolved in closed form (hyperplane /
        ellipsoid projection, or a degenerate on-boundary origin); the
        radius is the true radius up to floating point.
    CONVERGED:
        Every bound was resolved at least by a verified numeric projection;
        the radius is a locally-converged estimate (exact for the paper's
        affine features, best-effort for general smooth ones).
    UPPER_BOUND:
        At least one bound only yielded a rigorous upper bound (a verified
        boundary crossing or a sampled violation); the true radius is
        **at most** the reported value.
    DEGRADED:
        The computation did not produce a value at all, but the failure
        was *contained*: a supervised task exhausted its retries and was
        quarantined, yielding a
        :class:`~repro.resilience.supervisor.TaskFailure` sentinel in
        place of a result while the rest of the batch completed normally.
    FAILED:
        No solver produced any usable value; the reported radius is NaN.
    """

    EXACT = "exact"
    CONVERGED = "converged"
    UPPER_BOUND = "upper_bound"
    DEGRADED = "degraded"
    FAILED = "failed"

    def __str__(self) -> str:  # stable rendering across Python versions
        return self.value

    @property
    def is_usable(self) -> bool:
        """Whether the result carries a meaningful radius value."""
        return self not in (Quality.DEGRADED, Quality.FAILED)


@dataclass(frozen=True)
class SolverAttempt:
    """One solver invocation inside a radius computation.

    Attributes
    ----------
    solver:
        Solver name (``"analytic"``, ``"numeric"``, ``"bisection"``, ...).
    bound:
        The tolerance bound the attempt targeted (``None`` for attempts
        not tied to a single bound, e.g. the whole-interval sampling
        fallback or the origin-evaluation probe).
    attempt:
        1-based retry index of this invocation.
    elapsed:
        Wall-clock seconds the invocation took.
    outcome:
        ``"ok"`` (usable answer), ``"unreachable"`` (the solver proved or
        reported no boundary at this bound), ``"timeout"``, ``"rejected"``
        (an answer failed verification), or ``"error"``.
    detail:
        Free-form context: the exception message, the distance found, etc.
    """

    solver: str
    bound: float | None
    attempt: int
    elapsed: float
    outcome: str
    detail: str = ""

    def __str__(self) -> str:
        at = "interval" if self.bound is None else f"bound={self.bound:g}"
        out = (f"{self.solver}[{at}] try {self.attempt}: {self.outcome} "
               f"({self.elapsed * 1e3:.1f} ms)")
        if self.detail:
            out += f" — {self.detail}"
        return out


#: Winning-method strings whose answers are exact up to floating point.
_EXACT_METHODS = frozenset({"analytic", "analytic-box", "ellipsoid",
                            "degenerate"})
#: Winning-method strings whose answers are rigorous upper bounds only.
_UPPER_METHODS = frozenset({"bisection", "sampling"})


def quality_of_method(method: str) -> Quality:
    """The :class:`Quality` grade implied by a winning solver name.

    Unknown method strings grade as ``CONVERGED`` (a best-effort numeric
    answer) so forward-compatible callers never over-claim exactness.
    """
    if method in _EXACT_METHODS:
        return Quality.EXACT
    if method in _UPPER_METHODS:
        return Quality.UPPER_BOUND
    return Quality.CONVERGED
