"""The concatenated, dimensionless perturbation space ``P`` (Section 3).

:class:`ConcatenatedPerturbation` owns the bookkeeping between the
*pi-space* (the physical values of all perturbation parameters, flattened
in declaration order) and the *P-space* (the weighted, dimensionless
concatenation in which radii are measured):

    P = alpha (elementwise) * pi_flat,        pi_flat = P / alpha .

It transports feature mappings, physical box bounds, and operating points
between the two spaces, so the rest of the library can run the ordinary
single-parameter machinery of Section 2 unchanged in P-space — exactly the
paper's construction ("the vector P is analogous to the vector pi_j
discussed in Section 2").
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.mappings import FeatureMapping, ReweightedMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import WeightingScheme
from repro.exceptions import DimensionMismatchError, SpecificationError
from repro.utils.validation import as_1d_float_array

__all__ = ["ConcatenatedPerturbation"]


class ConcatenatedPerturbation:
    """Weighted concatenation of perturbation parameters into P-space.

    Build one with :meth:`from_weighting` (the normal path) or directly
    from a flat weight vector.

    Parameters
    ----------
    params:
        Perturbation parameters in concatenation order.
    alphas:
        Flat positive weight vector, one entry per element of the
        concatenation.
    weighting_name:
        Label for reports.
    """

    def __init__(self, params: Sequence[PerturbationParameter], alphas,
                 *, weighting_name: str = "custom") -> None:
        params = list(params)
        if not params:
            raise SpecificationError("need at least one perturbation parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate parameter names in {names}")
        self.params = params
        self.weighting_name = str(weighting_name)
        self._slices: dict[str, slice] = {}
        offset = 0
        for p in params:
            self._slices[p.name] = slice(offset, offset + p.dimension)
            offset += p.dimension
        self._dim = offset
        a = as_1d_float_array(alphas, name="alphas")
        if a.size != self._dim:
            raise DimensionMismatchError(
                f"alphas has length {a.size}, expected {self._dim}")
        if np.any(~np.isfinite(a)) or np.any(a <= 0):
            raise SpecificationError("alphas must be positive and finite")
        self.alphas = a
        self.pi_orig = np.concatenate([p.original for p in params])
        self.p_orig = self.alphas * self.pi_orig

    @classmethod
    def from_weighting(
        cls,
        params: Sequence[PerturbationParameter],
        weighting: WeightingScheme,
        per_param_radii: Mapping[str, float] | None = None,
    ) -> "ConcatenatedPerturbation":
        """Construct P-space using a :class:`WeightingScheme`.

        ``per_param_radii`` is required for radius-dependent schemes
        (sensitivity weighting).
        """
        alphas = weighting.elementwise_alphas(params, per_param_radii)
        return cls(params, alphas, weighting_name=weighting.name)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Total number of elements across all parameters."""
        return self._dim

    def block_slice(self, param_name: str) -> slice:
        """Slice of the flat vectors occupied by ``param_name``."""
        try:
            return self._slices[param_name]
        except KeyError as exc:
            raise SpecificationError(
                f"unknown perturbation parameter {param_name!r}; have "
                f"{sorted(self._slices)}") from exc

    # ------------------------------------------------------------------
    # value transport
    # ------------------------------------------------------------------
    def flatten_values(
        self, values: Mapping[str, Sequence[float]]
    ) -> np.ndarray:
        """Assemble a flat pi-space vector from per-parameter values.

        Missing parameters default to their original values, so partial
        what-if queries ("only the sensor loads moved") are convenient.
        """
        unknown = set(values) - set(self._slices)
        if unknown:
            raise SpecificationError(
                f"unknown perturbation parameter(s) {sorted(unknown)}")
        flat = self.pi_orig.copy()
        for name, vals in values.items():
            block = as_1d_float_array(vals, name=name)
            sl = self._slices[name]
            if block.size != sl.stop - sl.start:
                raise DimensionMismatchError(
                    f"values for {name!r} have length {block.size}, expected "
                    f"{sl.stop - sl.start}")
            flat[sl] = block
        return flat

    def split_values(self, flat: np.ndarray) -> dict[str, np.ndarray]:
        """Split a flat pi-space vector into per-parameter arrays."""
        flat = as_1d_float_array(flat, name="flat")
        if flat.size != self._dim:
            raise DimensionMismatchError(
                f"flat vector has length {flat.size}, expected {self._dim}")
        return {name: flat[sl].copy() for name, sl in self._slices.items()}

    def to_p(self, pi_flat: np.ndarray) -> np.ndarray:
        """Map a flat pi-space vector into P-space (``P = alpha * pi``)."""
        pi_flat = as_1d_float_array(pi_flat, name="pi_flat")
        if pi_flat.size != self._dim:
            raise DimensionMismatchError(
                f"pi vector has length {pi_flat.size}, expected {self._dim}")
        return self.alphas * pi_flat

    def from_p(self, p: np.ndarray) -> np.ndarray:
        """Map a P-space vector back to the flat pi-space."""
        p = as_1d_float_array(p, name="p")
        if p.size != self._dim:
            raise DimensionMismatchError(
                f"P vector has length {p.size}, expected {self._dim}")
        return p / self.alphas

    def values_to_p(self, values: Mapping[str, Sequence[float]]) -> np.ndarray:
        """Per-parameter values -> P-space vector (paper's step (a))."""
        return self.to_p(self.flatten_values(values))

    def distance_from_orig(
        self, values: Mapping[str, Sequence[float]], *, norm: float = 2
    ) -> float:
        """``||P - P_orig||`` for an operating point (paper's step (b))."""
        p = self.values_to_p(values)
        order = np.inf if norm in (np.inf, "inf") else norm
        return float(np.linalg.norm(p - self.p_orig, ord=order))

    # ------------------------------------------------------------------
    # mapping / bound transport
    # ------------------------------------------------------------------
    def transform_mapping(self, mapping: FeatureMapping) -> FeatureMapping:
        """Transport a pi-space feature mapping into P-space.

        The returned mapping satisfies ``g(P) = f(P / alpha)``; its radius
        problems are posed at ``P_orig``.
        """
        if mapping.n_inputs != self._dim:
            raise DimensionMismatchError(
                f"mapping expects {mapping.n_inputs} inputs, concatenation "
                f"has {self._dim}")
        return ReweightedMapping(mapping, self.alphas)

    def p_lower(self) -> np.ndarray | None:
        """Physical lower box bound transported to P-space (or ``None``)."""
        if all(p.lower is None for p in self.params):
            return None
        lo = np.full(self._dim, -np.inf)
        for p in self.params:
            if p.lower is not None:
                lo[self._slices[p.name]] = p.lower
        return np.where(np.isfinite(lo), self.alphas * lo, -np.inf)

    def p_upper(self) -> np.ndarray | None:
        """Physical upper box bound transported to P-space (or ``None``)."""
        if all(p.upper is None for p in self.params):
            return None
        hi = np.full(self._dim, np.inf)
        for p in self.params:
            if p.upper is not None:
                hi[self._slices[p.name]] = p.upper
        return np.where(np.isfinite(hi), self.alphas * hi, np.inf)

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.params)
        return (f"ConcatenatedPerturbation([{names}], dim={self._dim}, "
                f"weighting={self.weighting_name!r})")
