"""Exact radius for diagonal-quadratic (ellipsoidal) boundaries.

For a feature ``f(x) = sum_i d_i x_i^2 + c`` with every ``d_i > 0`` the
boundary ``f(x) = b`` is an ellipsoid, and projecting a point onto it is a
classical one-dimensional *secular equation*: the KKT conditions of

    minimise ||x - x0||^2   s.t.  sum_i d_i x_i^2 = b - c

give ``x_i = x0_i / (1 + 2 lambda d_i)`` for a scalar multiplier
``lambda``, and the constraint becomes

    g(lambda) = sum_i d_i x0_i^2 / (1 + 2 lambda d_i)^2 - (b - c) = 0 ,

which is strictly decreasing on ``lambda in (-1/(2 d_max), +inf)`` — the
branch containing the *closest* projection — so Brent's method nails it to
machine precision.  This gives the dispatcher an exact fast path for
ellipsoidal features (e.g. energy-style quadratic costs) that would
otherwise go through multistart SLSQP.

Handles both directions: the origin inside the ellipsoid being pushed out
(``f(x0) < b``) and outside being pulled in (``f(x0) > b``).
"""

from __future__ import annotations

from scipy.optimize import brentq

from repro.core.backend import xp
from repro.core.boundary import BoundaryCrossing
from repro.core.mappings import QuadraticMapping
from repro.exceptions import BoundaryNotFoundError, SpecificationError

__all__ = ["is_diagonal_quadratic", "solve_ellipsoid_radius"]


def is_diagonal_quadratic(mapping: QuadraticMapping) -> bool:
    """Whether the mapping is ``sum d_i x_i^2 + c`` with all ``d_i > 0``.

    (Zero linear term, diagonal positive quadratic form — the shape the
    secular-equation solver handles.)
    """
    if not isinstance(mapping, QuadraticMapping):
        return False
    Q = mapping.quadratic
    if xp.any(mapping.linear != 0.0):
        return False
    off_diag = Q - xp.diag(xp.diag(Q))
    if xp.any(off_diag != 0.0):
        return False
    return bool(xp.all(xp.diag(Q) > 0.0))


def solve_ellipsoid_radius(
    mapping: QuadraticMapping,
    origin: xp.ndarray,
    bound: float,
    *,
    xtol: float = 1e-14,
) -> BoundaryCrossing:
    """Exact Euclidean projection onto the ellipsoid ``f(x) = bound``.

    Parameters
    ----------
    mapping:
        A diagonal positive quadratic mapping (validated).
    origin:
        The point to project.
    bound:
        Boundary level; ``bound - c`` must be positive, otherwise the
        level set is empty (or the single origin point) and
        :class:`BoundaryNotFoundError` is raised.
    xtol:
        Brent tolerance on the multiplier.

    Returns
    -------
    BoundaryCrossing
        The exact closest boundary point and its distance.
    """
    if not is_diagonal_quadratic(mapping):
        raise SpecificationError(
            "solve_ellipsoid_radius requires a diagonal positive "
            "QuadraticMapping with zero linear term")
    origin = xp.asarray(origin, dtype=xp.float64)
    d = xp.diag(mapping.quadratic)
    level = float(bound) - mapping.constant
    if level <= 0.0:
        raise BoundaryNotFoundError(
            f"level set f(x) = {bound} is empty: bound - constant = "
            f"{level:g} <= 0 for a positive quadratic form")

    weighted = d * origin ** 2

    def g(lam: float) -> float:
        return float(xp.sum(weighted / (1.0 + 2.0 * lam * d) ** 2)) - level

    if xp.all(origin == 0.0):
        # Degenerate: every direction is equally close; pick the cheapest
        # axis (largest d gives the smallest distance sqrt(level/d)).
        i = int(xp.argmax(d))
        x = xp.zeros_like(origin)
        x[i] = xp.sqrt(level / d[i])
        return BoundaryCrossing(point=x, bound=float(bound),
                                distance=float(xp.abs(x[i])))

    # g is strictly decreasing on (-1/(2 d_max), inf); bracket the root.
    lam_lo_limit = -1.0 / (2.0 * float(d.max()))
    g0 = g(0.0)
    if g0 == 0.0:
        return BoundaryCrossing(point=origin.copy(), bound=float(bound),
                                distance=0.0)
    if g0 > 0.0:
        # origin outside the ellipsoid: root at lambda > 0
        lo, hi = 0.0, 1.0
        while g(hi) > 0.0:
            hi *= 4.0
            if hi > 1e18:  # pragma: no cover - numerically unreachable
                raise BoundaryNotFoundError("secular equation failed to bracket")
    else:
        # origin inside: root in (lam_lo_limit, 0)
        hi = 0.0
        lo = 0.5 * lam_lo_limit
        while g(lo) < 0.0:
            lo = lam_lo_limit + 0.5 * (lo - lam_lo_limit)
            if lo - lam_lo_limit < 1e-300:  # pragma: no cover
                raise BoundaryNotFoundError("secular equation failed to bracket")
    lam = brentq(g, lo, hi, xtol=xtol)
    x = origin / (1.0 + 2.0 * lam * d)
    return BoundaryCrossing(
        point=x, bound=float(bound),
        distance=float(xp.linalg.norm(x - origin)))
