"""Benchmark harness: per-problem radius loop vs the tensorised group kernel.

:func:`run_radius_batch_benchmark` builds one structural group of radius
problems — the same near-isotropic quadratic feature probed from many
different operating points — and solves it twice: once through a plain
``compute_radius`` loop (the per-problem reference) and once through
:func:`~repro.core.solvers.tensor.solve_group` (the cross-problem tensor
kernel), counting Python-level ``value``/``value_many`` calls through one
shared :class:`~repro.core.solvers.bench.CallCountingMapping`.

The geometry is chosen to be the scalar scan's worst case and the common
FePIA case at once: the quadratic's level sets are *nearly* spherical, so
every direction's crossing lands in the same 4x bracket rung and the
per-problem pruned scan can prune nothing — it Brent-refines every
bracket of every problem.  The tensor kernel instead refines all brackets
of all problems in lock-step (one ``value_many`` per iteration), prunes
to each problem's winning candidate, and re-pins only those through the
scalar reference kernel, so its advantage is the full ``O(directions)``
factor.  The weights are still anisotropic enough (~10% spread) that the
batched roots separate far beyond ``PIN_TOL`` and candidate sets stay at
one or two rows.

Emits a ``repro-bench-radii-v1`` payload; like every bench schema it is
validated by :func:`repro.parallel.bench.validate_bench_payload` (the
single source of truth), and CI smoke-tests it on every push — failing
below 3x wall-clock or 10x call reduction, or on any result divergence.

Not imported by ``repro.core.solvers`` eagerly — import it explicitly::

    from repro.core.solvers.radii_bench import run_radius_batch_benchmark
"""

from __future__ import annotations

import logging
import math
import time

from repro.core.backend import xp
from repro.core.features import ToleranceBounds
from repro.core.mappings import QuadraticMapping
from repro.core.solvers.bench import CallCountingMapping
from repro.exceptions import SpecificationError
from repro.observability import get_observability
from repro.parallel.bench import RADII_BENCH_SCHEMA

__all__ = ["run_radius_batch_benchmark"]

logger = logging.getLogger(__name__)


def _make_problems(mapping, dimension: int, n_problems: int, seed: int):
    """One structural group: shared mapping and norm, distinct origins.

    The origins are small offsets around zero so every member is feasible
    under the shared upper bound and the crossing distances of all
    problems land in the same expansion rung.
    """
    from repro.core.radius import RadiusProblem

    rng = xp.random.default_rng(seed)
    bounds = ToleranceBounds(beta_max=4.0)
    return [
        RadiusProblem(mapping=mapping,
                      origin=0.02 * rng.standard_normal(dimension),
                      bounds=bounds, norm=2)
        for _ in range(n_problems)
    ]


def run_radius_batch_benchmark(
    *,
    problems: int = 32,
    dimension: int = 12,
    seed: int = 2005,
) -> dict:
    """Benchmark the tensorised group kernel against the per-problem loop.

    Parameters
    ----------
    problems:
        Group size — how many radius problems share the solver structure.
        The CI gate runs the canonical 32.
    dimension:
        Perturbation-space dimension; the direction matrix has
        ``2 * dimension + 128`` rows.
    seed:
        Seed shared by both legs (required for the identity verdict to be
        meaningful).

    Returns
    -------
    dict
        A ``repro-bench-radii-v1`` payload.  ``identical`` compares each
        member's radius, boundary point, bound hit, and per-bound table
        across the two legs; ``eval_reduction`` is the factor by which
        the tensor kernel cut Python-level evaluation calls.
    """
    from repro.core.radius import compute_radius
    from repro.core.solvers.tensor import solve_group

    if problems < 2:
        raise SpecificationError(f"problems must be >= 2, got {problems}")
    if dimension < 2:
        raise SpecificationError(f"dimension must be >= 2, got {dimension}")
    logger.info("radius-batch benchmark: %d problems, dim=%d, seed=%d",
                problems, dimension, seed)
    rng = xp.random.default_rng(seed)
    weights = 1.0 + 0.2 * rng.random(dimension)
    mapping = CallCountingMapping(QuadraticMapping(xp.diag(weights)))

    # Fresh problem objects per leg: RadiusProblem caches its original
    # feature value, and both legs must pay for it.
    mapping.reset()
    scalar_problems = _make_problems(mapping, dimension, problems, seed)
    t0 = time.perf_counter()
    scalar = [compute_radius(p, method="bisection", seed=seed, cache=False)
              for p in scalar_problems]
    scalar_seconds = time.perf_counter() - t0
    scalar_evals = mapping.calls

    mapping.reset()
    tensor_problems = _make_problems(mapping, dimension, problems, seed)
    t0 = time.perf_counter()
    tensor = solve_group(tensor_problems, method="bisection", seed=seed,
                         cache=False)
    tensor_seconds = time.perf_counter() - t0
    tensor_evals = mapping.calls
    tensor_rows = mapping.rows

    identical = all(
        a.radius == b.radius
        and a.bound_hit == b.bound_hit
        and a.method == b.method
        and a.per_bound == b.per_bound
        and xp.array_equal(a.boundary_point, b.boundary_point)
        for a, b in zip(scalar, tensor)
    )
    if not identical:  # pragma: no cover - bit-identity contract violation
        logger.error("tensorised results DIFFER from the per-problem loop")
    payload = {
        "schema": RADII_BENCH_SCHEMA,
        "seed": int(seed),
        "problems": int(problems),
        "dimension": int(dimension),
        "directions": int(2 * dimension + 128),
        "scalar_seconds": float(scalar_seconds),
        "tensor_seconds": float(tensor_seconds),
        "speedup": (float(scalar_seconds / tensor_seconds)
                    if tensor_seconds > 0 else 0.0),
        "scalar_evals": int(scalar_evals),
        "tensor_evals": int(tensor_evals),
        "eval_reduction": (float(scalar_evals / tensor_evals)
                           if tensor_evals else 0.0),
        "tensor_rows": int(tensor_rows),
        "identical": bool(identical),
        "radii": [float(r.radius) if math.isfinite(r.radius) else None
                  for r in tensor],
    }
    obs = get_observability()
    if obs is not None:
        payload["observability"] = {
            "metrics": obs.metrics.snapshot(),
            "spans": len(obs.recorder.spans()),
            "events": len(obs.events.events()),
        }
    return payload
