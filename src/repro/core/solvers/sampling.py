"""Monte-Carlo violation search.

Samples perturbation points and records those violating the tolerance
interval; the minimum distance among violating samples is a statistical
*upper bound* on the robustness radius (any violation closer than the
claimed radius disproves it).  The validation harness
(:mod:`repro.montecarlo`) uses this to cross-examine the analytic and
numeric solvers.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass


from repro.core.backend import xp
from repro.core.features import ToleranceBounds
from repro.core.mappings import FeatureMapping
from repro.exceptions import SpecificationError
from repro.utils.linalg import sample_on_sphere, vector_norm_many
from repro.utils.rng import default_rng

__all__ = ["SamplingReport", "sampling_upper_bound"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SamplingReport:
    """Outcome of a Monte-Carlo violation search.

    Attributes
    ----------
    n_samples:
        Total points evaluated.
    n_violations:
        Points whose feature value left the tolerance interval.
    min_violation_distance:
        Distance of the closest violating point (``inf`` when none found);
        an upper bound on the robustness radius.
    closest_violation:
        The closest violating point itself, or ``None``.
    """

    n_samples: int
    n_violations: int
    min_violation_distance: float
    closest_violation: xp.ndarray | None


def sampling_upper_bound(
    mapping: FeatureMapping,
    origin: xp.ndarray,
    bounds: ToleranceBounds,
    *,
    max_distance: float,
    n_samples: int = 20000,
    norm: float = 2,
    lower: xp.ndarray | None = None,
    upper: xp.ndarray | None = None,
    seed=None,
) -> SamplingReport:
    """Search for tolerance violations within ``max_distance`` of ``origin``.

    Points are drawn with distances stratified uniformly in
    ``(0, max_distance]`` (rather than uniformly in volume) so near-origin
    violations — the ones that matter for refuting a radius claim — are not
    starved of samples in high dimension.

    Parameters
    ----------
    mapping, origin, bounds:
        Feature, original point, and tolerance interval.
    max_distance:
        Search radius.
    n_samples:
        Number of points.
    norm:
        Norm in which distances are stratified and reported.
    lower, upper:
        Physical box; sampled points are clipped into it (clipping keeps the
        sample inside the reachable set while only shortening its distance).
    seed:
        RNG seed.
    """
    if max_distance <= 0:
        raise SpecificationError(f"max_distance must be > 0, got {max_distance}")
    origin = xp.asarray(origin, dtype=xp.float64)
    rng = default_rng(seed)
    n = origin.size
    dirs = sample_on_sphere(rng, n_samples, n)
    p = xp.inf if norm in (xp.inf, "inf") else norm
    dirs = dirs / xp.linalg.norm(dirs, ord=p, axis=1, keepdims=True)
    dists = max_distance * rng.random(n_samples)
    points = origin + dirs * dists[:, None]
    if lower is not None:
        points = xp.maximum(points, xp.asarray(lower, dtype=xp.float64))
    if upper is not None:
        points = xp.minimum(points, xp.asarray(upper, dtype=xp.float64))
    values = mapping.value_many(points)
    violating = (values > bounds.beta_max) | (values < bounds.beta_min)
    n_viol = int(xp.count_nonzero(violating))
    logger.debug("sampled %d points within distance %g: %d violation(s)",
                 n_samples, max_distance, n_viol)
    if n_viol == 0:
        return SamplingReport(n_samples=n_samples, n_violations=0,
                              min_violation_distance=float("inf"),
                              closest_violation=None)
    viol_points = points[violating]
    # Batched row-wise norms, bit-identical to the former per-point
    # `vector_norm(pt - origin, p)` scan (see vector_norm_many).
    viol_dists = vector_norm_many(viol_points - origin, p)
    i = int(xp.argmin(viol_dists))
    return SamplingReport(
        n_samples=n_samples,
        n_violations=n_viol,
        min_violation_distance=float(viol_dists[i]),
        closest_violation=viol_points[i].copy(),
    )
