"""Robustness-radius solver implementations.

Four complementary strategies:

* :mod:`repro.core.solvers.analytic` — exact closed forms when the boundary
  is a hyperplane (affine features, the paper's Equation 4), for the
  ``l1``/``l2``/``linf`` norms via norm duality;
* :mod:`repro.core.solvers.numeric` — constrained boundary projection with
  SciPy (SLSQP / trust-constr) and multistart, for general smooth features;
* :mod:`repro.core.solvers.bisection` — directional root-bracketing along
  rays; derivative-free, yields rigorous *upper* bounds that tighten with
  the number of directions;
* :mod:`repro.core.solvers.sampling` — Monte-Carlo violation search used by
  the validation harness.
"""

from repro.core.solvers.analytic import solve_linear_radius
from repro.core.solvers.numeric import solve_numeric_radius
from repro.core.solvers.bisection import (
    directional_crossing,
    directional_crossings,
    solve_bisection_radius,
)
from repro.core.solvers.sampling import sampling_upper_bound
from repro.core.solvers.warm import RayTable, WarmStart, is_ray_convex

__all__ = [
    "solve_linear_radius",
    "solve_numeric_radius",
    "solve_bisection_radius",
    "directional_crossing",
    "directional_crossings",
    "sampling_upper_bound",
    "RayTable",
    "WarmStart",
    "is_ray_convex",
]
