"""Numeric boundary-projection radius solver.

Solves, for one finite tolerance bound ``b``,

    minimise   || x - x0 ||_2
    subject to f(x) = b,    lower <= x <= upper,

with SciPy's SLSQP from multiple starting points: the original point, the
directional-bisection crossings (which are feasible boundary points and so
excellent warm starts), and random offsets.  For general smooth mappings
the result is a *local* projection; the multistart converts this into a
best-effort global one, and the directional crossings guarantee the answer
is never worse than the bisection upper bound.
"""

from __future__ import annotations

import logging

from scipy import optimize

from repro.core.backend import xp
from repro.core.boundary import BoundaryCrossing
from repro.core.mappings import FeatureMapping
from repro.core.solvers.bisection import directional_crossings
from repro.exceptions import BoundaryNotFoundError, SpecificationError
from repro.observability import get_metrics
from repro.utils.linalg import sample_on_sphere
from repro.utils.rng import default_rng

__all__ = ["solve_numeric_radius"]

logger = logging.getLogger(__name__)


def _finite_diff_gradient_scalar(mapping: FeatureMapping, x: xp.ndarray,
                                 eps: float = 1e-7) -> xp.ndarray:
    """Scalar reference for :func:`_finite_diff_gradient` (one
    ``mapping.value`` call per stencil point), retained for the kernel
    equivalence suite."""
    g = xp.empty_like(x)
    for i in range(x.size):
        h = eps * max(1.0, abs(x[i]))
        x_plus = x.copy()
        x_minus = x.copy()
        x_plus[i] += h
        x_minus[i] -= h
        g[i] = (mapping.value(x_plus) - mapping.value(x_minus)) / (2.0 * h)
    return g


def _finite_diff_gradient(mapping: FeatureMapping, x: xp.ndarray,
                          eps: float = 1e-7) -> xp.ndarray:
    """Central finite-difference gradient, used when no analytic one exists.

    The full ``2n``-point central-difference stencil is built as one
    matrix and evaluated with a single ``mapping.value_many`` call.  This
    path only runs for mappings *without* an analytic gradient — exactly
    the mappings (arbitrary callables and compositions over them) whose
    ``value_many`` is the base per-row loop — so each stencil value is
    computed by the same ``mapping.value`` arithmetic as the scalar
    reference and the gradient is bit-identical to it.
    """
    n = x.size
    h = eps * xp.maximum(1.0, xp.abs(x))
    stencil = xp.vstack([x + xp.diag(h), x - xp.diag(h)])
    values = mapping.value_many(stencil)
    get_metrics().inc("solver.batch_evals")
    get_metrics().inc("solver.batch_points", 2 * n)
    return (values[:n] - values[n:]) / (2.0 * h)


def _constraint_jac(mapping: FeatureMapping):
    def jac(x: xp.ndarray) -> xp.ndarray:
        g = mapping.gradient(x)
        if g is None:
            g = _finite_diff_gradient(mapping, x)
        return g
    return jac


def solve_numeric_radius(
    mapping: FeatureMapping,
    origin: xp.ndarray,
    bound: float,
    *,
    lower: xp.ndarray | None = None,
    upper: xp.ndarray | None = None,
    n_starts: int = 8,
    n_seed_directions: int = 32,
    constraint_tol: float = 1e-7,
    t_max: float = 1e6,
    seed=None,
    warm=None,
    crossings_ts=None,
) -> BoundaryCrossing:
    """Best boundary projection over a multistart SLSQP sweep.

    Parameters
    ----------
    mapping, origin, bound:
        The feature ``f``, the original point ``x0``, and the boundary level.
    lower, upper:
        Optional elementwise box bounds on reachable perturbations.
    n_starts:
        Number of random-offset starting points (beyond the deterministic
        starts).
    n_seed_directions:
        Random directions probed by the bisection pre-pass whose crossings
        seed the projection.
    constraint_tol:
        Accept a solution only if ``|f(x) - b| <= constraint_tol * (1+|b|)``.
    t_max:
        Bracket limit for the seeding pre-pass.
    seed:
        RNG seed for the multistart.
    warm:
        Optional :class:`~repro.core.solvers.warm.WarmStart` shared with
        neighbouring solves of the same geometry.  Only the seeding
        pre-pass consumes it (its ray table replays bracket expansion
        without fresh evaluations, so the crossing seeds — and through
        them the multistart — come from the previous operating point);
        the SLSQP start schedule and RNG stream are untouched, keeping
        warm results bit-identical to cold ones.
    crossings_ts:
        Optional precomputed per-direction crossing distances (the array
        :func:`~repro.core.solvers.bisection.directional_crossings` would
        return for this problem's rays), supplied by the tensorised group
        kernel which expands all problems' brackets in one flattened
        batch.  The directions are still derived from ``seed`` — they
        position the seeds and keep the RNG stream aligned — but the
        seeding pre-pass is skipped.  Must contain the scalar reference
        floats: the crossings seed the multistart, so any drift would
        change the SLSQP trajectory.  ``warm`` is ignored alongside it.

    Returns
    -------
    BoundaryCrossing
        The best verified boundary point found.

    Raises
    ------
    BoundaryNotFoundError
        If no start converges to a verified boundary point — treated by the
        dispatcher as an infinite radius for this bound.
    """
    origin = xp.asarray(origin, dtype=xp.float64)
    n = origin.size
    if mapping.n_inputs != n:
        raise SpecificationError(
            f"origin has length {n} but mapping expects {mapping.n_inputs}")
    rng = default_rng(seed)
    scale = max(1.0, float(xp.linalg.norm(origin)))

    # --- seed with directional crossings (true boundary points) ---------
    # The batched kernel probes all 2n + n_seed_directions rays in
    # lock-step; crossings come back in direction order, exactly as the
    # scalar per-direction loop produced them.
    starts: list[xp.ndarray] = []
    crossings: list[BoundaryCrossing] = []
    dirs = xp.vstack([xp.eye(n), -xp.eye(n),
                      sample_on_sphere(rng, n_seed_directions, n)])
    if crossings_ts is not None:
        ts = xp.asarray(crossings_ts, dtype=xp.float64)
    else:
        table = None
        if warm is not None:
            table = warm.table("numeric")
            table.bind(origin, dirs, lower, upper, t_max, 1e-3)
            warm.warm_starts += 1
            get_metrics().inc("solver.warm_starts")
            fresh_before = table.fresh_evals
        ts = directional_crossings(mapping, origin, dirs, bound,
                                   t_max=t_max, lower=lower, upper=upper,
                                   table=table)
        if table is not None and table.fresh_evals == fresh_before:
            warm.warm_hits += 1
            get_metrics().inc("solver.warm_hits")
    for d, t in zip(dirs, ts):
        if not xp.isnan(t):
            pt = origin + float(t) * d
            crossings.append(BoundaryCrossing(pt, bound, float(t)))
            starts.append(pt)
    starts.sort(key=lambda p: float(xp.linalg.norm(p - origin)))
    starts = starts[:max(4, n_starts)]
    starts.append(origin.copy())
    for _ in range(n_starts):
        starts.append(origin + 0.1 * scale * rng.standard_normal(n))

    # --- box bounds for SLSQP -------------------------------------------
    if lower is None and upper is None:
        slsqp_bounds = None
    else:
        lo = xp.full(n, -xp.inf) if lower is None else xp.asarray(lower, float)
        hi = xp.full(n, xp.inf) if upper is None else xp.asarray(upper, float)
        slsqp_bounds = list(zip(lo, hi))

    def objective(x: xp.ndarray) -> float:
        dx = x - origin
        return float(dx @ dx)

    def objective_grad(x: xp.ndarray) -> xp.ndarray:
        return 2.0 * (x - origin)

    cons = {
        "type": "eq",
        "fun": lambda x: mapping.value(x) - bound,
        "jac": _constraint_jac(mapping),
    }

    logger.debug("numeric projection to level %g: %d crossing seeds, "
                 "%d starts", bound, len(crossings), len(starts))
    best: BoundaryCrossing | None = min(crossings, key=lambda c: c.distance,
                                        default=None)
    accept = constraint_tol * (1.0 + abs(bound))
    n_failed = 0
    for x0 in starts:
        if slsqp_bounds is not None:
            x0 = xp.clip(x0, [b[0] for b in slsqp_bounds],
                         [b[1] for b in slsqp_bounds])
        try:
            res = optimize.minimize(
                objective, x0, jac=objective_grad, method="SLSQP",
                bounds=slsqp_bounds, constraints=[cons],
                options={"maxiter": 200, "ftol": 1e-12},
            )
        except (ValueError, ArithmeticError, SpecificationError) as exc:
            # SciPy numerical quirk, or the iterate left a mapping's
            # restricted domain (e.g. positive-only monomials): this start
            # failed, the others may still succeed.
            n_failed += 1
            logger.debug("SLSQP start failed at level %g: %s", bound, exc)
            continue
        x = xp.asarray(res.x, dtype=xp.float64)
        if not xp.all(xp.isfinite(x)):
            continue
        try:
            if abs(mapping.value(x) - bound) > accept:
                continue
        except SpecificationError:
            continue
        dist = float(xp.linalg.norm(x - origin))
        if best is None or dist < best.distance:
            best = BoundaryCrossing(point=x, bound=float(bound), distance=dist)
    if n_failed:
        logger.warning("numeric solver: %d/%d SLSQP starts failed at "
                       "level %g", n_failed, len(starts), bound)
    if best is None:
        raise BoundaryNotFoundError(
            f"numeric solver found no boundary point at level {bound}")
    return best
