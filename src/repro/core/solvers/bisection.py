"""Directional root-bracketing radius solver.

Along a ray ``x(t) = x0 + t d`` with ``||d||_p = 1``, the feature value is a
scalar function ``h(t) = f(x(t)) - bound`` with ``h(0) != 0`` (the original
point is strictly feasible).  The first sign change of ``h`` brackets a
boundary crossing; Brent's method then locates it to machine precision.
Every crossing found is a true boundary point, so the minimum crossing
distance over a set of directions is a rigorous **upper bound** on the
robustness radius that converges to it as directions are added.

This solver is derivative-free and therefore works with any
:class:`~repro.core.mappings.CallableMapping`; it also seeds the numeric
projection solver with good starting points.
"""

from __future__ import annotations

import logging

import numpy as np
from scipy.optimize import brentq

from repro.core.boundary import BoundaryCrossing
from repro.core.mappings import FeatureMapping
from repro.exceptions import BoundaryNotFoundError, SpecificationError
from repro.utils.linalg import sample_on_sphere
from repro.utils.rng import default_rng

__all__ = ["directional_crossing", "solve_bisection_radius"]

logger = logging.getLogger(__name__)


def _ray_exit_t(origin: np.ndarray, direction: np.ndarray,
                lower: np.ndarray | None, upper: np.ndarray | None,
                t_max: float) -> float:
    """Largest ``t`` such that ``origin + t*direction`` stays in the box."""
    t_exit = float(t_max)
    for bound, side in ((lower, -1.0), (upper, 1.0)):
        if bound is None:
            continue
        slack = side * (np.asarray(bound) - origin)
        move = side * direction
        with np.errstate(divide="ignore", invalid="ignore"):
            ts = np.where(move > 0, slack / move, np.inf)
        t_exit = min(t_exit, float(np.min(ts)))
    return max(t_exit, 0.0)


def directional_crossing(
    mapping: FeatureMapping,
    origin: np.ndarray,
    direction: np.ndarray,
    bound: float,
    *,
    t_max: float = 1e6,
    t_init: float = 1e-3,
    lower: np.ndarray | None = None,
    upper: np.ndarray | None = None,
    xtol: float = 1e-12,
) -> float | None:
    """Distance ``t`` of the first boundary crossing along a unit ray.

    Parameters
    ----------
    mapping, origin, bound:
        The feature, the original point, and the bound defining the boundary.
    direction:
        Ray direction; the caller is responsible for normalising it in the
        norm that distances are measured in, so the return value *is* the
        distance.
    t_max:
        Give up beyond this ray parameter.
    t_init:
        Initial bracket-expansion step.
    lower, upper:
        Optional reachability box; crossings beyond the box exit are
        ignored (they are not physically reachable perturbations).
    xtol:
        Brent tolerance.

    Returns
    -------
    float or None
        The crossing distance, or ``None`` if the feature does not cross
        ``bound`` along this ray within the reachable segment.
    """
    origin = np.asarray(origin, dtype=np.float64)
    direction = np.asarray(direction, dtype=np.float64)

    def h(t: float) -> float:
        return mapping.value(origin + t * direction) - bound

    h0 = h(0.0)
    if h0 == 0.0:
        return 0.0
    t_stop = _ray_exit_t(origin, direction, lower, upper, t_max)
    if t_stop <= 0.0:
        return None
    t_lo, t_hi = 0.0, min(t_init, t_stop)
    # Geometric bracket expansion until the sign flips or the segment ends.
    # A mapping with a restricted domain (e.g. ProductMapping needs positive
    # inputs) raises once the ray leaves it; the ray effectively ends there.
    while True:
        try:
            h_hi = h(t_hi)
        except SpecificationError:
            return None
        if h0 * h_hi <= 0.0:
            break
        if t_hi >= t_stop:
            return None
        t_lo, t_hi = t_hi, min(4.0 * t_hi, t_stop)
    if h_hi == 0.0:
        return float(t_hi)
    return float(brentq(h, t_lo, t_hi, xtol=xtol))


def solve_bisection_radius(
    mapping: FeatureMapping,
    origin: np.ndarray,
    bound: float,
    *,
    norm: float = 2,
    n_random_directions: int = 128,
    include_axes: bool = True,
    t_max: float = 1e6,
    lower: np.ndarray | None = None,
    upper: np.ndarray | None = None,
    seed=None,
) -> BoundaryCrossing:
    """Upper-bound the radius by the best crossing over many directions.

    Directions comprise the ``2n`` signed coordinate axes (optional) plus
    ``n_random_directions`` uniform sphere samples, each normalised to unit
    length in ``norm`` so crossing parameters are distances.

    Raises
    ------
    BoundaryNotFoundError
        If no direction crosses the boundary within ``t_max`` — evidence
        (not proof, for general mappings) that the radius is infinite.
    """
    origin = np.asarray(origin, dtype=np.float64)
    n = origin.size
    if mapping.n_inputs != n:
        raise SpecificationError(
            f"origin has length {n} but mapping expects {mapping.n_inputs}")
    rng = default_rng(seed)
    dirs = []
    if include_axes:
        eye = np.eye(n)
        dirs.append(eye)
        dirs.append(-eye)
    if n_random_directions > 0:
        dirs.append(sample_on_sphere(rng, n_random_directions, n))
    directions = np.vstack(dirs)
    # Normalise every direction to unit length in the distance norm so the
    # ray parameter of a crossing equals its distance.
    p = np.inf if norm in (np.inf, "inf") else norm
    norms = np.linalg.norm(directions, ord=p, axis=1, keepdims=True)
    directions = directions / norms

    logger.debug("bisection search at level %g over %d directions",
                 bound, directions.shape[0])
    best_t = np.inf
    best_dir = None
    for d in directions:
        t = directional_crossing(mapping, origin, d, bound,
                                 t_max=t_max, lower=lower, upper=upper)
        if t is not None and t < best_t:
            best_t = t
            best_dir = d
    if best_dir is None:
        logger.debug("no crossing at level %g within t_max=%g", bound, t_max)
        raise BoundaryNotFoundError(
            f"no boundary crossing for bound {bound} within t_max={t_max} "
            f"over {directions.shape[0]} directions")
    point = origin + best_t * best_dir
    return BoundaryCrossing(point=point, bound=float(bound), distance=best_t)
