"""Directional root-bracketing radius solver.

Along a ray ``x(t) = x0 + t d`` with ``||d||_p = 1``, the feature value is a
scalar function ``h(t) = f(x(t)) - bound`` with ``h(0) != 0`` (the original
point is strictly feasible).  The first sign change of ``h`` brackets a
boundary crossing; Brent's method then locates it to machine precision.
Every crossing found is a true boundary point, so the minimum crossing
distance over a set of directions is a rigorous **upper bound** on the
robustness radius that converges to it as directions are added.

This solver is derivative-free and therefore works with any
:class:`~repro.core.mappings.CallableMapping`; it also seeds the numeric
projection solver with good starting points.

Two equivalent kernels compute the crossings:

* :func:`directional_crossing` — the scalar reference: one direction at a
  time, one ``mapping.value`` call per bracket-expansion step;
* :func:`directional_crossings` — the batched kernel: every direction's
  bracket advances in lock-step, one ``mapping.value_many`` call per
  iteration over the still-active directions.

The batched kernel only replaces *where* the bracket probes are evaluated
(a vectorised batch instead of a Python loop); the probe parameters, the
sign decisions they feed, and the final Brent refinement (always scalar
``mapping.value`` calls) are the same arithmetic, so the two kernels
return bit-identical crossings — a contract pinned by
``tests/core/test_solver_kernels.py``.
"""

from __future__ import annotations

import logging

from scipy.optimize import brentq

from repro.core.backend import xp
from repro.core.boundary import BoundaryCrossing
from repro.core.mappings import FeatureMapping
from repro.exceptions import BoundaryNotFoundError, SpecificationError
from repro.observability import get_metrics
from repro.utils.linalg import sample_on_sphere
from repro.utils.rng import default_rng

__all__ = [
    "directional_crossing",
    "directional_crossings",
    "solve_bisection_radius",
]

logger = logging.getLogger(__name__)


def _ray_exit_t(origin: xp.ndarray, direction: xp.ndarray,
                lower: xp.ndarray | None, upper: xp.ndarray | None,
                t_max: float) -> float:
    """Largest ``t`` such that ``origin + t*direction`` stays in the box."""
    t_exit = float(t_max)
    for bound, side in ((lower, -1.0), (upper, 1.0)):
        if bound is None:
            continue
        slack = side * (xp.asarray(bound) - origin)
        move = side * direction
        with xp.errstate(divide="ignore", invalid="ignore"):
            ts = xp.where(move > 0, slack / move, xp.inf)
        t_exit = min(t_exit, float(xp.min(ts)))
    return max(t_exit, 0.0)


def _ray_exit_ts(origin: xp.ndarray, directions: xp.ndarray,
                 lower: xp.ndarray | None, upper: xp.ndarray | None,
                 t_max: float) -> xp.ndarray:
    """Per-direction box-exit parameters, elementwise-identical to
    :func:`_ray_exit_t` (same divisions, same exact min reductions)."""
    t_exit = xp.full(directions.shape[0], float(t_max))
    for bound, side in ((lower, -1.0), (upper, 1.0)):
        if bound is None:
            continue
        slack = side * (xp.asarray(bound) - origin)
        move = side * directions
        with xp.errstate(divide="ignore", invalid="ignore"):
            ts = xp.where(move > 0, slack / move, xp.inf)
        t_exit = xp.minimum(t_exit, xp.min(ts, axis=1))
    return xp.maximum(t_exit, 0.0)


def directional_crossing(
    mapping: FeatureMapping,
    origin: xp.ndarray,
    direction: xp.ndarray,
    bound: float,
    *,
    t_max: float = 1e6,
    t_init: float = 1e-3,
    lower: xp.ndarray | None = None,
    upper: xp.ndarray | None = None,
    xtol: float = 1e-12,
) -> float | None:
    """Distance ``t`` of the first boundary crossing along a unit ray.

    Parameters
    ----------
    mapping, origin, bound:
        The feature, the original point, and the bound defining the boundary.
    direction:
        Ray direction; the caller is responsible for normalising it in the
        norm that distances are measured in, so the return value *is* the
        distance.
    t_max:
        Give up beyond this ray parameter.
    t_init:
        Initial bracket-expansion step.
    lower, upper:
        Optional reachability box; crossings beyond the box exit are
        ignored (they are not physically reachable perturbations).
    xtol:
        Brent tolerance.

    Returns
    -------
    float or None
        The crossing distance, or ``None`` if the feature does not cross
        ``bound`` along this ray within the reachable segment.
    """
    origin = xp.asarray(origin, dtype=xp.float64)
    direction = xp.asarray(direction, dtype=xp.float64)

    def h(t: float) -> float:
        return mapping.value(origin + t * direction) - bound

    h0 = h(0.0)
    if h0 == 0.0:
        return 0.0
    t_stop = _ray_exit_t(origin, direction, lower, upper, t_max)
    if t_stop <= 0.0:
        return None
    t_lo, t_hi = 0.0, min(t_init, t_stop)
    # Geometric bracket expansion until the sign flips or the segment ends.
    # A mapping with a restricted domain (e.g. ProductMapping needs positive
    # inputs) raises once the ray leaves it; the ray effectively ends there.
    while True:
        try:
            h_hi = h(t_hi)
        except SpecificationError:
            return None
        if h0 * h_hi <= 0.0:
            break
        if t_hi >= t_stop:
            return None
        t_lo, t_hi = t_hi, min(4.0 * t_hi, t_stop)
    if h_hi == 0.0:
        return float(t_hi)
    return float(brentq(h, t_lo, t_hi, xtol=xtol))


def _batch_values(mapping: FeatureMapping,
                  points: xp.ndarray) -> tuple[xp.ndarray, xp.ndarray]:
    """Evaluate raw ``f`` for a batch of probe points.

    Returns ``(values, in_domain)``.  The fast path is one
    ``mapping.value_many`` call (counted in the ``solver.batch_evals``
    metric).  A mapping with a restricted domain raises
    :class:`SpecificationError` for the *whole* batch when any row has
    left it; the scalar kernel instead drops only the offending
    directions, so on such a failure the batch degrades to per-row
    scalar evaluation and marks the out-of-domain rows — preserving the
    scalar kernel's per-direction semantics exactly.

    Callers subtract the bound themselves: the raw values are what the
    warm-start :class:`~repro.core.solvers.warm.RayTable` memoises
    (bound-independent), and ``(values - bound)[i]`` is elementwise
    identical to ``values[i] - bound``, so cold and warm sign tests see
    the same floats.
    """
    try:
        values = mapping.value_many(points)
    except SpecificationError:
        values = xp.empty(points.shape[0])
        in_domain = xp.ones(points.shape[0], dtype=bool)
        for i, row in enumerate(points):
            try:
                values[i] = mapping.value(row)
            except SpecificationError:
                values[i] = xp.nan
                in_domain[i] = False
        get_metrics().inc("solver.batch_evals")
        get_metrics().inc("solver.batch_points", points.shape[0])
        return values, in_domain
    get_metrics().inc("solver.batch_evals")
    get_metrics().inc("solver.batch_points", points.shape[0])
    return values, xp.ones(points.shape[0], dtype=bool)


def _directional_brackets(
    mapping: FeatureMapping,
    origin: xp.ndarray,
    directions: xp.ndarray,
    bound: float,
    *,
    t_max: float,
    t_init: float,
    lower: xp.ndarray | None,
    upper: xp.ndarray | None,
    table=None,
) -> tuple[float, list[tuple[int, float, float, float]]]:
    """Lock-step bracket expansion over rows of ``directions``.

    Each iteration evaluates the still-active directions' probe points
    with a single ``mapping.value_many`` call, so the Python-level
    evaluation cost is ``O(iterations)`` instead of
    ``O(directions x iterations)``.  Returns ``(h0, brackets)`` where
    ``brackets`` holds one ``(row, t_lo, t_hi, h_hi)`` tuple per
    direction whose bracket showed a sign change, sorted by ascending
    ``(t_lo, row)`` — the order the pruned refinement in
    :func:`solve_bisection_radius` consumes.  When ``h0 == 0.0`` the
    origin itself is on the boundary and no expansion runs.

    With a bound :class:`~repro.core.solvers.warm.RayTable` in ``table``,
    stored raw values replay the same expansion schedule without
    re-evaluating the mapping (see :func:`_brackets_from_table`); fresh
    probes are only spent where a ladder runs out, and are recorded for
    the next bound.
    """
    m = directions.shape[0]
    if table is not None:
        h0 = table.ensure_g0(mapping, origin) - bound
    else:
        h0 = mapping.value(origin) - bound
    if h0 == 0.0:
        return h0, []
    t_stop = _ray_exit_ts(origin, directions, lower, upper, t_max)
    if table is not None:
        return h0, _brackets_from_table(mapping, origin, directions, bound,
                                        h0, t_stop, t_init, table)
    active = t_stop > 0.0
    t_lo = xp.zeros(m)
    t_hi = xp.minimum(t_init, t_stop)
    brackets: list[tuple[int, float, float, float]] = []
    idx_all = xp.arange(m)
    while xp.any(active):
        rows = idx_all[active]
        points = origin + t_hi[rows, None] * directions[rows]
        values, in_domain = _batch_values(mapping, points)
        h_hi = values - bound
        # Out-of-domain probes end their rays exactly like the scalar
        # kernel's per-direction SpecificationError: no crossing.
        active[rows[~in_domain]] = False
        with xp.errstate(invalid="ignore"):
            flipped = in_domain & (h0 * h_hi <= 0.0)
        for row, hv in zip(rows[flipped], h_hi[flipped]):
            brackets.append((int(row), float(t_lo[row]), float(t_hi[row]),
                             float(hv)))
        active[rows[flipped]] = False
        # Directions at the segment end without a sign flip: no crossing.
        exhausted = active[rows] & (t_hi[rows] >= t_stop[rows])
        active[rows[exhausted]] = False
        still = idx_all[active]
        t_lo[still] = t_hi[still]
        t_hi[still] = xp.minimum(4.0 * t_hi[still], t_stop[still])
    brackets.sort(key=lambda b: (b[1], b[0]))
    return h0, brackets


def _brackets_from_table(
    mapping: FeatureMapping,
    origin: xp.ndarray,
    directions: xp.ndarray,
    bound: float,
    h0: float,
    t_stop: xp.ndarray,
    t_init: float,
    table,
) -> list[tuple[int, float, float, float]]:
    """Bracket location that replays a ray table before evaluating.

    Walks each ray's canonical probe grid — ``t_1 = min(t_init, t_stop)``,
    ``t_{k+1} = min(4 t_k, t_stop)`` — consuming stored raw values first.
    The sign test ``h0 * (g - bound) <= 0.0`` sees the same floats as the
    cold batch (which computes ``values - bound`` elementwise), and a
    stored ``nan`` terminates the ray exactly like the cold kernel's
    out-of-domain deactivation, so the located brackets are identical to
    a cold run's.  Rays whose ladders run out advance together through
    batched fresh probes, each recorded in the table for the next bound.
    """
    brackets: list[tuple[int, float, float, float]] = []
    pending: list[int] = []
    cursor_lo: dict[int, float] = {}
    cursor_hi: dict[int, float] = {}
    for row in range(directions.shape[0]):
        stop = float(t_stop[row])
        if not stop > 0.0:
            continue
        t_lo, t_hi = 0.0, min(t_init, stop)
        ts, gs = table.ladder(row)
        resolved = False
        for g in gs:
            if xp.isnan(g):
                # Terminal marker: the cold kernel deactivates the ray at
                # an out-of-domain probe regardless of the bound.
                resolved = True
                break
            h_hi = g - bound
            if h0 * h_hi <= 0.0:
                brackets.append((row, t_lo, t_hi, float(h_hi)))
                resolved = True
                break
            if t_hi >= stop:
                resolved = True
                break
            t_lo, t_hi = t_hi, min(4.0 * t_hi, stop)
        if not resolved:
            cursor_lo[row] = t_lo
            cursor_hi[row] = t_hi
            pending.append(row)
    while pending:
        rows = xp.asarray(pending, dtype=xp.intp)
        probe_ts = xp.asarray([cursor_hi[r] for r in pending])
        points = origin + probe_ts[:, None] * directions[rows]
        values, in_domain = _batch_values(mapping, points)
        table.fresh_evals += 1
        still: list[int] = []
        for row, t_hi, g, ok in zip(pending, probe_ts, values, in_domain):
            table.append(row, t_hi, g if ok else xp.nan)
            if not ok:
                continue
            h_hi = g - bound
            if h0 * h_hi <= 0.0:
                brackets.append((row, cursor_lo[row], float(t_hi),
                                 float(h_hi)))
                continue
            stop = float(t_stop[row])
            if t_hi >= stop:
                continue
            cursor_lo[row] = float(t_hi)
            cursor_hi[row] = min(4.0 * float(t_hi), stop)
            still.append(row)
        pending = still
    brackets.sort(key=lambda b: (b[1], b[0]))
    return brackets


def _refine_bracket(mapping: FeatureMapping, origin: xp.ndarray,
                    direction: xp.ndarray, bound: float,
                    lo: float, hi: float, h_hi: float, xtol: float) -> float:
    """Brent refinement of one bracket — the same scalar ``mapping.value``
    calls the scalar kernel makes on the same bracket, hence bit-identical
    crossings."""
    if h_hi == 0.0:
        return float(hi)

    def h(t: float) -> float:
        return mapping.value(origin + t * direction) - bound

    return float(brentq(h, lo, hi, xtol=xtol))


def directional_crossings(
    mapping: FeatureMapping,
    origin: xp.ndarray,
    directions: xp.ndarray,
    bound: float,
    *,
    t_max: float = 1e6,
    t_init: float = 1e-3,
    lower: xp.ndarray | None = None,
    upper: xp.ndarray | None = None,
    xtol: float = 1e-12,
    table=None,
) -> xp.ndarray:
    """Batched :func:`directional_crossing` over rows of ``directions``.

    Advances every direction's bracket in lock-step (see
    :func:`_directional_brackets`), then refines every bracket with
    scalar Brent — the same call the scalar kernel makes on the same
    bracket, so the returned distances are bit-identical to calling
    :func:`directional_crossing` per row.  ``table`` optionally threads a
    :class:`~repro.core.solvers.warm.RayTable` into the bracket location
    (the caller is responsible for having bound it to this geometry).

    Returns
    -------
    numpy.ndarray
        Crossing distance per direction; ``nan`` where the feature does
        not cross ``bound`` within the reachable segment.
    """
    origin = xp.asarray(origin, dtype=xp.float64)
    directions = xp.asarray(directions, dtype=xp.float64)
    out = xp.full(directions.shape[0], xp.nan)
    if directions.shape[0] == 0:
        return out
    h0, brackets = _directional_brackets(mapping, origin, directions, bound,
                                         t_max=t_max, t_init=t_init,
                                         lower=lower, upper=upper,
                                         table=table)
    if h0 == 0.0:
        out[:] = 0.0
        return out
    for row, lo, hi, h_hi in brackets:
        out[row] = _refine_bracket(mapping, origin, directions[row], bound,
                                   lo, hi, h_hi, xtol)
    return out


def _refine_with_certificate(
    mapping: FeatureMapping,
    origin: xp.ndarray,
    directions: xp.ndarray,
    bound: float,
    brackets: list[tuple[int, float, float, float]],
    hint: int | None,
    xtol: float = 1e-12,
) -> tuple[float, int]:
    """Warm bracket refinement for convex mappings on the upper-bound side.

    With ``h0 < 0`` and ``f`` ray-convex, each ray's ``h`` crosses zero
    once and is strictly increasing past the crossing.  Refine the hinted
    candidate bracket first (the previous operating point's argmin ray);
    every other bracket is then either

    * pruned outright when ``lo > t_cand`` (its crossing exceeds ``lo``),
    * *certified* away by one probe at ``t_guard`` slightly beyond
      ``t_cand``: ``h(t_guard) < 0`` proves the crossing lies beyond
      ``t_guard > t_cand`` and cannot win, or
    * refined with the same scalar Brent call the cold path makes.

    The guard margin (``1e-9`` relative) dwarfs the Brent tolerance, so a
    ray whose crossing *ties* the candidate (e.g. duplicated component
    geometry under a max) sees ``h(t_guard) >= 0``, is force-refined, and
    the final lexicographic ``(t, row)`` minimum matches the cold scan's
    bit-for-bit.  Guard probes are off the canonical grid and are *not*
    recorded in the ray table.
    """
    cand = brackets[0]
    if hint is not None:
        for b in brackets:
            if b[0] == hint:
                cand = b
                break
    t_cand = _refine_bracket(mapping, origin, directions[cand[0]], bound,
                             cand[1], cand[2], cand[3], xtol)
    best_t, best_row = t_cand, cand[0]
    t_guard = t_cand + 1e-9 * (1.0 + t_cand)
    must: list[tuple[int, float, float, float]] = []
    guardable: list[tuple[int, float, float, float]] = []
    for b in brackets:
        if b is cand or b[1] > t_cand:
            continue
        (guardable if t_guard < b[2] else must).append(b)
    certified = 0
    if guardable:
        rows = xp.asarray([b[0] for b in guardable], dtype=xp.intp)
        points = origin + t_guard * directions[rows]
        values, in_domain = _batch_values(mapping, points)
        for b, g, ok in zip(guardable, values, in_domain):
            if ok and g - bound < 0.0:
                certified += 1
            else:
                must.append(b)
    for row, lo, hi, h_hi in must:
        t = _refine_bracket(mapping, origin, directions[row], bound,
                            lo, hi, h_hi, xtol)
        if t < best_t or (t == best_t and row < best_row):
            best_t, best_row = t, row
    if certified:
        get_metrics().inc("solver.certified_brackets", certified)
    return best_t, best_row


def solve_bisection_radius(
    mapping: FeatureMapping,
    origin: xp.ndarray,
    bound: float,
    *,
    norm: float = 2,
    n_random_directions: int = 128,
    include_axes: bool = True,
    t_max: float = 1e6,
    lower: xp.ndarray | None = None,
    upper: xp.ndarray | None = None,
    seed=None,
    batch: bool = True,
    warm=None,
) -> BoundaryCrossing:
    """Upper-bound the radius by the best crossing over many directions.

    Directions comprise the ``2n`` signed coordinate axes (optional) plus
    ``n_random_directions`` uniform sphere samples, each normalised to unit
    length in ``norm`` so crossing parameters are distances.

    ``batch=True`` (the default) advances every direction's bracket in
    lock-step through :func:`directional_crossings` — one ``value_many``
    call per expansion step instead of one ``value`` call per direction
    per step.  ``batch=False`` keeps the scalar reference kernel; the two
    produce bit-identical results (pinned by
    ``tests/core/test_solver_kernels.py``).

    ``warm`` optionally carries a
    :class:`~repro.core.solvers.warm.WarmStart` shared with neighbouring
    solves of the same geometry (a sweep walking the bound): stored ray
    values replay the bracket expansion without fresh evaluations, and
    for ray-convex mappings on the upper-bound side the previous argmin
    direction seeds a certified refinement that skips provably-losing
    brackets.  Warm results are bit-identical to cold ones (pinned by
    ``tests/core/test_warm_solvers.py``); ``batch=False`` ignores
    ``warm``.

    Raises
    ------
    BoundaryNotFoundError
        If no direction crosses the boundary within ``t_max`` — evidence
        (not proof, for general mappings) that the radius is infinite.
    """
    origin = xp.asarray(origin, dtype=xp.float64)
    n = origin.size
    if mapping.n_inputs != n:
        raise SpecificationError(
            f"origin has length {n} but mapping expects {mapping.n_inputs}")
    rng = default_rng(seed)
    dirs = []
    if include_axes:
        eye = xp.eye(n)
        dirs.append(eye)
        dirs.append(-eye)
    if n_random_directions > 0:
        dirs.append(sample_on_sphere(rng, n_random_directions, n))
    directions = xp.vstack(dirs)
    # Normalise every direction to unit length in the distance norm so the
    # ray parameter of a crossing equals its distance.
    p = xp.inf if norm in (xp.inf, "inf") else norm
    norms = xp.linalg.norm(directions, ord=p, axis=1, keepdims=True)
    directions = directions / norms

    logger.debug("bisection search at level %g over %d directions",
                 bound, directions.shape[0])
    table = None
    if warm is not None and batch:
        table = warm.table("bisection")
        table.bind(origin, directions, lower, upper, t_max, 1e-3)
        warm.warm_starts += 1
        get_metrics().inc("solver.warm_starts")
    best_t = xp.inf
    best_dir = None
    if batch:
        fresh_before = table.fresh_evals if table is not None else 0
        h0, brackets = _directional_brackets(mapping, origin, directions,
                                             bound, t_max=t_max, t_init=1e-3,
                                             lower=lower, upper=upper,
                                             table=table)
        if table is not None and table.fresh_evals == fresh_before:
            # Every bracket came straight out of the table: a warm hit.
            warm.warm_hits += 1
            get_metrics().inc("solver.warm_hits")
        side = "upper" if h0 < 0.0 else "lower"
        if h0 == 0.0:
            best_t, best_dir = 0.0, directions[0]
        elif (table is not None and brackets and h0 < 0.0
                and warm.ray_convex(mapping)):
            best_t, best_row = _refine_with_certificate(
                mapping, origin, directions, bound, brackets,
                warm.hints.get(side))
            best_dir = directions[best_row]
            warm.hints[side] = best_row
        else:
            # Refine in ascending (t_lo, row) order, skipping brackets that
            # can no longer win: Brent's result always lies inside its
            # bracket, so once `lo > best_t` neither this bracket nor any
            # later one (they are sorted) can produce a strictly smaller —
            # or row-tie-winning — crossing.  Combined with the (t, row)
            # lexicographic update below, this selects exactly the scalar
            # loop's first strict minimiser.
            best_row = -1
            pruned = 0
            for i, (row, lo, hi, h_hi) in enumerate(brackets):
                if lo > best_t:
                    pruned = len(brackets) - i
                    break
                t = _refine_bracket(mapping, origin, directions[row], bound,
                                    lo, hi, h_hi, xtol=1e-12)
                if t < best_t or (t == best_t and row < best_row):
                    best_t, best_row = t, row
            if pruned:
                get_metrics().inc("solver.pruned_brackets", pruned)
            if best_row >= 0:
                best_dir = directions[best_row]
                if warm is not None and batch:
                    warm.hints[side] = best_row
    else:
        for d in directions:
            t = directional_crossing(mapping, origin, d, bound,
                                     t_max=t_max, lower=lower, upper=upper)
            if t is not None and t < best_t:
                best_t = t
                best_dir = d
    if best_dir is None:
        logger.debug("no crossing at level %g within t_max=%g", bound, t_max)
        raise BoundaryNotFoundError(
            f"no boundary crossing for bound {bound} within t_max={t_max} "
            f"over {directions.shape[0]} directions")
    point = origin + best_t * best_dir
    return BoundaryCrossing(point=point, bound=float(bound), distance=best_t)
