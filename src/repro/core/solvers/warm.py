"""Warm-start state shared between neighbouring solves of a sweep.

Along a requirement sweep only the tolerance bound changes: the mapping,
the origin, the direction set, and the reachability box — the *geometry*
— are fixed, so the raw feature values ``g(t) = f(origin + t d)`` probed
along each ray are bound-independent.  :class:`RayTable` memoises those
raw values at the canonical probe grid of the bisection kernel
(``t_1 = min(t_init, t_stop)``, ``t_{k+1} = min(4 t_k, t_stop)``).  A
warm solve *replays* the cold kernel's bracket-expansion schedule against
the stored values — the sign test ``h0 * (g(t) - bound) <= 0`` uses
elementwise-identical arithmetic to the cold batch's ``values - bound``
— and only evaluates the mapping where the stored ladder runs out.  A
solve whose brackets were fully located from the table performed **zero**
fresh batched evaluations and counts as a *warm hit*.

:class:`WarmStart` bundles the per-solver-kind tables with the previous
point's argmin direction (the *hint* that seeds the convexity-certified
refinement in :func:`~repro.core.solvers.bisection.solve_bisection_radius`)
and the ``warm_starts`` / ``warm_hits`` counters surfaced through
observability metrics of the same names.

Warm state never enters :class:`~repro.parallel.cache.RadiusCache` keys:
a warm-started solve is bit-identical to its cold twin by construction,
so both record (and hit) the *same* cache entry.
"""

from __future__ import annotations


from repro.core.backend import xp
from repro.core.mappings import (
    CallableMapping,
    FeatureMapping,
    LinearMapping,
    MaxMapping,
    ProductMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)

__all__ = ["RayTable", "WarmStart", "is_ray_convex"]


def is_ray_convex(mapping: FeatureMapping) -> bool:
    """Whether ``f`` is provably convex, hence convex along every ray.

    For a convex ``f`` with ``f(origin) < bound``, the crossing of
    ``h(t) = f(origin + t d) - bound`` is unique on each ray and ``h`` is
    strictly increasing past it — the structural fact behind the
    certified bracket refinement in the warm bisection path.  The check
    is conservative: anything not recognisably convex returns ``False``
    (the warm solve then refines every candidate bracket, which is still
    bit-identical to cold, just less lazy).
    """
    if isinstance(mapping, LinearMapping):
        return True
    if isinstance(mapping, QuadraticMapping):
        # Positive-semidefinite quadratic part <=> convex.  Strict test:
        # a numerically borderline matrix falls back to the uncertified
        # (correct, merely less lazy) path.
        return bool(xp.linalg.eigvalsh(mapping.quadratic).min() >= 0.0)
    if isinstance(mapping, (MaxMapping, SumMapping)):
        return all(is_ray_convex(comp) for comp in mapping.components)
    if isinstance(mapping, (RestrictedMapping, ReweightedMapping)):
        # Affine section / elementwise-linear reparameterisation of a
        # convex function is convex.
        return is_ray_convex(mapping.base)
    if isinstance(mapping, (ProductMapping, CallableMapping)):
        return False
    # Transparent wrappers (e.g. the benchmark's call counter) expose the
    # wrapped mapping as `.inner`.
    inner = getattr(mapping, "inner", None)
    if isinstance(inner, FeatureMapping):
        return is_ray_convex(inner)
    return False


def _box_bytes(bound) -> bytes | None:
    if bound is None:
        return None
    return xp.ascontiguousarray(xp.asarray(bound, dtype=xp.float64)).tobytes()


class RayTable:
    """Memo of raw feature values along a fixed family of rays.

    One table serves every bound of every sweep point that shares the ray
    geometry ``(origin, directions, box, t_max, t_init)``; :meth:`bind`
    silently resets the memo when the geometry changes, which degrades
    the solve to a cold (still bit-identical) one.

    Stored values are *raw* ``g(t) = f(origin + t d)`` floats — the
    kernel subtracts the current bound itself, because ``(g - b') `` is
    only elementwise-identical to the cold batch when computed from the
    raw value (``(g - b) + b != g`` in floats).  A stored ``nan`` marks
    an out-of-domain probe; the cold kernel deactivates such a ray for
    *every* bound, so ``nan`` is a terminal, bound-independent marker.
    """

    def __init__(self) -> None:
        self._key: tuple | None = None
        self.g0: float | None = None
        self._ts: list[list[float]] = []
        self._gs: list[list[float]] = []
        #: Number of fresh batched evaluations spent extending ladders.
        self.fresh_evals = 0

    def bind(self, origin: xp.ndarray, directions: xp.ndarray,
             lower: xp.ndarray | None, upper: xp.ndarray | None,
             t_max: float, t_init: float) -> None:
        """(Re)attach the table to a ray geometry, resetting on mismatch."""
        key = (
            xp.ascontiguousarray(origin).tobytes(),
            directions.shape,
            xp.ascontiguousarray(directions).tobytes(),
            _box_bytes(lower),
            _box_bytes(upper),
            float(t_max),
            float(t_init),
        )
        if key != self._key:
            self._key = key
            self.g0 = None
            m = directions.shape[0]
            self._ts = [[] for _ in range(m)]
            self._gs = [[] for _ in range(m)]

    @property
    def n_rows(self) -> int:
        return len(self._ts)

    def ensure_g0(self, mapping: FeatureMapping, origin: xp.ndarray) -> float:
        """The (memoised) raw feature value at the origin."""
        if self.g0 is None:
            self.g0 = float(mapping.value(origin))
        return self.g0

    def ladder(self, row: int) -> tuple[list[float], list[float]]:
        """The stored ``(t, g)`` probe ladder of one ray, grid order."""
        return self._ts[row], self._gs[row]

    def append(self, row: int, t: float, g: float) -> None:
        self._ts[row].append(float(t))
        self._gs[row].append(float(g))

    def stats(self) -> dict:
        return {
            "rows": self.n_rows,
            "entries": sum(len(ts) for ts in self._ts),
            "fresh_evals": self.fresh_evals,
        }


class WarmStart:
    """Per-family warm-start state threaded through neighbouring solves.

    Create one per *problem family* — a sequence of solves that share the
    mapping, origin, box, and norm and differ only in their bounds (one
    operating-point walk of a degradation curve) — and pass it to every
    :func:`~repro.core.radius.compute_radius` call of that family via its
    ``warm=`` keyword.  Reusing one instance across unrelated geometries
    is safe (the tables reset) but pointless.
    """

    def __init__(self) -> None:
        self._tables: dict[str, RayTable] = {}
        #: Previous argmin direction row per bound side ("upper"/"lower").
        self.hints: dict[str, int] = {}
        self.warm_starts = 0
        self.warm_hits = 0
        self._convex_memo: dict = {}

    def table(self, kind: str) -> RayTable:
        """The ray table of one solver kind ("bisection" or "numeric")."""
        return self._tables.setdefault(kind, RayTable())

    def ray_convex(self, mapping: FeatureMapping) -> bool:
        """Memoised :func:`is_ray_convex` (one PSD check per family)."""
        key = mapping.structure_key()
        memo_key = key if key is not None else id(mapping)
        if memo_key not in self._convex_memo:
            self._convex_memo[memo_key] = is_ray_convex(mapping)
        return self._convex_memo[memo_key]

    def stats(self) -> dict:
        out = {
            "warm_starts": self.warm_starts,
            "warm_hits": self.warm_hits,
        }
        out["tables"] = {kind: table.stats()
                        for kind, table in sorted(self._tables.items())}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WarmStart(starts={self.warm_starts}, "
                f"hits={self.warm_hits}, tables={sorted(self._tables)})")
