"""Lock-step vectorised Brent refinement.

:func:`batched_brentq` is a faithful float-for-float port of SciPy's
``brentq`` C kernel (``scipy/optimize/Zeros/brentq.c``) generalised to a
*rows* axis: every bracket advances one Brent step per iteration, and the
step's single function evaluation happens for **all** still-active rows
through one batched callback — one ``mapping.value_many`` round-trip per
iteration instead of one scalar ``mapping.value`` call per bracket per
iteration.

Bit-identity contract
---------------------
Per row, the port performs exactly the double-precision operations of the
C kernel in the same order (inverse-quadratic / secant trial step,
truncation against ``min(|spre|, 3|sbis| - delta)``, bisection fallback,
``delta``-clamped advance), so on the NumPy backend each row's iterates —
and therefore its returned root — are bit-identical to calling
``scipy.optimize.brentq`` on that bracket, *provided the batched
evaluation callback returns the same floats as the scalar ``h``*.  That
proviso does **not** hold in general — ``value_many`` is not row-stable
across batch shapes (BLAS blocking makes a row's float depend on its
batchmates) — so consumers must treat batched roots as *locators* for
candidate selection and re-pin every returned crossing through the
scalar reference kernel (see :mod:`repro.core.solvers.tensor`).  The
port itself is pinned against SciPy across mapping families and random
brackets by ``tests/core/test_batched_brent.py`` using shape-stable
callbacks.

Rows whose bracket violates the sign precondition or fails to converge
within ``maxiter`` come back flagged instead of raising — the caller
re-runs those through the scalar reference, which raises exactly like
SciPy would have.
"""

from __future__ import annotations

from typing import Callable

from repro.core.backend import xp

__all__ = ["batched_brentq", "SCIPY_RTOL"]

#: SciPy's default ``rtol`` for ``brentq`` (4 * double epsilon).
SCIPY_RTOL = 8.881784197001252e-16


def batched_brentq(
    evaluate: Callable,
    lo,
    hi,
    f_lo,
    f_hi,
    *,
    xtol: float = 1e-12,
    rtol: float = SCIPY_RTOL,
    maxiter: int = 100,
):
    """Brent root refinement of many brackets in lock-step.

    Parameters
    ----------
    evaluate:
        ``evaluate(ts, rows) -> values``: the bracketed function's values
        at parameter ``ts[k]`` for bracket index ``rows[k]``, computed
        with **one** batched call.  ``rows`` indexes the input arrays.
    lo, hi:
        Bracket endpoints per row (``lo < hi``), as 1-d arrays.
    f_lo, f_hi:
        Function values at the endpoints, already evaluated by the caller
        (SciPy evaluates them inside ``brentq``; the caller spends two
        batched rounds instead of ``2 * rows`` scalar calls).
    xtol, rtol, maxiter:
        Exactly SciPy's parameters; the defaults match the solver
        kernels' scalar reference (``xtol=1e-12``, SciPy default rtol).

    Returns
    -------
    (roots, ok):
        ``roots[k]`` is the Brent root of bracket ``k``, bit-identical to
        ``scipy.optimize.brentq`` on the same bracket; ``ok[k]`` is False
        where the bracket's endpoint signs do not differ or ``maxiter``
        was exhausted (SciPy raises there; the caller decides).
    """
    lo = xp.asarray(lo, dtype=xp.float64)
    hi = xp.asarray(hi, dtype=xp.float64)
    f_lo = xp.asarray(f_lo, dtype=xp.float64)
    f_hi = xp.asarray(f_hi, dtype=xp.float64)
    n = lo.shape[0]
    roots = xp.empty(n, dtype=xp.float64)
    ok = xp.ones(n, dtype=bool)
    if n == 0:
        return roots, ok

    # --- endpoint short-circuits, in SciPy's exact order ----------------
    roots[:] = xp.nan
    pre_zero = f_lo == 0.0
    cur_zero = (f_hi == 0.0) & ~pre_zero
    roots[pre_zero] = lo[pre_zero]
    roots[cur_zero] = hi[cur_zero]
    bad_sign = (~pre_zero & ~cur_zero
                & (xp.signbit(f_lo) == xp.signbit(f_hi)))
    ok[bad_sign] = False
    active = ~(pre_zero | cur_zero | bad_sign)

    idx = xp.flatnonzero(active)
    if idx.size == 0:
        return roots, ok

    # --- per-row Brent state (C locals, vectorised) ---------------------
    xpre = lo[idx].copy()
    xcur = hi[idx].copy()
    fpre = f_lo[idx].copy()
    fcur = f_hi[idx].copy()
    xblk = xp.zeros(idx.size)
    fblk = xp.zeros(idx.size)
    spre = xp.zeros(idx.size)
    scur = xp.zeros(idx.size)

    for _ in range(maxiter):
        # (re)establish the bracket around the current best point
        rebrk = (fpre != 0.0) & (fcur != 0.0) \
            & (xp.signbit(fpre) != xp.signbit(fcur))
        xblk = xp.where(rebrk, xpre, xblk)
        fblk = xp.where(rebrk, fpre, fblk)
        step0 = xcur - xpre
        spre = xp.where(rebrk, step0, spre)
        scur = xp.where(rebrk, step0, scur)
        # keep the smaller-|f| endpoint in xcur
        swap = xp.abs(fblk) < xp.abs(fcur)
        xpre_n = xp.where(swap, xcur, xpre)
        xcur_n = xp.where(swap, xblk, xcur)
        xblk_n = xp.where(swap, xcur, xblk)
        fpre_n = xp.where(swap, fcur, fpre)
        fcur_n = xp.where(swap, fblk, fcur)
        fblk_n = xp.where(swap, fcur, fblk)
        xpre, xcur, xblk = xpre_n, xcur_n, xblk_n
        fpre, fcur, fblk = fpre_n, fcur_n, fblk_n

        delta = (xtol + rtol * xp.abs(xcur)) / 2.0
        sbis = (xblk - xcur) / 2.0
        done = (fcur == 0.0) | (xp.abs(sbis) < delta)
        if xp.any(done):
            rows_done = idx[done]
            roots[rows_done] = xcur[done]
            keep = ~done
            idx = idx[keep]
            if idx.size == 0:
                return roots, ok
            xpre, xcur, xblk = xpre[keep], xcur[keep], xblk[keep]
            fpre, fcur, fblk = fpre[keep], fcur[keep], fblk[keep]
            spre, scur = spre[keep], scur[keep]
            delta, sbis = delta[keep], sbis[keep]

        # trial step: secant / inverse-quadratic, truncated, else bisect
        try_interp = (xp.abs(spre) > delta) & (xp.abs(fcur) < xp.abs(fpre))
        with xp.errstate(divide="ignore", invalid="ignore"):
            secant = -fcur * (xcur - xpre) / (fcur - fpre)
            dpre = (fpre - fcur) / (xpre - xcur)
            dblk = (fblk - fcur) / (xblk - xcur)
            extra = -fcur * (fblk * dblk - fpre * dpre) \
                / (dblk * dpre * (fblk - fpre))
        stry = xp.where(xpre == xblk, secant, extra)
        short = 2.0 * xp.abs(stry) \
            < xp.minimum(xp.abs(spre), 3.0 * xp.abs(sbis) - delta)
        accept = try_interp & short
        spre = xp.where(accept, scur, sbis)
        scur = xp.where(accept, stry, sbis)

        # advance, clamped to at least delta toward the bracket interior
        xpre = xcur
        fpre = fcur
        clamp = xp.abs(scur) <= delta
        step = xp.where(clamp, xp.where(sbis > 0.0, delta, -delta), scur)
        xcur = xcur + step
        fcur = xp.asarray(evaluate(xcur, idx), dtype=xp.float64)

    # maxiter exhausted: SciPy raises; flag instead, caller re-pins.
    roots[idx] = xcur
    ok[idx] = False
    return roots, ok
