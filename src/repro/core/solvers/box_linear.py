"""Exact box-constrained projection onto an affine boundary.

The minimum-distance problem

    minimise ||x - x0||_2   s.t.   k . x = b,   lo <= x <= hi

has the classical clamped-multiplier solution: KKT stationarity with the
box's complementary multipliers gives

    x(t) = clamp(x0 + t k, lo, hi)

for a scalar multiplier ``t``, and ``g(t) = k . x(t)`` is monotone
non-decreasing in ``t`` (each term ``k_i x_i(t)`` is non-decreasing
whatever the sign of ``k_i``), so the right ``t`` is a one-dimensional
root found by Brent to machine precision.  This replaces the multistart
SLSQP fallback the dispatcher would otherwise use for affine features
whose unconstrained witness leaves the physical box — exact, deterministic
and orders of magnitude faster.
"""

from __future__ import annotations

from scipy.optimize import brentq

from repro.core.backend import xp
from repro.core.boundary import BoundaryCrossing
from repro.core.mappings import LinearMapping
from repro.exceptions import BoundaryNotFoundError, SpecificationError

__all__ = ["solve_linear_box_radius"]


def solve_linear_box_radius(
    mapping: LinearMapping,
    origin: xp.ndarray,
    bound: float,
    *,
    lower: xp.ndarray | None = None,
    upper: xp.ndarray | None = None,
    xtol: float = 1e-14,
) -> BoundaryCrossing:
    """Exact l2 projection onto ``{x : f(x) = bound, lo <= x <= hi}``.

    Parameters
    ----------
    mapping:
        The affine feature ``f(x) = k . x + c``.
    origin:
        The point to project (need not itself satisfy the box).
    bound:
        Boundary level.
    lower, upper:
        Elementwise box bounds (``None`` = unbounded on that side).
    xtol:
        Brent tolerance on the multiplier.

    Returns
    -------
    BoundaryCrossing
        The exact constrained projection.

    Raises
    ------
    BoundaryNotFoundError
        When the level is unreachable inside the box (the boundary set is
        empty there), or the gradient is zero.
    """
    if not isinstance(mapping, LinearMapping):
        raise SpecificationError("solve_linear_box_radius needs a LinearMapping")
    origin = xp.asarray(origin, dtype=xp.float64)
    k = mapping.coefficients
    if origin.shape != k.shape:
        raise SpecificationError(
            f"origin has shape {origin.shape}, expected {k.shape}")
    if not xp.any(k):
        raise BoundaryNotFoundError("feature has zero gradient")
    lo = xp.full_like(origin, -xp.inf) if lower is None else xp.asarray(
        lower, dtype=xp.float64)
    hi = xp.full_like(origin, xp.inf) if upper is None else xp.asarray(
        upper, dtype=xp.float64)
    if xp.any(lo > hi):
        raise SpecificationError("lower bound exceeds upper bound")
    target = float(bound) - mapping.constant

    def x_of(t: float) -> xp.ndarray:
        return xp.clip(origin + t * k, lo, hi)

    def g(t: float) -> float:
        return float(k @ x_of(t)) - target

    # The reachable range of k.x inside the box.  Components with k_i = 0
    # contribute nothing regardless of their (possibly infinite) bounds —
    # select 0 explicitly so 0 * inf never surfaces as NaN.
    with xp.errstate(invalid="ignore"):
        up = xp.where(k > 0, k * hi, xp.where(k < 0, k * lo, 0.0))
        dn = xp.where(k > 0, k * lo, xp.where(k < 0, k * hi, 0.0))
    best_hi = float(xp.sum(up))
    best_lo = float(xp.sum(dn))
    if not best_lo - 1e-12 * (1 + abs(best_lo)) <= target <= \
            best_hi + 1e-12 * (1 + abs(best_hi)):
        raise BoundaryNotFoundError(
            f"level {bound} unreachable inside the box: k.x spans "
            f"[{best_lo + mapping.constant:g}, {best_hi + mapping.constant:g}]")

    g0 = g(0.0)
    if g0 == 0.0:
        x = x_of(0.0)
        return BoundaryCrossing(point=x, bound=float(bound),
                                distance=float(xp.linalg.norm(x - origin)))
    # g is monotone non-decreasing; bracket the root by expansion.
    step = 1.0 / float(k @ k)
    if g0 < 0.0:
        t_lo, t_hi = 0.0, step
        while g(t_hi) < 0.0:
            t_hi *= 4.0
            if t_hi > 1e30:  # pragma: no cover - excluded by range check
                raise BoundaryNotFoundError("failed to bracket the multiplier")
    else:
        t_lo, t_hi = -step, 0.0
        while g(t_lo) > 0.0:
            t_lo *= 4.0
            if t_lo < -1e30:  # pragma: no cover
                raise BoundaryNotFoundError("failed to bracket the multiplier")
    t = brentq(g, t_lo, t_hi, xtol=xtol)
    x = x_of(t)
    return BoundaryCrossing(point=x, bound=float(bound),
                            distance=float(xp.linalg.norm(x - origin)))
