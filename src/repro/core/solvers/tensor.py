"""Cross-problem tensorised radius solves (struct-of-arrays groups).

:func:`compute_radii` fingerprints a batch by
:func:`~repro.core.radius._solver_structure`; problems landing in the same
directional tier (``bisection`` or ``numeric``) over the same dimension,
norm, and mapping structure repeat the *same* solver schedule — the same
direction matrix (stateless seed), the same canonical probe grid, the same
bracket expansion — differing only in their origins, boxes, and bound
levels.  :class:`ProblemTensor` packs such a group into stacked arrays so
the whole group advances as one kernel:

* **Lock-step expansion over a problems axis.**  Every still-active
  ``(problem, bound, direction)`` ray advances one rung per iteration and
  all surviving rays' probe points are evaluated with a single
  ``mapping.value_many`` call over the flattened point tensor — one
  Python-level evaluation per *iteration* instead of one per problem per
  iteration.  The probe parameters are the scalar kernel's exact decision
  grid (``t_1 = min(t_init, t_stop)``, ``t_{k+1} = min(4 t_k, t_stop)``
  with per-problem box exits), so the located bracket endpoints are the
  scalar path's floats.

* **Batched Brent refinement with cross-problem pruning.**  All surviving
  brackets refine in lock-step through
  :func:`~repro.core.solvers.brent.batched_brentq`.  Brackets that cannot
  contain their problem's winning crossing are pruned before refinement
  (their lower end exceeds the problem's smallest bracket top), and the
  batched roots prune the rest: only the candidates within ``PIN_TOL`` of
  each problem's smallest root survive.

* **Scalar re-pinning of the winners.**  ``value_many`` is *not*
  row-stable across batch shapes (BLAS blocking makes a row's value
  depend on how many other rows share the call), so batched floats are
  never returned: every surviving candidate is re-refined by
  :func:`~repro.core.solvers.bisection._refine_bracket` — the same scalar
  ``brentq`` call on the same bracket the per-problem path makes — and
  the winner is the lexicographic ``(t, row)`` minimum over them, exactly
  the scalar pruned scan's answer.  Batched evaluations only feed *sign
  decisions* and *candidate selection*, which is the standing contract of
  the per-problem batched kernel as well.

The numeric tier shares the expansion (its crossing seeds all come from
one flattened tensor) but re-pins **every** bracket: the crossings seed
the SLSQP multistart, so each must be the scalar reference float, not a
locator.

Eval accounting (see ``PERFORMANCE.md``): for ``P`` problems, ``E``
expansion rungs and ``R`` refined brackets per problem (``~I`` scalar
calls per Brent refinement), the per-problem loop spends
``P * (1 + E + R*I)`` Python-level evaluation calls; the tensor spends
``E' + I' + P * (c*I)`` with ``E' ~ E`` union rungs, ``I' ~ I`` lock-step
refinement rounds and ``c`` candidates per problem (typically 1).  When
crossing distances cluster (isotropic level sets — the common FePIA
geometry) the scalar scan cannot prune (``R ~`` all directions) and the
tensor's advantage is ``O(R)``.

Results are bit-identical to :func:`~repro.core.radius.compute_radius`
per problem — radius, boundary point, per-bound table, quality,
diagnostics trail — pinned by ``tests/core/test_tensor_identity.py``.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass

from repro.core.backend import xp
from repro.core.boundary import BoundaryCrossing
from repro.core.diagnostics import Quality, quality_of_method
from repro.core.solvers.bisection import (
    _batch_values,
    _brackets_from_table,
    _ray_exit_ts,
    _refine_bracket,
)
from repro.core.solvers.brent import batched_brentq
from repro.core.solvers.numeric import solve_numeric_radius
from repro.exceptions import (
    BoundaryNotFoundError,
    InfeasibleAllocationError,
    SpecificationError,
)
from repro.observability import get_metrics, span
from repro.utils.linalg import sample_on_sphere
from repro.utils.rng import default_rng

__all__ = ["ProblemTensor", "solve_problem_tensor", "solve_group"]

logger = logging.getLogger(__name__)

#: Relative tolerance under which batched crossings count as tied with the
#: smallest one: every bracket within it is re-pinned through the scalar
#: reference kernel before the winner is chosen.  It dwarfs both the Brent
#: tolerance and any ``value_many`` row drift, mirroring the warm path's
#: certificate guard margin.
PIN_TOL = 1e-9

# The directional solvers' fixed schedule (their keyword defaults); the
# dispatcher in repro.core.radius never overrides these.
_T_MAX = 1e6
_T_INIT = 1e-3
_XTOL = 1e-12
_N_RANDOM_DIRECTIONS = 128
_N_SEED_DIRECTIONS = 32


@dataclass(frozen=True)
class ProblemTensor:
    """A struct-of-arrays view of one batchable problem group.

    Attributes
    ----------
    problems:
        The member :class:`~repro.core.radius.RadiusProblem`\\s, in
        dispatch order.
    method:
        The ``compute_radius`` method parameter the group was packed
        under (fixes the solver tier).
    tier:
        ``"bisection"`` or ``"numeric"`` — the directional tier every
        member dispatches to.
    norm:
        The shared distance norm (``math.inf`` for the sup norm).
    origins:
        ``(P, n)`` stacked original points.
    betas:
        Per-problem tuples of finite tolerance bounds (equal length
        across the group).
    """

    problems: tuple
    method: str
    tier: str
    norm: float
    origins: xp.ndarray
    betas: tuple

    @property
    def n_problems(self) -> int:
        return len(self.problems)

    @property
    def dim(self) -> int:
        return int(self.origins.shape[1])

    @staticmethod
    def batch_key(problem, method: str = "auto") -> tuple | None:
        """Grouping fingerprint, or ``None`` when the problem cannot ride
        the tensor path.

        Problems share a key when they dispatch to the same directional
        tier over the same dimension, bound count, norm, and mapping
        *function* (equal ``structure_key``, or the identical object when
        the mapping cannot fingerprint itself).  Origins, boxes and bound
        levels may differ — they are data, not structure.
        """
        from repro.core.radius import _solver_structure

        structure = _solver_structure(problem, method)
        if structure[0] not in ("bisection", "numeric"):
            return None
        mkey = problem.mapping.structure_key()
        identity = ("structure", mkey) if mkey is not None \
            else ("object", id(problem.mapping))
        norm = xp.inf if problem.norm in (xp.inf, "inf") \
            else float(problem.norm)
        return (structure, norm, identity)

    @classmethod
    def pack(cls, problems, method: str = "auto") -> "ProblemTensor":
        """Stack ``problems`` into one tensor; they must share a batch key."""
        problems = tuple(problems)
        if not problems:
            raise SpecificationError("cannot pack an empty problem group")
        keys = {cls.batch_key(p, method) for p in problems}
        if len(keys) != 1 or None in keys:
            raise SpecificationError(
                "problems do not share a solver structure; use "
                "ProblemTensor.partition to split a mixed batch")
        structure, norm, _ = next(iter(keys))
        return cls(
            problems=problems,
            method=method,
            tier=structure[0],
            norm=norm,
            origins=xp.stack([p.origin for p in problems]),
            betas=tuple(p.bounds.finite_bounds for p in problems),
        )

    @classmethod
    def partition(cls, problems, method: str = "auto"):
        """Split a batch into tensor groups and scalar leftovers.

        Returns ``[(indices, tensor_or_none), ...]`` in first-seen order:
        ``tensor`` is a packed :class:`ProblemTensor` for groups of two
        or more batchable problems, ``None`` for everything else (the
        caller solves those through :func:`compute_radius`).
        """
        groups: dict = {}
        order: list = []
        for i, p in enumerate(problems):
            key = cls.batch_key(p, method)
            if key is None:
                key = ("scalar", i)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(i)
        out = []
        for key in order:
            idxs = groups[key]
            if key[0] == "scalar" or len(idxs) < 2:
                out.append((idxs, None))
            else:
                out.append((idxs,
                            cls.pack([problems[i] for i in idxs], method)))
        return out


# ---------------------------------------------------------------------------
# shared geometry


def _bisection_directions(n: int, norm, seed) -> xp.ndarray:
    """The direction matrix ``solve_bisection_radius`` derives from a
    stateless seed: signed axes plus sphere samples, normalised in the
    distance norm.  Stateless seeding makes it identical for every member
    of the group."""
    rng = default_rng(seed)
    eye = xp.eye(n)
    directions = xp.vstack([eye, -eye,
                            sample_on_sphere(rng, _N_RANDOM_DIRECTIONS, n)])
    p = xp.inf if norm in (xp.inf, "inf") else norm
    norms = xp.linalg.norm(directions, ord=p, axis=1, keepdims=True)
    return directions / norms


def _numeric_directions(n: int, seed) -> xp.ndarray:
    """The seeding rays of ``solve_numeric_radius`` (unnormalised)."""
    rng = default_rng(seed)
    return xp.vstack([xp.eye(n), -xp.eye(n),
                      sample_on_sphere(rng, _N_SEED_DIRECTIONS, n)])


def _shared_geometry(problems) -> bool:
    """Whether every member shares the first one's origin and box — the
    precondition for replaying one warm :class:`RayTable` across the
    group (a degradation family walking bounds over one geometry)."""
    first = problems[0]

    def _eq(a, b):
        if a is None or b is None:
            return a is None and b is None
        return a.shape == b.shape and a.tobytes() == b.tobytes()

    return all(_eq(p.origin, first.origin) and _eq(p.lower, first.lower)
               and _eq(p.upper, first.upper) for p in problems[1:])


# ---------------------------------------------------------------------------
# flattened lock-step expansion


def _expand_units(mapping, origins, directions, units, h0s, t_stops):
    """Lock-step bracket expansion over a flattened
    ``(problem, bound) x direction`` point tensor.

    ``units`` lists ``(problem_index, bound_index, bound)`` rows; ``h0s``
    their scalar ``f(x0) - b`` values; ``t_stops`` their per-direction
    box exits.  Each iteration evaluates every still-active ray's probe
    point — across *all* units — with one ``mapping.value_many`` call.
    The probe grid and sign decisions per ray are exactly
    :func:`~repro.core.solvers.bisection._directional_brackets`'s, so the
    returned brackets carry the scalar kernel's endpoint floats.

    Returns per-unit bracket lists ``{unit_index: [(row, lo, hi, h_hi),
    ...]}`` sorted by ``(lo, row)`` like the scalar kernel's.
    """
    m = directions.shape[0]
    n_units = len(units)
    total = n_units * m
    unit_of = xp.repeat(xp.arange(n_units), m)
    row_of = xp.tile(xp.arange(m), n_units)
    p_of = xp.repeat(xp.asarray([u[0] for u in units], dtype=xp.intp), m)
    beta_of = xp.repeat(xp.asarray([u[2] for u in units], dtype=xp.float64),
                        m)
    h0_of = xp.repeat(xp.asarray(h0s, dtype=xp.float64), m)
    t_stop = xp.concatenate(t_stops)

    active = t_stop > 0.0
    t_lo = xp.zeros(total)
    t_hi = xp.minimum(_T_INIT, t_stop)
    brackets: dict[int, list] = {u: [] for u in range(n_units)}
    idx_all = xp.arange(total)
    while xp.any(active):
        rows = idx_all[active]
        points = origins[p_of[rows]] + t_hi[rows, None] * directions[row_of[rows]]
        values, in_domain = _batch_values(mapping, points)
        h_hi = values - beta_of[rows]
        # Out-of-domain probes end their rays exactly like the scalar
        # kernel's per-direction SpecificationError: no crossing.
        active[rows[~in_domain]] = False
        with xp.errstate(invalid="ignore"):
            flipped = in_domain & (h0_of[rows] * h_hi <= 0.0)
        for k, hv in zip(rows[flipped], h_hi[flipped]):
            brackets[int(unit_of[k])].append(
                (int(row_of[k]), float(t_lo[k]), float(t_hi[k]), float(hv)))
        active[rows[flipped]] = False
        exhausted = active[rows] & (t_hi[rows] >= t_stop[rows])
        active[rows[exhausted]] = False
        still = idx_all[active]
        t_lo[still] = t_hi[still]
        t_hi[still] = xp.minimum(4.0 * t_hi[still], t_stop[still])
    for unit_brackets in brackets.values():
        unit_brackets.sort(key=lambda b: (b[1], b[0]))
    return brackets


def _unit_t_stops(tensor, units, directions):
    """Per-unit box-exit arrays (bound-independent, computed once per
    problem and shared by its units)."""
    per_problem: dict[int, xp.ndarray] = {}
    out = []
    for pi, _, _ in units:
        if pi not in per_problem:
            problem = tensor.problems[pi]
            per_problem[pi] = _ray_exit_ts(problem.origin, directions,
                                           problem.lower, problem.upper,
                                           _T_MAX)
        out.append(per_problem[pi])
    return out


# ---------------------------------------------------------------------------
# bisection tier: batched refinement, candidate selection, scalar re-pin


def _select_winners(tensor, units, brackets, directions, origins, h0s):
    """Refine every unit's brackets in lock-step and return each unit's
    winning ``(t, row)`` crossing (or ``None``), bit-identical to the
    scalar pruned scan.

    Three pruning layers cut the scalar work: brackets whose lower end
    exceeds their unit's smallest bracket top cannot win and skip
    refinement entirely; the batched Brent roots then discard everything
    outside ``PIN_TOL`` of each unit's smallest root; the survivors — the
    winner and any near-ties, plus rows the batched kernel could not
    certify (``ok=False``) — are re-pinned through the scalar reference
    kernel, and the lexicographic ``(t, row)`` minimum over those scalar
    floats is returned.
    """
    metrics = get_metrics()
    flat: list[tuple[int, int, float, float, float]] = []
    pruned = 0
    for u, unit_brackets in brackets.items():
        if not unit_brackets:
            continue
        top = min(b[2] for b in unit_brackets)
        cutoff = top + PIN_TOL * (1.0 + top)
        for row, lo, hi, h_hi in unit_brackets:
            if lo > cutoff:
                pruned += 1
                continue
            flat.append((u, row, lo, hi, h_hi))
    winners: dict[int, tuple[float, int] | None] = {
        u: None for u in brackets}
    if not flat:
        if pruned:
            metrics.inc("solver.tensor_pruned", pruned)
        return winners

    unit_b = xp.asarray([f[0] for f in flat], dtype=xp.intp)
    row_b = xp.asarray([f[1] for f in flat], dtype=xp.intp)
    lo_b = xp.asarray([f[2] for f in flat])
    hi_b = xp.asarray([f[3] for f in flat])
    f_hi = xp.asarray([f[4] for f in flat])
    p_b = xp.asarray([units[u][0] for u in unit_b], dtype=xp.intp)
    beta_b = xp.asarray([units[u][2] for u in unit_b])
    h0_b = xp.asarray([h0s[u] for u in unit_b])

    def evaluate(ts, rows):
        points = origins[p_b[rows]] + ts[:, None] * directions[row_b[rows]]
        values, _ = _batch_values(tensor.problems[0].mapping, points)
        return values - beta_b[rows]

    # Endpoint values: the expansion's h_hi floats on top, and a fresh
    # batched round at the bottoms — except t=0 rows, whose value is the
    # problem's scalar h0 (no drift where the exact float is free).
    at_zero = lo_b == 0.0
    f_lo = xp.empty(lo_b.shape[0])
    f_lo[at_zero] = h0_b[at_zero]
    inner = xp.flatnonzero(~at_zero)
    if inner.size:
        points = origins[p_b[inner]] \
            + lo_b[inner, None] * directions[row_b[inner]]
        values, _ = _batch_values(tensor.problems[0].mapping, points)
        f_lo[inner] = values - beta_b[inner]

    roots, ok = batched_brentq(evaluate, lo_b, hi_b, f_lo, f_hi, xtol=_XTOL)
    metrics.inc("solver.tensor_refined", len(flat))

    by_unit: dict[int, list[int]] = {}
    for k, u in enumerate(unit_b):
        by_unit.setdefault(int(u), []).append(k)
    repinned = 0
    for u, ks in by_unit.items():
        finite = [k for k in ks if ok[k] and math.isfinite(roots[k])]
        if finite:
            t_min = min(float(roots[k]) for k in finite)
            slack = PIN_TOL * (1.0 + t_min)
            cands = [k for k in ks
                     if not ok[k] or float(roots[k]) <= t_min + slack]
        else:
            cands = list(ks)
        pruned += len(ks) - len(cands)
        problem = tensor.problems[units[u][0]]
        bound = units[u][2]
        best_t, best_row = xp.inf, -1
        for k in sorted(cands, key=lambda k: (float(lo_b[k]), int(row_b[k]))):
            t = _refine_bracket(problem.mapping, problem.origin,
                                directions[int(row_b[k])], bound,
                                float(lo_b[k]), float(hi_b[k]),
                                float(f_hi[k]), _XTOL)
            if t < best_t or (t == best_t and int(row_b[k]) < best_row):
                best_t, best_row = t, int(row_b[k])
        repinned += len(cands)
        winners[u] = (best_t, best_row)
    if pruned:
        metrics.inc("solver.tensor_pruned", pruned)
    if repinned:
        metrics.inc("solver.repinned_brackets", repinned)
    return winners


def _solve_bisection_units(tensor, units, value0s, seed, warm):
    """Locate and refine every ``(problem, bound)`` unit's winning
    crossing over the shared direction matrix.

    With ``warm`` carrying a :class:`~repro.core.solvers.warm.WarmStart`
    and the whole group sharing one geometry (a degradation family), the
    bound ray table replays stored probes instead of fresh expansion —
    the same keying ``solve_bisection_radius`` uses, so curve sweeps and
    tensor solves feed the same table.
    """
    directions = _bisection_directions(tensor.dim, tensor.norm, seed)
    h0s = [value0s[pi] - b for pi, _, b in units]
    t_stops = _unit_t_stops(tensor, units, directions)
    metrics = get_metrics()

    table = None
    if warm is not None and units and _shared_geometry(tensor.problems):
        first = tensor.problems[0]
        table = warm.table("bisection")
        table.bind(first.origin, directions, first.lower, first.upper,
                   _T_MAX, _T_INIT)
        if table.g0 is None:
            table.g0 = float(value0s[0])
    if table is not None:
        brackets = {}
        for u, ((pi, _, b), h0, t_stop) in enumerate(
                zip(units, h0s, t_stops)):
            warm.warm_starts += 1
            metrics.inc("solver.warm_starts")
            fresh_before = table.fresh_evals
            brackets[u] = _brackets_from_table(
                tensor.problems[pi].mapping, tensor.problems[pi].origin,
                directions, b, h0, t_stop, _T_INIT, table)
            if table.fresh_evals == fresh_before:
                warm.warm_hits += 1
                metrics.inc("solver.warm_hits")
    else:
        brackets = _expand_units(tensor.problems[0].mapping, tensor.origins,
                                 directions, units, h0s, t_stops)
    winners = _select_winners(tensor, units, brackets, directions,
                              tensor.origins, h0s)
    if warm is not None and table is not None:
        for u, (pi, _, b) in enumerate(units):
            if winners[u] is not None:
                side = "upper" if h0s[u] < 0.0 else "lower"
                warm.hints[side] = winners[u][1]
    return winners, directions


# ---------------------------------------------------------------------------
# numeric tier: shared expansion, scalar re-pin of every seed crossing


def _numeric_unit_crossings(tensor, units, value0s, seed):
    """Per-unit directional crossing arrays for the numeric tier's SLSQP
    seeding, bit-identical to ``directional_crossings`` per unit.

    The bracket expansion is shared across the whole group (one flattened
    tensor); every located bracket is then re-pinned through the scalar
    reference kernel because the crossings seed the multistart — they are
    results, not locators.
    """
    directions = _numeric_directions(tensor.dim, seed)
    h0s = [value0s[pi] - b for pi, _, b in units]
    t_stops = _unit_t_stops(tensor, units, directions)
    brackets = _expand_units(tensor.problems[0].mapping, tensor.origins,
                             directions, units, h0s, t_stops)
    m = directions.shape[0]
    out = {}
    for u, (pi, _, b) in enumerate(units):
        problem = tensor.problems[pi]
        ts = xp.full(m, xp.nan)
        if h0s[u] == 0.0:
            ts[:] = 0.0
        else:
            for row, lo, hi, h_hi in brackets[u]:
                ts[row] = _refine_bracket(problem.mapping, problem.origin,
                                          directions[row], b, lo, hi, h_hi,
                                          _XTOL)
        out[u] = ts
    return out


# ---------------------------------------------------------------------------
# group solve


def solve_problem_tensor(tensor: ProblemTensor, *, seed=None, warm=None):
    """Solve every member of ``tensor`` through the batched kernel.

    Returns one :class:`~repro.core.radius.RadiusResult` per member, in
    order, each bit-identical to ``compute_radius(problem,
    method=tensor.method, seed=seed, cache=False)`` — including the
    per-bound table, quality, and diagnostics trail — and each wrapped in
    its own ``radius.solve``/``radius.bound`` spans so traces keep their
    per-problem shape.

    ``warm`` optionally threads a family
    :class:`~repro.core.solvers.warm.WarmStart` (bisection tier, shared
    geometry only); it changes evaluation counts, never results.
    """
    from repro.core.radius import RadiusResult, _timed_solve

    problems = tensor.problems
    metrics = get_metrics()
    results: list = [None] * len(problems)
    with span("radius.tensor", problems=len(problems), tier=tensor.tier,
              dim=tensor.dim) as tsp:
        metrics.inc("radius.tensor_solves")
        value0s = []
        units: list[tuple[int, int, float]] = []
        for pi, problem in enumerate(problems):
            metrics.inc("radius.solves")
            value0 = problem.original_value
            value0s.append(value0)
            if not problem.bounds.contains(value0):
                raise InfeasibleAllocationError(
                    f"feature value {value0:g} violates the tolerance "
                    f"interval [{problem.bounds.beta_min:g}, "
                    f"{problem.bounds.beta_max:g}] at the original "
                    "operating point; robustness is undefined")
            finite_bounds = problem.bounds.finite_bounds
            degenerate = next((b for b in finite_bounds if value0 == b),
                              None)
            if degenerate is not None:
                results[pi] = RadiusResult(
                    radius=0.0, boundary_point=problem.origin.copy(),
                    bound_hit=degenerate, method="degenerate",
                    original_value=value0, per_bound={degenerate: 0.0},
                    quality=Quality.EXACT)
                metrics.inc("radius.method.degenerate")
                continue
            for j, b in enumerate(finite_bounds):
                units.append((pi, j, float(b)))

        if tensor.tier == "bisection":
            winners, directions = _solve_bisection_units(
                tensor, units, value0s, seed, warm)
        else:
            crossings_ts = _numeric_unit_crossings(tensor, units, value0s,
                                                   seed)
        unit_index = {(pi, j): u for u, (pi, j, _) in enumerate(units)}

        for pi, problem in enumerate(problems):
            if results[pi] is not None:
                continue
            with span("radius.solve", method=tensor.method,
                      dim=problem.origin.size) as sp:
                best = None
                best_method = "none"
                per_bound: dict = {}
                trail: list = []
                methods_used: list = []
                for j, b in enumerate(problem.bounds.finite_bounds):
                    u = unit_index[(pi, j)]
                    with span("radius.bound", bound=float(b)) as bsp:
                        if tensor.tier == "bisection":
                            crossing = _timed_solve(
                                "bisection", b,
                                _bisection_crossing_fn(
                                    problem, b, directions, winners[u],
                                    value0s[pi]),
                                trail)
                        else:
                            crossing = _timed_solve(
                                "numeric", b,
                                lambda u=u, b=b: solve_numeric_radius(
                                    problem.mapping, problem.origin, b,
                                    lower=problem.lower,
                                    upper=problem.upper, seed=seed,
                                    crossings_ts=crossings_ts[u]),
                                trail)
                        if bsp is not None:
                            bsp.tags["solver"] = tensor.tier
                            bsp.tags["found"] = crossing is not None
                    methods_used.append(tensor.tier)
                    per_bound[b] = crossing.distance \
                        if crossing is not None else math.inf
                    if crossing is not None and (
                            best is None
                            or crossing.distance < best.distance):
                        best = crossing
                        best_method = tensor.tier
                qualities = [quality_of_method(m) for m in methods_used]
                quality = max(qualities, key=list(Quality).index,
                              default=Quality.EXACT)
                if best is None:
                    result = RadiusResult(
                        radius=math.inf, boundary_point=None,
                        bound_hit=None,
                        method=best_method if best_method != "none"
                        else tensor.method,
                        original_value=value0s[pi], per_bound=per_bound,
                        quality=quality, diagnostics=tuple(trail))
                else:
                    result = RadiusResult(
                        radius=best.distance, boundary_point=best.point,
                        bound_hit=best.bound, method=best_method,
                        original_value=value0s[pi], per_bound=per_bound,
                        quality=quality, diagnostics=tuple(trail))
                metrics.inc(f"radius.method.{result.method}")
                if sp is not None:
                    sp.tags["solver"] = result.method
                    sp.tags["quality"] = result.quality.name
            results[pi] = result
        if tsp is not None:
            tsp.tags["units"] = len(units)
    return results


def _bisection_crossing_fn(problem, bound, directions, winner, value0):
    """Package a refined winner as the deferred solver call
    ``_timed_solve`` expects, reproducing ``solve_bisection_radius``'s
    terminal behaviour (crossing or :class:`BoundaryNotFoundError`)."""
    def fn():
        if value0 - bound == 0.0:
            return BoundaryCrossing(point=problem.origin + 0.0 * directions[0],
                                    bound=float(bound), distance=0.0)
        if winner is None:
            raise BoundaryNotFoundError(
                f"no boundary crossing for bound {bound} within "
                f"t_max={_T_MAX} over {directions.shape[0]} directions")
        t, row = winner
        point = problem.origin + t * directions[row]
        return BoundaryCrossing(point=point, bound=float(bound), distance=t)
    return fn


def solve_group(problems, *, method: str = "auto", seed=None, cache=None):
    """Cache-aware group solve: the in-process batched counterpart of a
    ``compute_radius`` loop, and the worker body of the executor and
    service dispatch paths.

    Consults the cache once up front, partitions the misses into
    :class:`ProblemTensor` groups (solving leftovers through
    :func:`compute_radius`), and stores fresh results back.  A stateful
    ``numpy.random.Generator`` seed forces the per-problem loop in
    problem order — batching would reorder draws from the shared stream.
    """
    from repro.core.radius import compute_radius
    from repro.parallel.cache import resolve_cache

    problems = list(problems)
    cache = resolve_cache(cache)
    keys: list = [None] * len(problems)
    results: list = [None] * len(problems)
    if cache is not None:
        for i, problem in enumerate(problems):
            keys[i] = cache.key(problem, method=method, seed=seed)
            results[i] = cache.get(keys[i])
    pending = [i for i, r in enumerate(results) if r is None]
    if isinstance(seed, xp.random.Generator):
        for i in pending:
            results[i] = compute_radius(problems[i], method=method,
                                        seed=seed, cache=False)
    else:
        for idxs, tensor in ProblemTensor.partition(
                [problems[i] for i in pending], method):
            if tensor is None:
                for k in idxs:
                    results[pending[k]] = compute_radius(
                        problems[pending[k]], method=method, seed=seed,
                        cache=False)
            else:
                for k, result in zip(idxs,
                                     solve_problem_tensor(tensor, seed=seed)):
                    results[pending[k]] = result
    if cache is not None:
        for i in pending:
            cache.put(keys[i], results[i])
    return results


def _solve_group_task(problems, method, seed):
    """Picklable executor-worker body: one structural shard solved through
    the tensor kernel, consulting the worker's own default cache."""
    return solve_group(problems, method=method, seed=seed)
