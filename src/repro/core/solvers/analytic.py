"""Closed-form radius solver for affine features (the paper's Equation 4).

For an affine feature ``f(x) = k . x + c`` the boundary set for bound ``b``
is the hyperplane ``k . x = b - c``, and the minimum distance from the
original point ``x0`` in the ``l_p`` norm is

    d_p = |k . x0 - (b - c)| / ||k||_q ,   1/p + 1/q = 1,

by norm duality (Hölder).  The paper uses ``p = 2`` throughout; ``p = 1``
and ``p = inf`` are provided for the norm-ablation experiment (E8).
"""

from __future__ import annotations


from repro.core.backend import xp
from repro.core.boundary import BoundaryCrossing
from repro.core.mappings import LinearMapping
from repro.exceptions import BoundaryNotFoundError, SpecificationError

__all__ = ["solve_linear_radius", "dual_norm_order"]


def dual_norm_order(norm: float) -> float:
    """Return the Hölder-dual order ``q`` of ``p`` for p in {1, 2, inf}."""
    if norm == 2:
        return 2.0
    if norm == 1:
        return xp.inf
    if norm in (xp.inf, "inf"):
        return 1.0
    raise SpecificationError(f"unsupported norm order {norm!r}; use 1, 2 or inf")


def _witness(origin: xp.ndarray, k: xp.ndarray, gap: float, norm: float) -> xp.ndarray:
    """A boundary point realising the minimum ``l_p`` distance.

    ``gap = (b - c) - k . x0`` is the signed constraint slack to close.
    """
    if norm == 2:
        return origin + gap * k / float(k @ k)
    if norm == 1:
        # Cheapest l1 move: spend the entire budget on the coordinate with
        # the largest |k_j| (steepest effect per unit of l1 distance).
        j = int(xp.argmax(xp.abs(k)))
        out = origin.copy()
        out[j] += gap / k[j]
        return out
    # l_inf: move every coordinate by the same magnitude, signed with k, so
    # each unit of l_inf distance buys ||k||_1 of constraint movement.
    step = gap / float(xp.sum(xp.abs(k)))
    return origin + step * xp.sign(k)


def solve_linear_radius(
    mapping: LinearMapping,
    origin: xp.ndarray,
    bound: float,
    *,
    norm: float = 2,
    lower: xp.ndarray | None = None,
    upper: xp.ndarray | None = None,
    box_atol: float = 1e-9,
) -> BoundaryCrossing:
    """Exact minimum distance from ``origin`` to ``{x : f(x) = bound}``.

    Parameters
    ----------
    mapping:
        The affine feature.
    origin:
        The original perturbation values ``x0``.
    bound:
        The tolerance bound ``beta`` defining the boundary hyperplane.
    norm:
        Distance norm ``p`` in {1, 2, inf}.
    lower, upper:
        Optional box bounds restricting the reachable region.  If the
        unconstrained witness falls outside the box, this solver raises
        :class:`BoundaryNotFoundError` so the dispatcher can fall back to a
        constrained numeric solve — the closed form is only exact for the
        unconstrained problem.
    box_atol:
        Tolerance when checking the witness against the box.

    Returns
    -------
    BoundaryCrossing
        The witness point, the bound hit and the distance (the radius for
        this single bound).

    Raises
    ------
    BoundaryNotFoundError
        If ``k = 0`` (the feature never moves, so the boundary is empty or
        everything) or the witness is outside the box bounds.
    """
    if not isinstance(mapping, LinearMapping):
        raise SpecificationError("solve_linear_radius requires a LinearMapping")
    origin = xp.asarray(origin, dtype=xp.float64)
    k = mapping.coefficients
    if origin.shape != k.shape:
        raise SpecificationError(
            f"origin has shape {origin.shape}, expected {k.shape}")
    knorm = float(xp.linalg.norm(k, ord=dual_norm_order(norm)))
    if knorm == 0.0:
        raise BoundaryNotFoundError(
            "feature has zero gradient; its boundary set is empty (the "
            "feature value never changes), robustness radius is infinite")
    target = float(bound) - mapping.constant
    gap = target - float(k @ origin)
    distance = abs(gap) / knorm
    point = _witness(origin, k, gap, norm)
    if lower is not None and xp.any(point < xp.asarray(lower) - box_atol):
        raise BoundaryNotFoundError(
            "unconstrained witness violates the lower box bound; use the "
            "numeric solver for the box-constrained projection")
    if upper is not None and xp.any(point > xp.asarray(upper) + box_atol):
        raise BoundaryNotFoundError(
            "unconstrained witness violates the upper box bound; use the "
            "numeric solver for the box-constrained projection")
    return BoundaryCrossing(point=point, bound=float(bound), distance=distance)
