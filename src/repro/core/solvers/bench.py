"""Benchmark harness: scalar vs vectorised solver kernels.

:func:`run_solver_kernel_benchmark` solves the same robustness problem —
a directional bisection over a high-dimensional :class:`MaxMapping` —
twice, once through the retained scalar reference loop and once through
the lock-step batched kernel, counting Python-level ``value``/
``value_many`` calls through a delegating wrapper.  A second section does
the same for the finite-difference Jacobian (per-coordinate loop vs
one-shot stencil).  The payload carries wall-clock timings, the call
counts, the reduction factors, and a bit-identity verdict — the batched
kernels promise the *exact* scalar results, measured rather than assumed.

Emits a ``repro-bench-solvers-v1`` payload; like every bench schema it is
validated by :func:`repro.parallel.bench.validate_bench_payload` (the
single source of truth), and CI smoke-tests it on every push.

Not imported by ``repro.core.solvers`` eagerly — import it explicitly::

    from repro.core.solvers.bench import run_solver_kernel_benchmark
"""

from __future__ import annotations

import logging
import time


from repro.core.backend import xp
from repro.core.mappings import (
    CallableMapping,
    FeatureMapping,
    LinearMapping,
    MaxMapping,
)
from repro.core.solvers.bisection import solve_bisection_radius
from repro.core.solvers.numeric import (
    _finite_diff_gradient,
    _finite_diff_gradient_scalar,
)
from repro.exceptions import SpecificationError
from repro.observability import get_observability
from repro.parallel.bench import SOLVER_BENCH_SCHEMA

__all__ = ["CallCountingMapping", "run_solver_kernel_benchmark"]

logger = logging.getLogger(__name__)


class CallCountingMapping(FeatureMapping):
    """Delegating wrapper counting Python-level evaluation calls.

    Each ``value`` call and each ``value_many`` call counts as *one*
    Python-level evaluation — that is exactly the unit the batched
    kernels optimise (a ``value_many`` over ten thousand rows costs one
    interpreter round-trip, not ten thousand).  ``rows`` additionally
    tracks how many points flowed through ``value_many``.
    """

    def __init__(self, inner: FeatureMapping) -> None:
        super().__init__(inner.n_inputs)
        self.inner = inner
        self.value_calls = 0
        self.value_many_calls = 0
        self.rows = 0

    @property
    def calls(self) -> int:
        """Total Python-level evaluation calls (scalar + batched)."""
        return self.value_calls + self.value_many_calls

    def reset(self) -> None:
        self.value_calls = self.value_many_calls = self.rows = 0

    def value(self, x: xp.ndarray) -> float:
        self.value_calls += 1
        return self.inner.value(x)

    def value_many(self, xs: xp.ndarray) -> xp.ndarray:
        self.value_many_calls += 1
        self.rows += int(xp.asarray(xs).shape[0])
        return self.inner.value_many(xs)

    def gradient(self, x: xp.ndarray):
        return self.inner.gradient(x)

    def gradient_many(self, xs: xp.ndarray):
        return self.inner.gradient_many(xs)

    def __repr__(self) -> str:
        return (f"CallCountingMapping({self.inner!r}, value={self.value_calls}, "
                f"value_many={self.value_many_calls})")


def _bench_bisection(dimension: int, directions: int, seed: int) -> dict:
    """Scalar vs batched directional bisection over a MaxMapping."""
    rng = xp.random.default_rng(seed)
    components = [LinearMapping(rng.standard_normal(dimension), float(i) * 0.1)
                  for i in range(8)]
    inner = MaxMapping(components)
    origin = xp.zeros(dimension)
    bound = inner.value(origin) + 6.0
    kw = dict(norm=2, n_random_directions=directions, seed=seed)

    scalar_map = CallCountingMapping(inner)
    t0 = time.perf_counter()
    scalar = solve_bisection_radius(scalar_map, origin, bound,
                                    batch=False, **kw)
    scalar_seconds = time.perf_counter() - t0

    batched_map = CallCountingMapping(inner)
    t0 = time.perf_counter()
    batched = solve_bisection_radius(batched_map, origin, bound,
                                     batch=True, **kw)
    batched_seconds = time.perf_counter() - t0

    identical = (scalar.distance == batched.distance
                 and xp.array_equal(scalar.point, batched.point)
                 and scalar.bound == batched.bound)
    return {
        "scalar_seconds": float(scalar_seconds),
        "batched_seconds": float(batched_seconds),
        "speedup": (float(scalar_seconds / batched_seconds)
                    if batched_seconds > 0 else 0.0),
        "scalar_evals": int(scalar_map.calls),
        "batched_evals": int(batched_map.calls),
        "eval_reduction": (float(scalar_map.calls / batched_map.calls)
                           if batched_map.calls else 0.0),
        "batched_rows": int(batched_map.rows),
        "identical": bool(identical),
        "radius": float(batched.distance),
    }


def _bench_gradient(dimension: int, seed: int, repeats: int = 50) -> dict:
    """Per-coordinate FD loop vs the one-shot central-difference stencil."""
    rng = xp.random.default_rng(seed)
    w = rng.standard_normal(dimension)
    inner = CallableMapping(
        lambda x: float(xp.sum(xp.sin(x * w)) + 0.5 * (x @ x)), dimension)
    points = rng.standard_normal((repeats, dimension))

    scalar_map = CallCountingMapping(inner)
    t0 = time.perf_counter()
    scalar_grads = [_finite_diff_gradient_scalar(scalar_map, x) for x in points]
    scalar_seconds = time.perf_counter() - t0

    batched_map = CallCountingMapping(inner)
    t0 = time.perf_counter()
    batched_grads = [_finite_diff_gradient(batched_map, x) for x in points]
    batched_seconds = time.perf_counter() - t0

    identical = all(xp.array_equal(a, b)
                    for a, b in zip(scalar_grads, batched_grads))
    return {
        "scalar_seconds": float(scalar_seconds),
        "batched_seconds": float(batched_seconds),
        "speedup": (float(scalar_seconds / batched_seconds)
                    if batched_seconds > 0 else 0.0),
        "scalar_evals": int(scalar_map.calls),
        "batched_evals": int(batched_map.calls),
        "eval_reduction": (float(scalar_map.calls / batched_map.calls)
                           if batched_map.calls else 0.0),
        "batched_rows": int(batched_map.rows),
        "identical": bool(identical),
    }


def run_solver_kernel_benchmark(
    *,
    dimension: int = 32,
    directions: int = 128,
    seed: int = 2005,
) -> dict:
    """Benchmark the vectorised solver kernels against their scalar paths.

    Parameters
    ----------
    dimension:
        Perturbation-space dimension of the benchmark problem.
    directions:
        Random directions for the bisection solve (more directions →
        more Python-level evaluations for the scalar loop to amortise).
    seed:
        Seed shared by both legs of each section (required for the
        identity verdicts to be meaningful).

    Returns
    -------
    dict
        A ``repro-bench-solvers-v1`` payload.  ``identical`` is the
        conjunction of both sections' verdicts; ``eval_reduction`` is
        the factor by which batching cut Python-level evaluation calls.
    """
    if dimension < 2:
        raise SpecificationError(f"dimension must be >= 2, got {dimension}")
    if directions < 1:
        raise SpecificationError(f"directions must be >= 1, got {directions}")
    logger.info("solver-kernel benchmark: dim=%d, directions=%d, seed=%d",
                dimension, directions, seed)
    bisection = _bench_bisection(dimension, directions, seed)
    gradient = _bench_gradient(dimension, seed)
    payload = {
        "schema": SOLVER_BENCH_SCHEMA,
        "seed": int(seed),
        "dimension": int(dimension),
        "directions": int(directions),
        "identical": bool(bisection["identical"] and gradient["identical"]),
        "bisection": bisection,
        "gradient": gradient,
    }
    obs = get_observability()
    if obs is not None:
        payload["observability"] = {
            "metrics": obs.metrics.snapshot(),
            "spans": len(obs.recorder.spans()),
            "events": len(obs.events.events()),
        }
    return payload
