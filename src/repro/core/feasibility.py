"""The operating-point feasibility test of Section 3.1.

The paper's procedure for using a P-space robustness value: to decide
whether the system can operate at a given set of perturbation values
without violating a constraint,

  (a) convert the ``pi_j`` values into a ``P`` value using the alphas,
  (b) compute ``||P - P_orig||_2``,
  (c) check ``||P - P_orig||_2 < r_mu(phi_i, P)``.

If yes, the system will not violate a constraint at those values.  The
test is **sound** (sufficient) for any feature: the radius ball contains no
boundary point, and since the original point is feasible and the feature is
continuous, the whole ball is feasible.  It is deliberately conservative
(necessary only when the boundary is equidistant in every direction): a
point outside the ball may still be feasible.  :class:`FeasibilityChecker`
reports both the ball test and the ground-truth direct evaluation so the
conservatism can be measured (experiment E4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.fepia import RobustnessAnalysis
from repro.utils.tables import format_table

__all__ = ["FeasibilityVerdict", "FeasibilityChecker"]


@dataclass(frozen=True)
class FeasibilityVerdict:
    """Outcome of the radius-ball feasibility test for one operating point.

    Attributes
    ----------
    within_radius:
        The ball test: ``||P - P_orig|| < rho`` (step (c)).
    distance:
        ``||P - P_orig||`` (step (b)).  With sensitivity weighting this is
        the maximum over the per-feature P-spaces, matching the per-feature
        comparison the paper describes.
    rho:
        The robustness metric the distance is compared against.
    actually_feasible:
        Ground truth: every feature evaluated directly at the operating
        point satisfies its bounds.
    feature_values:
        The direct feature evaluations.
    """

    within_radius: bool
    distance: float
    rho: float
    actually_feasible: bool
    feature_values: dict[str, float]

    @property
    def is_sound(self) -> bool:
        """True unless the ball test claimed safety for an infeasible point.

        Soundness (``within_radius`` implies ``actually_feasible``) is the
        guarantee the paper's procedure provides; a ``False`` here would
        indicate a solver returning an over-large radius.
        """
        return (not self.within_radius) or self.actually_feasible

    @property
    def is_conservative(self) -> bool:
        """The point is feasible but outside the ball (expected slack)."""
        return self.actually_feasible and not self.within_radius


class FeasibilityChecker:
    """Run the paper's (a)-(c) feasibility procedure against ground truth.

    Parameters
    ----------
    analysis:
        A configured :class:`~repro.core.fepia.RobustnessAnalysis`; its
        weighting determines the P-space(s) used in step (a).
    """

    def __init__(self, analysis: RobustnessAnalysis) -> None:
        self.analysis = analysis

    def check(self, values: Mapping[str, Sequence[float]]) -> FeasibilityVerdict:
        """Apply steps (a)-(c) to an operating point and compare with truth.

        Parameters
        ----------
        values:
            Per-parameter operating values; parameters omitted default to
            their originals.
        """
        analysis = self.analysis
        if analysis.weighting.requires_radii:
            # Per-feature P-spaces: the paper compares each feature's
            # distance against that feature's radius; the point is safe when
            # every feature passes.  Summarise with the worst margin.
            distance = 0.0
            within = True
            rho = analysis.rho()
            for spec in analysis.features:
                if not math.isfinite(analysis.radius(spec).radius):
                    continue  # feature cannot be violated at all
                ps = analysis.pspace(spec)
                kept = {p.name for p in ps.params}
                sub = {k: v for k, v in values.items() if k in kept}
                d = ps.distance_from_orig(sub, norm=analysis.norm)
                r = analysis.radius(spec).radius
                distance = max(distance, d)
                within = within and (d < r)
        else:
            ps = analysis.pspace()
            distance = ps.distance_from_orig(values, norm=analysis.norm)
            rho = analysis.rho()
            within = distance < rho
        feature_values = analysis.feature_values(values)
        feasible = all(
            analysis._get_spec(name).feature.is_satisfied(v)
            for name, v in feature_values.items())
        return FeasibilityVerdict(
            within_radius=bool(within),
            distance=float(distance),
            rho=float(rho),
            actually_feasible=bool(feasible),
            feature_values=feature_values,
        )

    def check_many(
        self, points: Sequence[Mapping[str, Sequence[float]]]
    ) -> list[FeasibilityVerdict]:
        """Vector of verdicts for several operating points."""
        return [self.check(p) for p in points]

    @staticmethod
    def summary_table(verdicts: Sequence[FeasibilityVerdict]) -> str:
        """Aggregate a batch of verdicts into a confusion-style table."""
        n = len(verdicts)
        inside_ok = sum(1 for v in verdicts if v.within_radius and v.actually_feasible)
        inside_bad = sum(1 for v in verdicts if v.within_radius and not v.actually_feasible)
        outside_ok = sum(1 for v in verdicts if v.is_conservative)
        outside_bad = sum(1 for v in verdicts
                          if not v.within_radius and not v.actually_feasible)
        rows = [
            ["inside ball", inside_ok, inside_bad],
            ["outside ball", outside_ok, outside_bad],
        ]
        table = format_table(["ball test", "feasible", "infeasible"], rows,
                             title=f"feasibility procedure vs ground truth (n={n})")
        if inside_bad:
            table += "\nWARNING: soundness violated (inside-ball infeasible points)"
        return table
