"""Criticality analysis: *which* perturbations limit the robustness.

The robustness radius collapses the boundary geometry to one scalar, but
its witness point ``P*`` carries direction information: the unit vector
``(P* - P_orig)/r`` is the cheapest way for the environment to break the
feature.  Decomposing its squared components gives each element's — and,
aggregated, each perturbation parameter's — share of the critical
direction, which is exactly the operational question a HiPer-D operator
asks ("is it the radar load or the track-message size that threatens the
deadline?").

For affine features this coincides with the normalised gradient
decomposition (``share_l = k_l^2 / ||k||^2`` in P-space coordinates); for
curved features it reflects the local geometry at the witness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.fepia import RobustnessAnalysis
from repro.exceptions import SpecificationError
from repro.utils.tables import format_table

__all__ = ["ElementShare", "FeatureCriticality", "CriticalityReport",
           "criticality_report"]


@dataclass(frozen=True)
class ElementShare:
    """One flat element's share of a feature's critical direction.

    Attributes
    ----------
    parameter:
        Name of the perturbation parameter the element belongs to.
    index:
        Element index within the parameter vector.
    share:
        Fraction of the squared witness displacement carried by this
        element (shares over a feature sum to 1).
    signed_move:
        The element's signed displacement in P-space at the witness —
        positive means the dangerous drift is an *increase*.
    """

    parameter: str
    index: int
    share: float
    signed_move: float


@dataclass(frozen=True)
class FeatureCriticality:
    """The critical-direction decomposition of one feature.

    Attributes
    ----------
    feature:
        Feature name.
    radius:
        The feature's P-space robustness radius.
    element_shares:
        Per-element decomposition, sorted by descending share.
    parameter_shares:
        Per-parameter aggregation of the element shares.
    """

    feature: str
    radius: float
    element_shares: tuple[ElementShare, ...]
    parameter_shares: dict[str, float]

    def top_elements(self, k: int = 3) -> tuple[ElementShare, ...]:
        """The ``k`` largest-share elements."""
        return self.element_shares[:k]

    @property
    def dominant_parameter(self) -> str:
        """The parameter carrying the largest aggregated share."""
        return max(self.parameter_shares, key=self.parameter_shares.get)


@dataclass(frozen=True)
class CriticalityReport:
    """Criticality decompositions for every finite-radius feature.

    Attributes
    ----------
    rows:
        One :class:`FeatureCriticality` per analysable feature, ordered by
        ascending radius (most fragile first).
    skipped:
        Names of features with infinite radius (no witness to decompose).
    """

    rows: tuple[FeatureCriticality, ...]
    skipped: tuple[str, ...]

    def to_table(self, *, top_k: int = 2) -> str:
        """Render the report: per feature, radius + dominant contributors."""
        table_rows = []
        for row in self.rows:
            tops = ", ".join(
                f"{e.parameter}[{e.index}]={e.share:.0%}"
                for e in row.top_elements(top_k))
            table_rows.append([row.feature, row.radius,
                               row.dominant_parameter, tops])
        out = format_table(
            ["feature", "radius", "dominant parameter",
             f"top-{top_k} elements"],
            table_rows, title="criticality (most fragile feature first)")
        if self.skipped:
            out += "\nskipped (infinite radius): " + ", ".join(self.skipped)
        return out

    def __str__(self) -> str:
        return self.to_table()


def _decompose(analysis: RobustnessAnalysis, spec) -> FeatureCriticality | None:
    result = analysis.radius(spec)
    if not math.isfinite(result.radius) or result.boundary_point is None:
        return None
    ps = analysis.pspace(spec)
    move = np.asarray(result.boundary_point) - ps.p_orig
    total = float(move @ move)
    if total == 0.0:
        # Radius zero: the origin sits on the boundary; attribute the
        # (degenerate) direction via the mapping gradient if available.
        problem_mapping = ps.transform_mapping(spec.mapping) \
            if ps.dimension == analysis.dimension else None
        grad = (problem_mapping.gradient(ps.p_orig)
                if problem_mapping is not None else None)
        if grad is None or not np.any(grad):
            return FeatureCriticality(
                feature=spec.name, radius=result.radius,
                element_shares=(), parameter_shares={})
        move = grad
        total = float(move @ move)
    shares = move ** 2 / total

    elements = []
    parameter_shares: dict[str, float] = {}
    for p in ps.params:
        sl = ps.block_slice(p.name)
        block_shares = shares[sl]
        parameter_shares[p.name] = float(block_shares.sum())
        for i, s in enumerate(block_shares):
            elements.append(ElementShare(
                parameter=p.name, index=i, share=float(s),
                signed_move=float(move[sl][i])))
    elements.sort(key=lambda e: -e.share)
    return FeatureCriticality(
        feature=spec.name, radius=result.radius,
        element_shares=tuple(elements),
        parameter_shares=parameter_shares)


def criticality_report(analysis: RobustnessAnalysis) -> CriticalityReport:
    """Decompose every feature's critical direction.

    Parameters
    ----------
    analysis:
        A configured :class:`~repro.core.fepia.RobustnessAnalysis`.

    Returns
    -------
    CriticalityReport
        Per-feature decompositions sorted most-fragile first; features
        with infinite radius are listed as skipped.
    """
    rows = []
    skipped = []
    for spec in analysis.features:
        decomposition = _decompose(analysis, spec)
        if decomposition is None:
            skipped.append(spec.name)
        else:
            rows.append(decomposition)
    rows.sort(key=lambda r: r.radius)
    if not rows and not skipped:
        raise SpecificationError("analysis has no features")  # unreachable
    return CriticalityReport(rows=tuple(rows), skipped=tuple(skipped))
