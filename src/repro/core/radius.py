"""Robustness radius computation (FePIA step 4, Equations 1 and 2).

The robustness radius of a feature ``phi`` against a perturbation vector is
the minimum distance from the original perturbation values to the boundary
set ``{x : f(x) = beta_min or f(x) = beta_max}``:

    r = min over finite bounds b of  min_{x : f(x)=b} ||x - x_orig|| .

:func:`compute_radius` dispatches on the mapping's structure: affine
features go to the exact hyperplane solver; everything else goes through a
multistart numeric projection seeded by directional bisection.  A bound
whose level set is unreachable contributes ``inf``; if *no* finite bound is
reachable, the radius is infinite (the allocation can never be driven out
of specification by these perturbations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.core.boundary import (
    BoundaryCrossing,
    as_diagonal_quadratic,
    as_linear,
)
from repro.core.features import ToleranceBounds
from repro.core.mappings import FeatureMapping
from repro.core.solvers.analytic import solve_linear_radius
from repro.core.solvers.bisection import solve_bisection_radius
from repro.core.solvers.box_linear import solve_linear_box_radius
from repro.core.solvers.ellipsoid import solve_ellipsoid_radius
from repro.core.solvers.numeric import solve_numeric_radius
from repro.exceptions import (
    BoundaryNotFoundError,
    InfeasibleAllocationError,
    SpecificationError,
)
from repro.utils.validation import as_1d_float_array, check_finite

__all__ = ["RadiusProblem", "RadiusResult", "compute_radius"]

Method = Literal["auto", "analytic", "numeric", "bisection"]


@dataclass(frozen=True)
class RadiusProblem:
    """A fully-specified robustness-radius computation.

    Attributes
    ----------
    mapping:
        The impact function ``f`` of the feature under study, over the flat
        perturbation vector being searched (pi-space or P-space).
    origin:
        The original values of that vector (``pi_orig`` or ``P_orig``).
    bounds:
        The feature's tolerable-variation interval.
    lower, upper:
        Optional box bounds restricting the search to physically reachable
        perturbations (``None`` reproduces the paper's unconstrained
        geometry).
    norm:
        Distance norm ``p`` in {1, 2, inf}; the paper uses the Euclidean
        norm (2).
    """

    mapping: FeatureMapping
    origin: np.ndarray
    bounds: ToleranceBounds
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None
    norm: float = 2

    def __post_init__(self) -> None:
        if not isinstance(self.mapping, FeatureMapping):
            raise SpecificationError(
                f"mapping must be a FeatureMapping, got {type(self.mapping).__name__}")
        if not isinstance(self.bounds, ToleranceBounds):
            raise SpecificationError(
                f"bounds must be a ToleranceBounds, got {type(self.bounds).__name__}")
        origin = check_finite(as_1d_float_array(self.origin, name="origin"),
                              name="origin")
        if origin.size != self.mapping.n_inputs:
            raise SpecificationError(
                f"origin has length {origin.size} but mapping expects "
                f"{self.mapping.n_inputs}")
        object.__setattr__(self, "origin", origin)
        for attr in ("lower", "upper"):
            value = getattr(self, attr)
            if value is None:
                continue
            bound = as_1d_float_array(value, name=attr)
            if bound.size != origin.size:
                raise SpecificationError(
                    f"{attr} has length {bound.size}, expected {origin.size}")
            object.__setattr__(self, attr, bound)
        if self.norm not in (1, 2, math.inf, np.inf, "inf"):
            raise SpecificationError(
                f"unsupported norm {self.norm!r}; use 1, 2 or inf")

    @property
    def original_value(self) -> float:
        """Feature value at the original point, ``f(x_orig)``."""
        return self.mapping.value(self.origin)


@dataclass(frozen=True)
class RadiusResult:
    """Result of a robustness-radius computation.

    Attributes
    ----------
    radius:
        The robustness radius (``inf`` when no tolerance bound is reachable).
    boundary_point:
        The witness boundary point ``pi*``/``P*`` realising the radius,
        or ``None`` for an infinite radius.
    bound_hit:
        Which bound value (``beta_min`` or ``beta_max``) the witness attains.
    method:
        The solver that produced the winning answer
        (``"analytic" | "numeric" | "bisection" | "degenerate"``).
    original_value:
        Feature value at the original point.
    per_bound:
        Mapping from each finite bound value to the distance found for it
        (``inf`` for unreachable bounds), for diagnostic reporting.
    """

    radius: float
    boundary_point: np.ndarray | None
    bound_hit: float | None
    method: str
    original_value: float
    per_bound: dict = field(default_factory=dict)

    @property
    def is_finite(self) -> bool:
        """Whether the radius is finite (some bound is reachable)."""
        return math.isfinite(self.radius)


def _solve_one_bound(problem: RadiusProblem, bound: float, method: Method,
                     seed) -> tuple[BoundaryCrossing | None, str]:
    """Distance to one bound's level set; returns (crossing | None, method)."""
    linear = as_linear(problem.mapping)
    if method in ("auto", "analytic") and linear is not None:
        has_box = problem.lower is not None or problem.upper is not None
        if method == "auto" and has_box and problem.norm == 2:
            # Exact clamped-multiplier projection handles the box directly.
            try:
                return (
                    solve_linear_box_radius(
                        linear, problem.origin, bound,
                        lower=problem.lower, upper=problem.upper),
                    "analytic-box",
                )
            except BoundaryNotFoundError:
                return None, "analytic-box"
        try:
            return (
                solve_linear_radius(
                    linear, problem.origin, bound, norm=problem.norm,
                    lower=problem.lower, upper=problem.upper),
                "analytic",
            )
        except BoundaryNotFoundError:
            if method == "analytic":
                return None, "analytic"
            # Box-constrained affine case in a non-Euclidean norm: fall
            # through to the directional/numeric solvers.
    if method == "auto" and problem.norm == 2 and problem.lower is None \
            and problem.upper is None:
        diag = as_diagonal_quadratic(problem.mapping)
        if diag is not None:
            try:
                return (
                    solve_ellipsoid_radius(diag, problem.origin, bound),
                    "ellipsoid",
                )
            except BoundaryNotFoundError:
                return None, "ellipsoid"
    if method == "analytic":
        raise SpecificationError(
            "method='analytic' requires a structurally affine mapping; "
            f"got {type(problem.mapping).__name__}")
    if method == "bisection":
        try:
            return (
                solve_bisection_radius(
                    problem.mapping, problem.origin, bound, norm=problem.norm,
                    lower=problem.lower, upper=problem.upper, seed=seed),
                "bisection",
            )
        except BoundaryNotFoundError:
            return None, "bisection"
    if problem.norm != 2:
        # The numeric projection minimises the Euclidean distance; other
        # norms are served by the directional solver.
        try:
            return (
                solve_bisection_radius(
                    problem.mapping, problem.origin, bound, norm=problem.norm,
                    lower=problem.lower, upper=problem.upper, seed=seed),
                "bisection",
            )
        except BoundaryNotFoundError:
            return None, "bisection"
    try:
        return (
            solve_numeric_radius(
                problem.mapping, problem.origin, bound,
                lower=problem.lower, upper=problem.upper, seed=seed),
            "numeric",
        )
    except BoundaryNotFoundError:
        return None, "numeric"


def compute_radius(problem: RadiusProblem, *, method: Method = "auto",
                   seed=None) -> RadiusResult:
    """Compute the robustness radius for ``problem``.

    Parameters
    ----------
    problem:
        The radius computation to perform.
    method:
        ``"auto"`` (default) picks the exact solver for affine features and
        the numeric projection otherwise; ``"analytic"``, ``"numeric"`` and
        ``"bisection"`` force a specific solver.
    seed:
        Seed for the stochastic components (multistart, random directions).

    Returns
    -------
    RadiusResult

    Raises
    ------
    InfeasibleAllocationError
        If the feature already violates its tolerance interval at the
        original point — there is no robust region to measure.
    """
    value0 = problem.original_value
    if not problem.bounds.contains(value0):
        raise InfeasibleAllocationError(
            f"feature value {value0:g} violates the tolerance interval "
            f"[{problem.bounds.beta_min:g}, {problem.bounds.beta_max:g}] at "
            "the original operating point; robustness is undefined")
    finite_bounds = problem.bounds.finite_bounds
    # Original point exactly on a bound: the radius is zero by definition.
    for b in finite_bounds:
        if value0 == b:
            return RadiusResult(
                radius=0.0, boundary_point=problem.origin.copy(),
                bound_hit=b, method="degenerate", original_value=value0,
                per_bound={b: 0.0})

    best: BoundaryCrossing | None = None
    best_method = "none"
    per_bound: dict[float, float] = {}
    for b in finite_bounds:
        crossing, used = _solve_one_bound(problem, b, method, seed)
        per_bound[b] = crossing.distance if crossing is not None else math.inf
        if crossing is not None and (best is None or crossing.distance < best.distance):
            best = crossing
            best_method = used
    if best is None:
        return RadiusResult(
            radius=math.inf, boundary_point=None, bound_hit=None,
            method=best_method if best_method != "none" else method,
            original_value=value0, per_bound=per_bound)
    return RadiusResult(
        radius=best.distance, boundary_point=best.point,
        bound_hit=best.bound, method=best_method,
        original_value=value0, per_bound=per_bound)
