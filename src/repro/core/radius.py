"""Robustness radius computation (FePIA step 4, Equations 1 and 2).

The robustness radius of a feature ``phi`` against a perturbation vector is
the minimum distance from the original perturbation values to the boundary
set ``{x : f(x) = beta_min or f(x) = beta_max}``:

    r = min over finite bounds b of  min_{x : f(x)=b} ||x - x_orig|| .

:func:`compute_radius` dispatches on the mapping's structure: affine
features go to the exact hyperplane solver; everything else goes through a
multistart numeric projection seeded by directional bisection.  A bound
whose level set is unreachable contributes ``inf``; if *no* finite bound is
reachable, the radius is infinite (the allocation can never be driven out
of specification by these perturbations).
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.core.boundary import (
    BoundaryCrossing,
    as_diagonal_quadratic,
    as_linear,
)
from repro.core.diagnostics import Quality, SolverAttempt, quality_of_method
from repro.core.features import ToleranceBounds
from repro.core.mappings import FeatureMapping
from repro.core.solvers.analytic import solve_linear_radius
from repro.core.solvers.bisection import solve_bisection_radius
from repro.core.solvers.box_linear import solve_linear_box_radius
from repro.core.solvers.ellipsoid import solve_ellipsoid_radius
from repro.core.solvers.numeric import solve_numeric_radius
from repro.exceptions import (
    BoundaryNotFoundError,
    InfeasibleAllocationError,
    SpecificationError,
)
from repro.observability import emit_event, get_metrics, span
from repro.parallel.cache import resolve_cache
from repro.parallel.executor import Task
from repro.utils.validation import as_1d_float_array, check_finite

__all__ = ["RadiusProblem", "RadiusResult", "compute_radius", "compute_radii"]

logger = logging.getLogger(__name__)

Method = Literal["auto", "analytic", "numeric", "bisection"]


@dataclass(frozen=True)
class RadiusProblem:
    """A fully-specified robustness-radius computation.

    Attributes
    ----------
    mapping:
        The impact function ``f`` of the feature under study, over the flat
        perturbation vector being searched (pi-space or P-space).
    origin:
        The original values of that vector (``pi_orig`` or ``P_orig``).
    bounds:
        The feature's tolerable-variation interval.
    lower, upper:
        Optional box bounds restricting the search to physically reachable
        perturbations (``None`` reproduces the paper's unconstrained
        geometry).
    norm:
        Distance norm ``p`` in {1, 2, inf}; the paper uses the Euclidean
        norm (2).
    """

    mapping: FeatureMapping
    origin: np.ndarray
    bounds: ToleranceBounds
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None
    norm: float = 2

    def __post_init__(self) -> None:
        if not isinstance(self.mapping, FeatureMapping):
            raise SpecificationError(
                f"mapping must be a FeatureMapping, got {type(self.mapping).__name__}")
        if not isinstance(self.bounds, ToleranceBounds):
            raise SpecificationError(
                f"bounds must be a ToleranceBounds, got {type(self.bounds).__name__}")
        origin = check_finite(as_1d_float_array(self.origin, name="origin"),
                              name="origin")
        if origin.size != self.mapping.n_inputs:
            raise SpecificationError(
                f"origin has length {origin.size} but mapping expects "
                f"{self.mapping.n_inputs}")
        object.__setattr__(self, "origin", origin)
        for attr in ("lower", "upper"):
            value = getattr(self, attr)
            if value is None:
                continue
            bound = as_1d_float_array(value, name=attr)
            if bound.size != origin.size:
                raise SpecificationError(
                    f"{attr} has length {bound.size}, expected {origin.size}")
            object.__setattr__(self, attr, bound)
        if self.norm not in (1, 2, math.inf, np.inf, "inf"):
            raise SpecificationError(
                f"unsupported norm {self.norm!r}; use 1, 2 or inf")

    @property
    def original_value(self) -> float:
        """Feature value at the original point, ``f(x_orig)``."""
        return self.mapping.value(self.origin)


@dataclass(frozen=True)
class RadiusResult:
    """Result of a robustness-radius computation.

    Attributes
    ----------
    radius:
        The robustness radius (``inf`` when no tolerance bound is reachable).
    boundary_point:
        The witness boundary point ``pi*``/``P*`` realising the radius,
        or ``None`` for an infinite radius.
    bound_hit:
        Which bound value (``beta_min`` or ``beta_max``) the witness attains.
    method:
        The solver that produced the winning answer
        (``"analytic" | "numeric" | "bisection" | "degenerate"``).
    original_value:
        Feature value at the original point.
    per_bound:
        Mapping from each finite bound value to the distance found for it
        (``inf`` for unreachable bounds), for diagnostic reporting.
    quality:
        How trustworthy the radius is (see
        :class:`~repro.core.diagnostics.Quality`): closed-form answers are
        ``EXACT``, verified numeric projections ``CONVERGED``, degraded
        answers rigorous ``UPPER_BOUND``\\s, and ``FAILED`` results carry a
        NaN radius.
    diagnostics:
        Chronological :class:`~repro.core.diagnostics.SolverAttempt` trail
        of every solver invocation behind this result, including failures
        that used to be swallowed silently.
    """

    radius: float
    boundary_point: np.ndarray | None
    bound_hit: float | None
    method: str
    original_value: float
    per_bound: dict = field(default_factory=dict)
    quality: Quality = Quality.EXACT
    diagnostics: tuple[SolverAttempt, ...] = ()

    @property
    def is_finite(self) -> bool:
        """Whether the radius is finite (some bound is reachable)."""
        return math.isfinite(self.radius)

    @property
    def is_degraded(self) -> bool:
        """Whether the result is weaker than a converged radius."""
        return self.quality in (Quality.UPPER_BOUND, Quality.FAILED)


def _timed_solve(solver: str, bound: float, fn,
                 trail: list[SolverAttempt]) -> BoundaryCrossing | None:
    """Run one solver call, recording its attempt (success or suppressed
    :class:`BoundaryNotFoundError`) in the diagnostics trail."""
    t0 = time.perf_counter()
    try:
        crossing = fn()
    except BoundaryNotFoundError as exc:
        trail.append(SolverAttempt(
            solver=solver, bound=float(bound), attempt=1,
            elapsed=time.perf_counter() - t0, outcome="unreachable",
            detail=str(exc)))
        logger.debug("solver %s found no boundary at %g: %s",
                     solver, bound, exc)
        return None
    trail.append(SolverAttempt(
        solver=solver, bound=float(bound), attempt=1,
        elapsed=time.perf_counter() - t0, outcome="ok",
        detail=f"distance={crossing.distance:.6g}"))
    return crossing


def _solve_one_bound(problem: RadiusProblem, bound: float, method: Method,
                     seed, trail: list[SolverAttempt], warm=None
                     ) -> tuple[BoundaryCrossing | None, str]:
    """Distance to one bound's level set; returns (crossing | None, method).

    Every solver invocation — including the ones whose
    :class:`BoundaryNotFoundError` is absorbed into an infinite per-bound
    distance — is appended to ``trail``.  ``warm`` threads an optional
    :class:`~repro.core.solvers.warm.WarmStart` into the directional
    solvers; the closed-form tiers ignore it (they have nothing to warm).
    """
    linear = as_linear(problem.mapping)
    if method in ("auto", "analytic") and linear is not None:
        has_box = problem.lower is not None or problem.upper is not None
        if method == "auto" and has_box and problem.norm == 2:
            # Exact clamped-multiplier projection handles the box directly.
            logger.debug("bound %g: dispatching to analytic-box solver", bound)
            return (
                _timed_solve(
                    "analytic-box", bound,
                    lambda: solve_linear_box_radius(
                        linear, problem.origin, bound,
                        lower=problem.lower, upper=problem.upper),
                    trail),
                "analytic-box",
            )
        logger.debug("bound %g: dispatching to analytic solver", bound)
        crossing = _timed_solve(
            "analytic", bound,
            lambda: solve_linear_radius(
                linear, problem.origin, bound, norm=problem.norm,
                lower=problem.lower, upper=problem.upper),
            trail)
        if crossing is not None or method == "analytic" \
                or trail[-1].outcome == "unreachable" and not has_box:
            return crossing, "analytic"
        # Box-constrained affine case in a non-Euclidean norm: fall
        # through to the directional/numeric solvers.
    if method == "auto" and problem.norm == 2 and problem.lower is None \
            and problem.upper is None:
        diag = as_diagonal_quadratic(problem.mapping)
        if diag is not None:
            logger.debug("bound %g: dispatching to ellipsoid solver", bound)
            return (
                _timed_solve(
                    "ellipsoid", bound,
                    lambda: solve_ellipsoid_radius(diag, problem.origin,
                                                   bound),
                    trail),
                "ellipsoid",
            )
    if method == "analytic":
        raise SpecificationError(
            "method='analytic' requires a structurally affine mapping; "
            f"got {type(problem.mapping).__name__}")
    if method == "bisection" or problem.norm != 2:
        # Forced directional solver, or a non-Euclidean norm (the numeric
        # projection minimises the Euclidean distance only).
        logger.debug("bound %g: dispatching to bisection solver", bound)
        return (
            _timed_solve(
                "bisection", bound,
                lambda: solve_bisection_radius(
                    problem.mapping, problem.origin, bound, norm=problem.norm,
                    lower=problem.lower, upper=problem.upper, seed=seed,
                    warm=warm),
                trail),
            "bisection",
        )
    logger.debug("bound %g: dispatching to numeric solver", bound)
    return (
        _timed_solve(
            "numeric", bound,
            lambda: solve_numeric_radius(
                problem.mapping, problem.origin, bound,
                lower=problem.lower, upper=problem.upper, seed=seed,
                warm=warm),
            trail),
        "numeric",
    )


def _solve_bound_task(problem: RadiusProblem, bound: float, method: Method,
                      seed) -> tuple[BoundaryCrossing | None, str,
                                     list[SolverAttempt]]:
    """One bound's solve as a self-contained, picklable unit of work."""
    trail: list[SolverAttempt] = []
    with span("radius.bound", bound=float(bound)) as sp:
        crossing, used = _solve_one_bound(problem, bound, method, seed, trail)
        if sp is not None:
            sp.tags["solver"] = used
            sp.tags["found"] = crossing is not None
    return crossing, used, trail


def compute_radius(problem: RadiusProblem, *, method: Method = "auto",
                   seed=None, cache=None, executor=None,
                   warm=None) -> RadiusResult:
    """Compute the robustness radius for ``problem``.

    Parameters
    ----------
    problem:
        The radius computation to perform.
    method:
        ``"auto"`` (default) picks the exact solver for affine features and
        the numeric projection otherwise; ``"analytic"``, ``"numeric"`` and
        ``"bisection"`` force a specific solver.
    seed:
        Seed for the stochastic components (multistart, random directions).
    cache:
        A :class:`~repro.parallel.cache.RadiusCache` to consult before
        solving (and populate after), ``None`` to defer to the installed
        process-wide default cache, or ``False`` to disable caching for
        this call.  Cached answers are bit-identical to fresh solves.
    executor:
        Optional :class:`~repro.parallel.executor.ParallelExecutor`; when
        the interval has two finite bounds and the seed is stateless, the
        per-bound solves fan out in parallel.  Results (including the
        diagnostics trail order) are identical to the serial path.
    warm:
        Optional :class:`~repro.core.solvers.warm.WarmStart` shared by a
        family of solves that differ only in their bounds (a degradation
        curve walking one problem through its operating points).  The
        directional solvers replay memoised ray probes instead of
        re-evaluating the mapping; results are bit-identical to cold
        solves, which is why warm state never enters cache keys — a
        warm-started solve records (and hits) the *same*
        :class:`~repro.parallel.cache.RadiusCache` entry as its cold
        twin.  A warm solve runs its bounds serially (the shared table
        cannot cross process boundaries).

    Returns
    -------
    RadiusResult

    Raises
    ------
    InfeasibleAllocationError
        If the feature already violates its tolerance interval at the
        original point — there is no robust region to measure.
    """
    with span("radius.solve", method=method, dim=problem.origin.size) as sp:
        result = _compute_radius_inner(problem, method=method, seed=seed,
                                       cache=cache, executor=executor,
                                       warm=warm)
        if sp is not None:
            sp.tags["solver"] = result.method
            sp.tags["quality"] = result.quality.name
    return result


def _compute_radius_inner(problem: RadiusProblem, *, method: Method,
                          seed, cache, executor, warm=None) -> RadiusResult:
    cache = resolve_cache(cache)
    cache_key = None
    if cache is not None:
        cache_key = cache.key(problem, method=method, seed=seed)
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
    get_metrics().inc("radius.solves")
    value0 = problem.original_value
    if not problem.bounds.contains(value0):
        raise InfeasibleAllocationError(
            f"feature value {value0:g} violates the tolerance interval "
            f"[{problem.bounds.beta_min:g}, {problem.bounds.beta_max:g}] at "
            "the original operating point; robustness is undefined")
    finite_bounds = problem.bounds.finite_bounds
    # Original point exactly on a bound: the radius is zero by definition.
    for b in finite_bounds:
        if value0 == b:
            return RadiusResult(
                radius=0.0, boundary_point=problem.origin.copy(),
                bound_hit=b, method="degenerate", original_value=value0,
                per_bound={b: 0.0}, quality=Quality.EXACT)

    best: BoundaryCrossing | None = None
    best_method = "none"
    per_bound: dict[float, float] = {}
    trail: list[SolverAttempt] = []
    methods_used: list[str] = []
    fanned_out = None
    if warm is None and executor is not None \
            and getattr(executor, "workers", 1) > 1 \
            and len(finite_bounds) > 1 \
            and not isinstance(seed, np.random.Generator):
        # Independent per-bound solves: each worker re-derives its solver
        # randomness from the same stateless seed, so the merged answer
        # (including trail order, merged in bound order) matches serial.
        # Imported lazily to avoid a cycle (resilience imports this
        # module through the cascade).
        from repro.resilience.supervisor import resolve_task_failures

        bound_tasks = [Task(_solve_bound_task, (problem, b, method, seed))
                       for b in finite_bounds]
        # A supervised executor quarantines permanently-failing tasks
        # into TaskFailure sentinels; the radius needs every bound's real
        # answer, so sentinels are re-run in-process (re-raising genuine
        # failures exactly like the serial loop below would).
        fanned_out = resolve_task_failures(executor.run(bound_tasks),
                                           bound_tasks, executor=executor)
    for i, b in enumerate(finite_bounds):
        if fanned_out is not None:
            crossing, used, sub_trail = fanned_out[i]
            trail.extend(sub_trail)
        else:
            with span("radius.bound", bound=float(b)) as sp:
                crossing, used = _solve_one_bound(problem, b, method, seed,
                                                  trail, warm)
                if sp is not None:
                    sp.tags["solver"] = used
                    sp.tags["found"] = crossing is not None
        methods_used.append(used)
        per_bound[b] = crossing.distance if crossing is not None else math.inf
        if crossing is not None and (best is None or crossing.distance < best.distance):
            best = crossing
            best_method = used
    # The radius is exact only if every bound was resolved by an exact
    # solver; a single numeric/bisection answer degrades the whole claim.
    qualities = [quality_of_method(m) for m in methods_used]
    quality = max(qualities, key=list(Quality).index, default=Quality.EXACT)
    if best is None:
        result = RadiusResult(
            radius=math.inf, boundary_point=None, bound_hit=None,
            method=best_method if best_method != "none" else method,
            original_value=value0, per_bound=per_bound,
            quality=quality, diagnostics=tuple(trail))
    else:
        result = RadiusResult(
            radius=best.distance, boundary_point=best.point,
            bound_hit=best.bound, method=best_method,
            original_value=value0, per_bound=per_bound,
            quality=quality, diagnostics=tuple(trail))
    get_metrics().inc(f"radius.method.{result.method}")
    if cache is not None:
        cache.put(cache_key, result)
    return result


def _solve_problems_task(problems: list[RadiusProblem], method: Method,
                         seed) -> list[RadiusResult]:
    """Picklable worker body solving one structural group of problems.

    One task per *group* (instead of per problem) amortises the per-task
    pickling of the shared mapping/analysis objects the group's problems
    reference.  Workers consult their own default cache, exactly like a
    single-problem dispatch would.  Kept as the scalar reference body;
    the dispatcher sends shards through the tensorised
    :func:`~repro.core.solvers.tensor._solve_group_task` instead.
    """
    return [compute_radius(p, method=method, seed=seed) for p in problems]


def _worker_shards(group_indices: list[list[int]],
                   workers: int) -> list[list[int]]:
    """Split structural groups into executor shards.

    Every group is at least one shard; when there are fewer groups than
    workers, the groups are cut into contiguous slices so idle workers
    get pieces of the same tensor instead of sitting out the batch (the
    old dispatcher fell back to a serial loop whenever the batch was one
    homogeneous group).  Slicing is deterministic and order-preserving;
    shard boundaries never change results (element ``i`` is bit-identical
    to ``compute_radius(problems[i])`` regardless of grouping).
    """
    shards: list[list[int]] = []
    per_group = max(1, workers // max(1, len(group_indices)))
    for idxs in group_indices:
        cuts = min(per_group, len(idxs))
        size = -(-len(idxs) // cuts)  # ceil division
        for start in range(0, len(idxs), size):
            shards.append(idxs[start:start + size])
    return shards


def _solver_structure(problem: RadiusProblem, method: Method) -> tuple:
    """Fingerprint of the solver path a problem will take.

    Problems sharing this key exercise the same solver tier over the
    same dimensionality, so batching them into one worker task keeps the
    per-task workloads comparable (no group dominated by one slow
    numeric solve sitting behind many instant analytic ones).
    """
    if method in ("auto", "analytic") and as_linear(problem.mapping) is not None:
        tier = "analytic"
    elif method == "auto" and problem.norm == 2 and problem.lower is None \
            and problem.upper is None \
            and as_diagonal_quadratic(problem.mapping) is not None:
        tier = "ellipsoid"
    elif method == "bisection" or problem.norm != 2:
        tier = "bisection"
    else:
        tier = "numeric"
    return (tier, problem.origin.size, len(problem.bounds.finite_bounds))


def compute_radii(problems: Sequence[RadiusProblem], *,
                  method: Method = "auto", seed=None, cache=None,
                  executor=None, service=None) -> list[RadiusResult]:
    """Batched frontend over :func:`compute_radius`, in problem order.

    The whole batch is fingerprinted against the cache first; the misses
    are grouped by :func:`_solver_structure` and each group is dispatched
    as a *single* executor task (amortising the pickling of shared
    mappings), falling back to an in-process loop without an executor.
    Serial, batched, and fanned-out paths return identical
    :class:`RadiusResult`\\s — element ``i`` is bit-identical to
    ``compute_radius(problems[i], ...)``.

    Parameters
    ----------
    problems:
        The radius computations to perform.
    method, seed:
        Forwarded to every solve, as in :func:`compute_radius`.
    cache:
        Tri-state cache selection (``None`` default cache / ``False``
        off / a :class:`~repro.parallel.cache.RadiusCache`).  Hits are
        served without dispatching; fresh solves are stored back.
    executor:
        Optional :class:`~repro.parallel.executor.ParallelExecutor`;
        groups fan out when it has workers and the seed is stateless.
    service:
        Optional running :class:`~repro.service.RadiusService`; the
        batch is submitted there instead of being solved in-process
        (``cache`` and ``executor`` are then ignored — the service owns
        its own).  Results stay bit-identical to the in-process path.

        **Cache-bypass contract**: on the service path the ``cache``
        argument (and any installed process-wide default cache) is
        *neither consulted nor populated* — the service's worker pool
        owns the caching story, and its cross-process cache entries do
        not flow back into the caller's local :class:`RadiusCache`.  A
        later in-process call with the same problems therefore starts
        cold.  The bypass is observable: a ``cache.bypass`` event (with
        the batch size) and a ``radius.cache_bypass`` metric are emitted
        whenever a cache *would* have been consulted but the batch went
        to the service instead.
    """
    if service is not None:
        if resolve_cache(cache) is not None:
            emit_event("cache.bypass", reason="service",
                       problems=len(problems))
            get_metrics().inc("radius.cache_bypass")
        return service.compute(problems, method=method, seed=seed)
    problems = list(problems)
    cache = resolve_cache(cache)
    with span("radius.batch", problems=len(problems)) as sp:
        keys: list[str | None] = [None] * len(problems)
        results: list[RadiusResult | None] = [None] * len(problems)
        if cache is not None:
            for i, problem in enumerate(problems):
                keys[i] = cache.key(problem, method=method, seed=seed)
                results[i] = cache.get(keys[i])
        pending = [i for i, r in enumerate(results) if r is None]
        groups: dict[tuple, list[int]] = {}
        for i in pending:
            groups.setdefault(_solver_structure(problems[i], method),
                              []).append(i)
        if sp is not None:
            sp.tags["hits"] = len(problems) - len(pending)
            sp.tags["groups"] = len(groups)
        get_metrics().inc("radius.batches")
        # Imported lazily: the tensor kernel imports this module for
        # result assembly, so the edge must point this way at call time.
        from repro.core.solvers.tensor import _solve_group_task, solve_group

        if executor is not None and getattr(executor, "workers", 1) > 1 \
                and len(pending) > 1 \
                and not isinstance(seed, np.random.Generator):
            # Imported lazily to avoid a cycle (resilience imports this
            # module through the cascade).
            from repro.resilience.supervisor import resolve_task_failures

            shards = _worker_shards(list(groups.values()),
                                    executor.workers)
            if sp is not None:
                sp.tags["shards"] = len(shards)
            tasks = [Task(_solve_group_task,
                          ([problems[i] for i in idxs], method, seed))
                     for idxs in shards]
            # A supervised executor quarantines permanently-failing tasks
            # into TaskFailure sentinels; the batch needs real results
            # (and the cache must never store a sentinel), so survivors
            # re-run in-process, re-raising genuine failures serially.
            solved = resolve_task_failures(executor.run(tasks), tasks,
                                           executor=executor)
            for idxs, shard_results in zip(shards, solved):
                for i, result in zip(idxs, shard_results):
                    results[i] = result
        else:
            # The cache pass above already ran; solving with the cache
            # re-enabled would double-count its misses.
            solved = solve_group([problems[i] for i in pending],
                                 method=method, seed=seed, cache=False)
            for i, result in zip(pending, solved):
                results[i] = result
        if cache is not None:
            for i in pending:
                cache.put(keys[i], results[i])
    return results
