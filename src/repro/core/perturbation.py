"""Perturbation parameters ``pi_j`` (FePIA step 2).

A *perturbation parameter* is a vector of like-kind uncertain quantities —
all task execution times, or all message lengths, or all sensor loads.  The
defining property is that every element of one parameter shares a **unit**
(the paper: "representation of the perturbation parameters as separate
elements of Pi would be based on their nature or kind").  Parameters of
different kinds may only be combined through a
:class:`~repro.core.weighting.WeightingScheme`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.exceptions import DimensionMismatchError, SpecificationError
from repro.utils.validation import as_1d_float_array, check_finite

__all__ = ["PerturbationParameter"]


@dataclass(frozen=True)
class PerturbationParameter:
    """A named vector of like-kind uncertain quantities.

    Attributes
    ----------
    name:
        Identifier, unique within an analysis (e.g. ``"exec_times"``).
    original:
        The assumed/estimated values ``pi_j^orig`` the allocation was made
        under, as a 1-D float array.
    unit:
        Physical unit shared by every element (e.g. ``"s"``, ``"bytes"``,
        ``"objects/set"``).  Used to detect illegal unit-mixing.
    lower, upper:
        Optional elementwise box bounds on the values the parameter can
        physically take (e.g. execution times are non-negative).  Radius
        solvers restrict the boundary search to this box; ``None`` means
        unbounded on that side.
    description:
        Free text for reports.
    """

    name: str
    original: np.ndarray
    unit: str = ""
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("perturbation parameter name must be non-empty")
        orig = check_finite(as_1d_float_array(self.original, name="original"),
                            name="original")
        object.__setattr__(self, "original", orig)
        for attr in ("lower", "upper"):
            value = getattr(self, attr)
            if value is None:
                continue
            if np.isscalar(value):
                value = np.full(orig.shape, float(value))
            bound = as_1d_float_array(value, name=attr)
            if bound.shape != orig.shape:
                raise DimensionMismatchError(
                    f"{attr} bound of parameter {self.name!r} has length "
                    f"{bound.size}, expected {orig.size}")
            object.__setattr__(self, attr, bound)
        if self.lower is not None and np.any(orig < self.lower):
            raise SpecificationError(
                f"original values of {self.name!r} violate the lower bound")
        if self.upper is not None and np.any(orig > self.upper):
            raise SpecificationError(
                f"original values of {self.name!r} violate the upper bound")
        if self.lower is not None and self.upper is not None and np.any(
                self.lower > self.upper):
            raise SpecificationError(
                f"lower bound of {self.name!r} exceeds its upper bound")

    def __len__(self) -> int:
        return int(self.original.size)

    @property
    def dimension(self) -> int:
        """Number of elements ``n_pi_j`` in this parameter vector."""
        return int(self.original.size)

    def clip_to_bounds(self, values: np.ndarray) -> np.ndarray:
        """Clip ``values`` into the parameter's physical box bounds."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape[-1] != self.dimension:
            raise DimensionMismatchError(
                f"values have trailing dimension {values.shape[-1]}, expected "
                f"{self.dimension}")
        lo = -np.inf if self.lower is None else self.lower
        hi = np.inf if self.upper is None else self.upper
        return np.clip(values, lo, hi)

    def within_bounds(self, values: np.ndarray, *, atol: float = 0.0) -> bool:
        """Whether ``values`` respects the physical box bounds (elementwise)."""
        values = np.asarray(values, dtype=np.float64)
        ok = True
        if self.lower is not None:
            ok = ok and bool(np.all(values >= self.lower - atol))
        if self.upper is not None:
            ok = ok and bool(np.all(values <= self.upper + atol))
        return ok

    @classmethod
    def nonnegative(cls, name: str, original: Iterable[float], *, unit: str = "",
                    description: str = "") -> "PerturbationParameter":
        """Convenience constructor for physically non-negative quantities.

        Execution times, message lengths and sensor loads can grow without
        (modelled) limit but cannot be negative; this sets ``lower = 0``.
        """
        orig = as_1d_float_array(original, name="original")
        return cls(name=name, original=orig, unit=unit,
                   lower=np.zeros(orig.shape), upper=None,
                   description=description)
