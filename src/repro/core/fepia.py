"""The FePIA procedure, orchestrated end-to-end.

:class:`RobustnessAnalysis` binds together the four FePIA steps:

1. performance **Fe**atures ``phi_i`` with tolerance bounds
   (:class:`~repro.core.features.PerformanceFeature`);
2. **P**erturbation parameters ``pi_j``
   (:class:`~repro.core.perturbation.PerturbationParameter`);
3. **I**mpact mappings ``f_i`` over the flat concatenation of all
   parameters (:class:`~repro.core.mappings.FeatureMapping`);
4. **A**nalysis: robustness radii — per single parameter
   (``r_mu(phi_i, pi_j)``, Eq. 1, others frozen at their originals) and in
   the weighted P-space (``r_mu(phi_i, P)``, Eq. 2) — and the system metric
   ``rho_mu(Phi, P) = min_i r_mu(phi_i, P)``.

For sensitivity weighting the alphas depend on the feature under analysis
(``alpha_j = 1/r_mu(phi_i, pi_j)``), so P-space is constructed per feature;
for the identity/normalized/custom schemes it is shared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.core.features import PerformanceFeature
from repro.core.mappings import FeatureMapping, RestrictedMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.pspace import ConcatenatedPerturbation
from repro.core.radius import (
    RadiusProblem,
    RadiusResult,
    compute_radii,
    compute_radius,
)
from repro.core.weighting import NormalizedWeighting, WeightingScheme
from repro.exceptions import SpecificationError
from repro.observability import span
from repro.parallel.cache import resolve_cache
from repro.parallel.executor import ParallelExecutor

__all__ = ["FeatureSpec", "RobustnessAnalysis"]


@dataclass(frozen=True)
class FeatureSpec:
    """A performance feature paired with its impact mapping ``f_i``.

    The mapping is over the *flat pi-space*: the concatenation of every
    perturbation parameter of the analysis, in declaration order.
    """

    feature: PerformanceFeature
    mapping: FeatureMapping

    def __post_init__(self) -> None:
        if not isinstance(self.feature, PerformanceFeature):
            raise SpecificationError("feature must be a PerformanceFeature")
        if not isinstance(self.mapping, FeatureMapping):
            raise SpecificationError("mapping must be a FeatureMapping")

    @property
    def name(self) -> str:
        """The underlying feature's name."""
        return self.feature.name


class RobustnessAnalysis:
    """End-to-end FePIA robustness analysis of one resource allocation.

    Parameters
    ----------
    features:
        The feature specifications (``Phi`` with impact functions).
    params:
        Perturbation parameters (``Pi``) in concatenation order; every
        mapping must accept the flat concatenation of these.
    weighting:
        Scheme converting unlike parameters into the dimensionless P-space;
        defaults to the paper's proposal, :class:`NormalizedWeighting`.
    respect_physical_bounds:
        When ``True``, boundary searches are restricted to each parameter's
        physical box (e.g. non-negative execution times).  The paper's
        derivations are unconstrained, so the default is ``False``.
    method:
        Radius solver selection passed to
        :func:`~repro.core.radius.compute_radius`.
    norm:
        Distance norm for radii (the paper uses 2).
    seed:
        Seed for stochastic solver components.
    solver_timeout:
        When set, radii are computed through a fault-tolerant
        :class:`~repro.resilience.cascade.SolverCascade` with this
        per-solver wall-clock budget (seconds) instead of the plain
        dispatcher: solver failures degrade to rigorous upper bounds
        (tagged on each :class:`~repro.core.radius.RadiusResult`) rather
        than raising.
    cascade:
        An explicit pre-configured
        :class:`~repro.resilience.cascade.SolverCascade` to route every
        radius computation through; overrides ``solver_timeout``.
    workers:
        When ``> 1``, independent radius solves (the per-parameter radii
        behind sensitivity weighting and the per-feature P-space radii
        behind :meth:`rho`) fan out over a process pool.  Results are
        bit-identical to ``workers=1`` for any stateless ``seed``; a
        stateful :class:`numpy.random.Generator` seed forces the serial
        path to preserve its stream order.
    executor:
        An explicit :class:`~repro.parallel.executor.ParallelExecutor`
        to reuse (overrides ``workers``); the caller owns its lifetime.
    service:
        A running :class:`~repro.service.RadiusService` to route every
        batched radius solve through (overrides ``executor`` and
        ``workers`` for those solves; the caller owns its lifetime).
        Results stay bit-identical to the in-process path.
    radius_cache:
        A :class:`~repro.parallel.cache.RadiusCache` consulted before
        every radius solve, ``None`` to defer to the installed default
        cache, or ``False`` to disable caching for this analysis.
    """

    def __init__(
        self,
        features: Sequence[FeatureSpec],
        params: Sequence[PerturbationParameter],
        *,
        weighting: WeightingScheme | None = None,
        respect_physical_bounds: bool = False,
        method: str = "auto",
        norm: float = 2,
        seed=None,
        solver_timeout: float | None = None,
        cascade=None,
        workers: int = 1,
        executor: ParallelExecutor | None = None,
        service=None,
        radius_cache=None,
    ) -> None:
        self.features = list(features)
        self.params = list(params)
        if not self.features:
            raise SpecificationError("need at least one feature")
        if not self.params:
            raise SpecificationError("need at least one perturbation parameter")
        names = [s.name for s in self.features]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate feature names in {names}")
        pnames = [p.name for p in self.params]
        if len(set(pnames)) != len(pnames):
            raise SpecificationError(f"duplicate parameter names in {pnames}")
        self.weighting = weighting if weighting is not None else NormalizedWeighting()
        self.respect_physical_bounds = bool(respect_physical_bounds)
        self.method = method
        self.norm = norm
        self.seed = seed
        self.solver_timeout = solver_timeout
        if cascade is None and solver_timeout is not None:
            # Imported lazily: repro.resilience imports repro.core.radius.
            from repro.resilience.cascade import CascadeConfig, SolverCascade
            cascade = SolverCascade(
                CascadeConfig(solver_timeout=solver_timeout), seed=seed)
        self.cascade = cascade
        if executor is None and workers > 1:
            executor = ParallelExecutor(workers)
        self.executor = executor
        self.service = service
        self.radius_cache = radius_cache

        self._dim = sum(p.dimension for p in self.params)
        for spec in self.features:
            if spec.mapping.n_inputs != self._dim:
                raise SpecificationError(
                    f"mapping of feature {spec.name!r} expects "
                    f"{spec.mapping.n_inputs} inputs but the flat "
                    f"concatenation has {self._dim}")
        self._slices: dict[str, slice] = {}
        offset = 0
        for p in self.params:
            self._slices[p.name] = slice(offset, offset + p.dimension)
            offset += p.dimension
        self.pi_orig = np.concatenate([p.original for p in self.params])
        self._per_param_cache: dict[tuple[str, str], RadiusResult] = {}
        self._pspace_cache: dict[str, ConcatenatedPerturbation] = {}
        self._radius_cache: dict[str, RadiusResult] = {}

    def with_feature_bounds(
        self, bounds: Mapping[str, "ToleranceBounds"]
    ) -> "RobustnessAnalysis":
        """A sibling analysis with some features' tolerance bounds replaced.

        Everything else — parameters, weighting, solver configuration,
        norm, seed, cascade, and the radius cache — is shared with this
        analysis; the executor and service are *not* (the clone solves
        serially unless the caller wires its own).  This is the operating-point move of a
        degradation curve: walking the requirement ``beta`` only moves
        the boundary level sets, so sibling analyses share every mapping
        and origin and their solves can warm-start each other (see
        :func:`repro.analysis.degradation.degradation_curve`).
        """
        unknown = set(bounds) - {s.name for s in self.features}
        if unknown:
            raise SpecificationError(
                f"unknown feature(s) {sorted(unknown)}; have "
                f"{[s.name for s in self.features]}")
        specs = [
            replace(spec, feature=replace(spec.feature,
                                          bounds=bounds[spec.name]))
            if spec.name in bounds else spec
            for spec in self.features
        ]
        return RobustnessAnalysis(
            specs, self.params,
            weighting=self.weighting,
            respect_physical_bounds=self.respect_physical_bounds,
            method=self.method, norm=self.norm, seed=self.seed,
            cascade=self.cascade,
            radius_cache=self.radius_cache,
        )

    def _solve(self, problem: RadiusProblem) -> RadiusResult:
        """Route a radius computation through the configured solver path."""
        cache = resolve_cache(self.radius_cache)
        key = None
        if cache is not None:
            key = cache.key(problem, method=self.method, seed=self.seed)
            cached = cache.get(key)
            if cached is not None:
                return cached
        if self.cascade is not None:
            result = self.cascade.compute(problem, method=self.method)
        else:
            result = compute_radius(problem, method=self.method,
                                    seed=self.seed, cache=False)
        if cache is not None:
            cache.put(key, result)
        return result

    def _can_batch(self) -> bool:
        """Whether independent solves may go through the batched frontend.

        The cascade path stays serial (its timeout threads and retry
        state are not worth shipping across processes); everything else
        routes through :func:`~repro.core.radius.compute_radii`, which
        itself decides whether to fan groups out (executor present,
        stateless seed) or solve them in-process.
        """
        return self.cascade is None

    def _fan_out(self, problems: Sequence[RadiusProblem]
                 ) -> list[RadiusResult]:
        """Solve independent problems through the batched radius frontend.

        The whole batch is fingerprinted against the cache first (worker
        processes keep their own caches), the misses are grouped by
        solver structure, and each group ships as a single task — so
        sweeps revisiting operating points skip the dispatch entirely
        and fresh solves amortise the pickling of the shared mapping.
        With a :class:`~repro.service.RadiusService` wired, the batch is
        submitted there instead (same results, persistent pool).
        """
        return compute_radii(problems, method=self.method, seed=self.seed,
                             cache=self.radius_cache, executor=self.executor,
                             service=self.service)

    # ------------------------------------------------------------------
    # flat-space helpers
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Total dimension of the flat perturbation space."""
        return self._dim

    def _flat_bounds(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        if not self.respect_physical_bounds:
            return None, None
        lo = np.full(self._dim, -np.inf)
        hi = np.full(self._dim, np.inf)
        any_lo = any_hi = False
        for p in self.params:
            sl = self._slices[p.name]
            if p.lower is not None:
                lo[sl] = p.lower
                any_lo = True
            if p.upper is not None:
                hi[sl] = p.upper
                any_hi = True
        return (lo if any_lo else None), (hi if any_hi else None)

    def _get_spec(self, feature: "FeatureSpec | str") -> FeatureSpec:
        if isinstance(feature, FeatureSpec):
            return feature
        for spec in self.features:
            if spec.name == feature:
                return spec
        raise SpecificationError(
            f"unknown feature {feature!r}; have {[s.name for s in self.features]}")

    def _get_param(self, param: "PerturbationParameter | str") -> PerturbationParameter:
        if isinstance(param, PerturbationParameter):
            return param
        for p in self.params:
            if p.name == param:
                return p
        raise SpecificationError(
            f"unknown parameter {param!r}; have {[p.name for p in self.params]}")

    # ------------------------------------------------------------------
    # Eq. 1 — single-parameter radii r_mu(phi_i, pi_j)
    # ------------------------------------------------------------------
    def single_parameter_radius(
        self, feature: "FeatureSpec | str", param: "PerturbationParameter | str"
    ) -> RadiusResult:
        """Radius of one feature against one parameter, others frozen.

        Implements Equation 1: the minimum distance (in the parameter's own
        units) from ``pi_j^orig`` to the feature's boundary, with every
        other parameter held at its original value — the paper's Step 1 for
        sensitivity weighting.
        """
        spec = self._get_spec(feature)
        p = self._get_param(param)
        key = (spec.name, p.name)
        if key not in self._per_param_cache:
            self._per_param_cache[key] = self._solve(
                self._single_parameter_problem(spec, p))
        return self._per_param_cache[key]

    def _single_parameter_problem(
        self, spec: FeatureSpec, p: PerturbationParameter
    ) -> RadiusProblem:
        """The Eq. 1 problem: one parameter free, the others frozen."""
        sl = self._slices[p.name]
        idx = np.arange(sl.start, sl.stop)
        restricted = RestrictedMapping(spec.mapping, idx, self.pi_orig)
        lo, hi = self._flat_bounds()
        return RadiusProblem(
            mapping=restricted,
            origin=p.original,
            bounds=spec.feature.bounds,
            lower=None if lo is None else lo[sl],
            upper=None if hi is None else hi[sl],
            norm=self.norm,
        )

    def per_parameter_radii(self, feature: "FeatureSpec | str") -> dict[str, float]:
        """All single-parameter radii of a feature, keyed by parameter name."""
        spec = self._get_spec(feature)
        pending = [p for p in self.params
                   if (spec.name, p.name) not in self._per_param_cache]
        with span("analysis.per_parameter_radii", feature=spec.name,
                  pending=len(pending)):
            if len(pending) > 1 and self._can_batch():
                problems = [self._single_parameter_problem(spec, p)
                            for p in pending]
                for p, result in zip(pending, self._fan_out(problems)):
                    self._per_param_cache[(spec.name, p.name)] = result
            return {p.name: self.single_parameter_radius(spec, p).radius
                    for p in self.params}

    # ------------------------------------------------------------------
    # Section 3 — P-space and Eq. 2 radii
    # ------------------------------------------------------------------
    def _effective_params(
        self, spec: FeatureSpec
    ) -> tuple[list[PerturbationParameter], "dict[str, float] | None"]:
        """The parameters that enter a feature's P-space, plus radii.

        For radius-dependent weightings (sensitivity), parameters with an
        *infinite* single-parameter radius are excluded: the feature cannot
        be driven out of specification along them alone, ``alpha = 1/inf``
        is undefined, and — for the affine/monotone features this library
        targets — an infinite restricted radius means the boundary set is a
        cylinder along those coordinates, so the minimum distance (hence
        the radius) is unchanged by dropping them.
        """
        if not self.weighting.requires_radii:
            return self.params, None
        radii = self.per_parameter_radii(spec)
        kept = [p for p in self.params if math.isfinite(radii[p.name])]
        if not kept:
            return [], None
        return kept, {p.name: radii[p.name] for p in kept}

    def pspace(self, feature: "FeatureSpec | str | None" = None
               ) -> ConcatenatedPerturbation:
        """The weighted concatenation P for a feature.

        For radius-dependent weightings (sensitivity) the alphas are
        feature-specific and ``feature`` must identify one; for the other
        schemes the same P-space is shared and ``feature`` may be omitted.
        """
        if self.weighting.requires_radii:
            if feature is None:
                raise SpecificationError(
                    f"{type(self.weighting).__name__} builds a per-feature "
                    "P-space; pass the feature")
            spec = self._get_spec(feature)
            key = spec.name
            params, radii = self._effective_params(spec)
            if not params:
                raise SpecificationError(
                    f"feature {spec.name!r} is insensitive to every "
                    "perturbation parameter; its P-space is empty and its "
                    "radius is infinite")
        else:
            key = "__shared__"
            params, radii = self.params, None
        if key not in self._pspace_cache:
            self._pspace_cache[key] = ConcatenatedPerturbation.from_weighting(
                params, self.weighting, radii)
        return self._pspace_cache[key]

    def radius(self, feature: "FeatureSpec | str") -> RadiusResult:
        """The P-space robustness radius ``r_mu(phi_i, P)`` (Equation 2)."""
        spec = self._get_spec(feature)
        if spec.name not in self._radius_cache:
            self._radius_cache[spec.name] = self._compute_pspace_radius(spec)
        return self._radius_cache[spec.name]

    def radii(self) -> dict[str, RadiusResult]:
        """Every feature's P-space radius, keyed by feature name.

        With a parallel executor configured, the independent per-feature
        solves fan out over the process pool (after the per-parameter
        radii any radius-dependent weighting needs are in place); the
        results are identical to calling :meth:`radius` feature by
        feature.
        """
        pending = [s for s in self.features
                   if s.name not in self._radius_cache]
        with span("analysis.radii", pending=len(pending)):
            if len(pending) > 1 and self._can_batch():
                solvable: list[FeatureSpec] = []
                problems: list[RadiusProblem] = []
                for spec in pending:
                    if self.weighting.requires_radii \
                            and not self._effective_params(spec)[0]:
                        self._radius_cache[spec.name] = \
                            self._insensitive_result(spec)
                        continue
                    solvable.append(spec)
                    problems.append(self.pspace_problem(spec))
                for spec, result in zip(solvable, self._fan_out(problems)):
                    self._radius_cache[spec.name] = result
            return {spec.name: self.radius(spec) for spec in self.features}

    def pspace_problem(self, feature: "FeatureSpec | str") -> RadiusProblem:
        """The exact P-space :class:`RadiusProblem` behind :meth:`radius`.

        Exposed so external validators (the Monte-Carlo harness) examine
        precisely the geometry the solver solved — including, under
        sensitivity weighting, the restriction to the parameters the
        feature is sensitive to.

        Raises
        ------
        SpecificationError
            If the feature is insensitive to every parameter (its P-space
            is empty; :meth:`radius` reports ``inf`` for it directly).
        """
        spec = self._get_spec(feature)
        if self.weighting.requires_radii:
            params, _ = self._effective_params(spec)
            if not params:
                raise SpecificationError(
                    f"feature {spec.name!r} is insensitive to every "
                    "perturbation parameter; there is no P-space problem")
            if len(params) < len(self.params):
                # Restrict the mapping to the kept parameters' coordinates
                # (the dropped ones are frozen at their originals, which is
                # exact because the feature does not depend on them).
                idx = np.concatenate([
                    np.arange(self._slices[p.name].start,
                              self._slices[p.name].stop)
                    for p in params])
                mapping = RestrictedMapping(spec.mapping, idx, self.pi_orig)
            else:
                mapping = spec.mapping
        else:
            mapping = spec.mapping
        ps = self.pspace(spec)
        mapping_p = ps.transform_mapping(mapping)
        lo = ps.p_lower() if self.respect_physical_bounds else None
        hi = ps.p_upper() if self.respect_physical_bounds else None
        return RadiusProblem(
            mapping=mapping_p,
            origin=ps.p_orig,
            bounds=spec.feature.bounds,
            lower=lo,
            upper=hi,
            norm=self.norm,
        )

    def _insensitive_result(self, spec: FeatureSpec) -> RadiusResult:
        """The degenerate infinite radius of an all-insensitive feature."""
        return RadiusResult(
            radius=math.inf, boundary_point=None, bound_hit=None,
            method="degenerate",
            original_value=spec.mapping.value(self.pi_orig),
            per_bound={})

    def _compute_pspace_radius(self, spec: FeatureSpec) -> RadiusResult:
        with span("analysis.radius", feature=spec.name):
            if self.weighting.requires_radii:
                params, _ = self._effective_params(spec)
                if not params:
                    # Insensitive to everything: no perturbation of any
                    # kind can violate the feature.
                    return self._insensitive_result(spec)
            return self._solve(self.pspace_problem(spec))

    def rho(self) -> float:
        """The robustness metric ``rho_mu(Phi, P) = min_i r_mu(phi_i, P)``."""
        return min(result.radius for result in self.radii().values())

    def critical_feature(self) -> FeatureSpec:
        """The feature whose radius attains the minimum (ties: first)."""
        self.radii()
        best = None
        best_r = math.inf
        for spec in self.features:
            r = self.radius(spec).radius
            if r < best_r:
                best, best_r = spec, r
        assert best is not None  # features is non-empty by construction
        return best

    # ------------------------------------------------------------------
    # direct evaluation
    # ------------------------------------------------------------------
    def feature_values(
        self, values: Mapping[str, Sequence[float]] | np.ndarray | None = None
    ) -> dict[str, float]:
        """Evaluate every feature at an operating point (default: original).

        ``values`` may be a per-parameter mapping (missing parameters stay
        at their originals) or a flat pi-space vector.
        """
        if values is None:
            flat = self.pi_orig
        elif isinstance(values, np.ndarray):
            flat = np.asarray(values, dtype=np.float64)
            if flat.size != self._dim:
                raise SpecificationError(
                    f"flat vector has length {flat.size}, expected {self._dim}")
        else:
            flat = self.flatten_values(values)
        return {spec.name: spec.mapping.value(flat) for spec in self.features}

    def flatten_values(
        self, values: Mapping[str, Sequence[float]]
    ) -> np.ndarray:
        """Assemble a flat pi-space vector from per-parameter values.

        Missing parameters default to their originals.  Unlike a P-space's
        flattening, this always covers *every* declared parameter — it does
        not depend on the weighting scheme.
        """
        unknown = set(values) - set(self._slices)
        if unknown:
            raise SpecificationError(
                f"unknown perturbation parameter(s) {sorted(unknown)}")
        flat = self.pi_orig.copy()
        for name, vals in values.items():
            block = np.asarray(vals, dtype=np.float64).ravel()
            sl = self._slices[name]
            if block.size != sl.stop - sl.start:
                raise SpecificationError(
                    f"values for {name!r} have length {block.size}, expected "
                    f"{sl.stop - sl.start}")
            flat[sl] = block
        return flat

    def all_satisfied(
        self, values: Mapping[str, Sequence[float]] | np.ndarray | None = None
    ) -> bool:
        """Whether every feature meets its bounds at an operating point."""
        vals = self.feature_values(values)
        return all(self._get_spec(name).feature.is_satisfied(v)
                   for name, v in vals.items())
