"""Impact functions ``f_ij`` mapping perturbation values to feature values
(FePIA step 3).

A :class:`FeatureMapping` is a scalar-valued function of a flat perturbation
vector ``x`` (the concatenation of one or more perturbation parameters in a
declared order) together with optional analytic gradient information.  The
radius solvers dispatch on the mapping's structure:

* :class:`LinearMapping` — ``f(x) = k . x + c``; the boundary set is a
  hyperplane and the radius has the closed form of the paper's Equation 4.
* :class:`QuadraticMapping` — ``f(x) = x' Q x + k . x + c``; solved
  numerically (with exact gradients) or, in special diagonal cases,
  analytically.
* :class:`ProductMapping` — ``f(x) = c * prod_i x_i^{p_i}``; models
  communication times of the form ``(message size) / (bandwidth)`` and other
  ratio/monomial costs.
* :class:`CallableMapping` — escape hatch wrapping any Python callable.
* :class:`MaxMapping` — ``f(x) = max_i f_i(x)``; models makespan as the
  maximum machine finish time.
* :class:`RestrictedMapping` — a view of a mapping with all but a chosen
  block of coordinates frozen at reference values; used to compute the
  per-parameter radii ``r_mu(phi_i, pi_j)`` that sensitivity weighting
  needs ("setting ``pi_m``, ``m != j``, to ``pi_m^orig``").
* :class:`ReweightedMapping` — a mapping reparameterised by an elementwise
  scaling ``P_l = alpha_l x_l``; this is how an analysis is transported into
  the dimensionless P-space of Section 3.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, SpecificationError
from repro.utils.validation import as_1d_float_array, as_2d_float_array, check_finite

__all__ = [
    "FeatureMapping",
    "LinearMapping",
    "QuadraticMapping",
    "ProductMapping",
    "CallableMapping",
    "MaxMapping",
    "SumMapping",
    "RestrictedMapping",
    "ReweightedMapping",
]


class FeatureMapping(abc.ABC):
    """Scalar function of a flat perturbation vector, with optional gradient.

    Subclasses must implement :meth:`value`; they should implement
    :meth:`gradient` whenever an analytic gradient exists, because the
    numeric boundary-projection solver converges far faster with exact
    Jacobians.
    """

    def __init__(self, n_inputs: int) -> None:
        if n_inputs < 1:
            raise SpecificationError(f"n_inputs must be >= 1, got {n_inputs}")
        self._n_inputs = int(n_inputs)

    @property
    def n_inputs(self) -> int:
        """Dimension of the flat input vector this mapping accepts."""
        return self._n_inputs

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self._n_inputs:
            raise DimensionMismatchError(
                f"{type(self).__name__} expects vectors of length "
                f"{self._n_inputs}, got shape {x.shape}")
        return x

    @abc.abstractmethod
    def value(self, x: np.ndarray) -> float:
        """Evaluate ``f(x)`` for a single input vector."""

    def value_many(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate ``f`` for a batch of row vectors (shape ``(m, n)``).

        The base implementation loops; structured subclasses override with
        a vectorised version (the Monte-Carlo validator calls this with
        tens of thousands of rows).
        """
        xs = as_2d_float_array(xs, name="xs")
        return np.array([self.value(row) for row in xs], dtype=np.float64)

    def gradient(self, x: np.ndarray) -> np.ndarray | None:
        """Analytic gradient ``df/dx`` at ``x``, or ``None`` if unavailable."""
        return None

    def gradient_many(self, xs: np.ndarray) -> np.ndarray | None:
        """Gradients for a batch of row vectors (shape ``(m, n)``), or
        ``None`` when no analytic gradient exists.

        The base implementation loops over :meth:`gradient`; subclasses
        with closed forms override it with a single vectorised
        expression so batched kernels can consume whole Jacobian stacks
        without Python-level per-row dispatch.
        """
        xs = as_2d_float_array(xs, name="xs")
        grads = [self.gradient(row) for row in xs]
        if any(g is None for g in grads):
            return None
        return np.array(grads, dtype=np.float64)

    def structure_key(self) -> tuple | None:
        """A stable fingerprint of the mapping's exact structure, or ``None``.

        Two mappings with equal structure keys compute the same function,
        so a radius solved for one is valid for the other — this is what
        :class:`~repro.parallel.cache.RadiusCache` keys on.  Mappings that
        cannot guarantee this (arbitrary callables) return ``None`` and
        are never cached.  Composite mappings are fingerprintable only
        when every component is.
        """
        return None

    def __call__(self, x: np.ndarray) -> float:
        return self.value(x)


class LinearMapping(FeatureMapping):
    """Affine impact function ``f(x) = k . x + c``.

    This is the form under which the paper derives all of its closed-form
    results; machine finish times (sum of execution times of tasks mapped to
    the machine) and path latencies (sum of computation plus communication
    times along a route) are of this form.

    Parameters
    ----------
    coefficients:
        The gradient vector ``k``.
    constant:
        The constant offset ``c`` (defaults to 0).
    """

    def __init__(self, coefficients, constant: float = 0.0) -> None:
        k = check_finite(as_1d_float_array(coefficients, name="coefficients"),
                         name="coefficients")
        super().__init__(k.size)
        self.coefficients = k
        self.constant = float(constant)

    def value(self, x: np.ndarray) -> float:
        x = self._check_input(x)
        return float(self.coefficients @ x) + self.constant

    def value_many(self, xs: np.ndarray) -> np.ndarray:
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        return xs @ self.coefficients + self.constant

    def gradient(self, x: np.ndarray) -> np.ndarray:
        self._check_input(x)
        return self.coefficients.copy()

    def gradient_many(self, xs: np.ndarray) -> np.ndarray:
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        return np.tile(self.coefficients, (xs.shape[0], 1))

    def boundary_hyperplane(self, bound: float) -> tuple[np.ndarray, float]:
        """The boundary set ``{x : f(x) = bound}`` as ``(normal, offset)``.

        Returns the pair ``(k, bound - c)`` such that the boundary is the
        hyperplane ``k . x = bound - c`` — the form consumed by
        :func:`repro.utils.linalg.point_to_hyperplane_distance` (Eq. 4).
        """
        return self.coefficients.copy(), float(bound) - self.constant

    def structure_key(self) -> tuple:
        return ("linear", self.coefficients.tobytes(), self.constant)

    def __repr__(self) -> str:
        return (f"LinearMapping(n={self.n_inputs}, "
                f"constant={self.constant:g})")


class QuadraticMapping(FeatureMapping):
    """Quadratic impact function ``f(x) = x' Q x + k . x + c``.

    ``Q`` is symmetrised on construction (only the symmetric part of a
    quadratic form is observable).  Models, e.g., computation times with a
    quadratic dependence on sensor load, as used for curved boundary sets
    like the one sketched in the paper's Figure 1.
    """

    def __init__(self, quadratic, linear=None, constant: float = 0.0) -> None:
        Q = check_finite(as_2d_float_array(quadratic, name="quadratic"),
                         name="quadratic")
        if Q.shape[0] != Q.shape[1]:
            raise SpecificationError(f"quadratic must be square, got {Q.shape}")
        n = Q.shape[0]
        super().__init__(n)
        self.quadratic = 0.5 * (Q + Q.T)
        if linear is None:
            self.linear = np.zeros(n)
        else:
            k = check_finite(as_1d_float_array(linear, name="linear"), name="linear")
            if k.size != n:
                raise DimensionMismatchError(
                    f"linear term has length {k.size}, expected {n}")
            self.linear = k
        self.constant = float(constant)

    def value(self, x: np.ndarray) -> float:
        x = self._check_input(x)
        return float(x @ self.quadratic @ x + self.linear @ x) + self.constant

    def value_many(self, xs: np.ndarray) -> np.ndarray:
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        quad = np.einsum("ij,jk,ik->i", xs, self.quadratic, xs)
        return quad + xs @ self.linear + self.constant

    def gradient(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        return 2.0 * (self.quadratic @ x) + self.linear

    def gradient_many(self, xs: np.ndarray) -> np.ndarray:
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        # Q is symmetrised on construction, so xs @ Q == (Q @ x)' rowwise.
        return 2.0 * (xs @ self.quadratic) + self.linear

    def structure_key(self) -> tuple:
        return ("quadratic", self.quadratic.tobytes(), self.linear.tobytes(),
                self.constant)

    def __repr__(self) -> str:
        return f"QuadraticMapping(n={self.n_inputs}, constant={self.constant:g})"


class ProductMapping(FeatureMapping):
    """Monomial impact function ``f(x) = c * prod_i x_i^{p_i}``.

    Only defined for strictly positive inputs (as is physically the case for
    message sizes, bandwidths and loads).  A communication time
    ``size / bandwidth`` is the monomial with powers ``(+1, -1)``.

    Parameters
    ----------
    powers:
        Exponent ``p_i`` per input element; zero entries make the mapping
        independent of that element.
    coefficient:
        The positive multiplier ``c``.
    """

    def __init__(self, powers, coefficient: float = 1.0) -> None:
        p = check_finite(as_1d_float_array(powers, name="powers"), name="powers")
        super().__init__(p.size)
        if coefficient <= 0:
            raise SpecificationError(
                f"coefficient must be positive, got {coefficient}")
        self.powers = p
        self.coefficient = float(coefficient)

    def _check_positive(self, x: np.ndarray) -> None:
        if np.any(x <= 0):
            raise SpecificationError(
                "ProductMapping requires strictly positive inputs")

    def value(self, x: np.ndarray) -> float:
        x = self._check_input(x)
        self._check_positive(x)
        return self.coefficient * float(np.prod(x ** self.powers))

    def value_many(self, xs: np.ndarray) -> np.ndarray:
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        self._check_positive(xs)
        return self.coefficient * np.prod(xs ** self.powers, axis=1)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        x = self._check_input(x)
        self._check_positive(x)
        f = self.value(x)
        return f * self.powers / x

    def gradient_many(self, xs: np.ndarray) -> np.ndarray:
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        self._check_positive(xs)
        f = self.value_many(xs)
        return f[:, None] * self.powers / xs

    def structure_key(self) -> tuple:
        return ("product", self.powers.tobytes(), self.coefficient)

    def __repr__(self) -> str:
        return f"ProductMapping(n={self.n_inputs}, coefficient={self.coefficient:g})"


class CallableMapping(FeatureMapping):
    """Wrap an arbitrary Python callable as a feature mapping.

    Parameters
    ----------
    fn:
        ``fn(x) -> float`` evaluated on 1-D float arrays.
    n_inputs:
        Input dimension.
    gradient_fn:
        Optional ``grad(x) -> ndarray``; supply one when you can, the
        numeric solvers are substantially more reliable with it.
    name:
        Label used in ``repr`` and reports.
    """

    def __init__(self, fn: Callable[[np.ndarray], float], n_inputs: int,
                 gradient_fn: Callable[[np.ndarray], np.ndarray] | None = None,
                 name: str = "callable") -> None:
        super().__init__(n_inputs)
        if not callable(fn):
            raise SpecificationError("fn must be callable")
        if gradient_fn is not None and not callable(gradient_fn):
            raise SpecificationError("gradient_fn must be callable or None")
        self._fn = fn
        self._gradient_fn = gradient_fn
        self.name = str(name)

    def value(self, x: np.ndarray) -> float:
        x = self._check_input(x)
        return float(self._fn(x))

    def gradient(self, x: np.ndarray) -> np.ndarray | None:
        if self._gradient_fn is None:
            return None
        x = self._check_input(x)
        g = as_1d_float_array(self._gradient_fn(x), name="gradient")
        if g.size != self.n_inputs:
            raise DimensionMismatchError(
                f"gradient_fn returned length {g.size}, expected {self.n_inputs}")
        return g

    def __repr__(self) -> str:
        return f"CallableMapping(name={self.name!r}, n={self.n_inputs})"


class MaxMapping(FeatureMapping):
    """Pointwise maximum of component mappings: ``f(x) = max_i f_i(x)``.

    The canonical instance is *makespan*: the maximum over machines of the
    machine finish time.  The boundary set ``{x : f(x) = b}`` is the union of
    the components' boundary pieces clipped to where that component attains
    the max, so the radius solvers treat each component separately and take
    the minimum radius (a point where *any* finish time crosses the limit
    already violates the requirement when each component carries its own
    bound; see :class:`repro.core.fepia.RobustnessAnalysis`, which expands a
    max-feature into per-component features exactly for this reason).
    """

    def __init__(self, components: Sequence[FeatureMapping]) -> None:
        components = list(components)
        if not components:
            raise SpecificationError("MaxMapping needs at least one component")
        n = components[0].n_inputs
        for comp in components:
            if not isinstance(comp, FeatureMapping):
                raise SpecificationError(
                    f"components must be FeatureMapping, got {type(comp).__name__}")
            if comp.n_inputs != n:
                raise DimensionMismatchError(
                    "all MaxMapping components must share the input dimension")
        super().__init__(n)
        self.components = components

    def value(self, x: np.ndarray) -> float:
        x = self._check_input(x)
        return max(comp.value(x) for comp in self.components)

    def value_many(self, xs: np.ndarray) -> np.ndarray:
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        vals = np.stack([comp.value_many(xs) for comp in self.components])
        return vals.max(axis=0)

    def argmax_component(self, x: np.ndarray) -> int:
        """Index of the component attaining the maximum at ``x``."""
        x = self._check_input(x)
        vals = [comp.value(x) for comp in self.components]
        return int(np.argmax(vals))

    def gradient(self, x: np.ndarray) -> np.ndarray | None:
        """Gradient of the active component (a subgradient at ties)."""
        comp = self.components[self.argmax_component(x)]
        return comp.gradient(x)

    def gradient_many(self, xs: np.ndarray) -> np.ndarray | None:
        """Per-row gradient of the active component (subgradients at ties).

        One batched ``value_many`` pass per component finds the active
        components; each component then computes gradients only for the
        rows it wins.
        """
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        vals = np.stack([comp.value_many(xs) for comp in self.components])
        winners = np.argmax(vals, axis=0)
        out = np.empty_like(xs)
        for ci in np.unique(winners):
            rows = winners == ci
            g = self.components[ci].gradient_many(xs[rows])
            if g is None:
                return None
            out[rows] = g
        return out

    def structure_key(self) -> tuple | None:
        keys = [comp.structure_key() for comp in self.components]
        if any(k is None for k in keys):
            return None
        return ("max", tuple(keys))

    def __repr__(self) -> str:
        return f"MaxMapping({len(self.components)} components, n={self.n_inputs})"


class SumMapping(FeatureMapping):
    """Sum of component mappings: ``f(x) = sum_i f_i(x)``.

    Useful for composing, e.g., end-to-end latency as computation plus
    communication stages with heterogeneous functional forms.
    """

    def __init__(self, components: Sequence[FeatureMapping]) -> None:
        components = list(components)
        if not components:
            raise SpecificationError("SumMapping needs at least one component")
        n = components[0].n_inputs
        for comp in components:
            if comp.n_inputs != n:
                raise DimensionMismatchError(
                    "all SumMapping components must share the input dimension")
        super().__init__(n)
        self.components = components

    def value(self, x: np.ndarray) -> float:
        x = self._check_input(x)
        return float(sum(comp.value(x) for comp in self.components))

    def value_many(self, xs: np.ndarray) -> np.ndarray:
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        return np.sum([comp.value_many(xs) for comp in self.components], axis=0)

    def gradient(self, x: np.ndarray) -> np.ndarray | None:
        grads = [comp.gradient(x) for comp in self.components]
        if any(g is None for g in grads):
            return None
        return np.sum(grads, axis=0)

    def gradient_many(self, xs: np.ndarray) -> np.ndarray | None:
        xs = self._check_input(as_2d_float_array(xs, name="xs"))
        grads = [comp.gradient_many(xs) for comp in self.components]
        if any(g is None for g in grads):
            return None
        return np.sum(grads, axis=0)

    def structure_key(self) -> tuple | None:
        keys = [comp.structure_key() for comp in self.components]
        if any(k is None for k in keys):
            return None
        return ("sum", tuple(keys))

    def __repr__(self) -> str:
        return f"SumMapping({len(self.components)} components, n={self.n_inputs})"


class RestrictedMapping(FeatureMapping):
    """A mapping with all but a chosen block of inputs frozen.

    Given a full mapping ``f`` over ``n`` inputs, a reference vector
    ``x_ref`` and a set of free indices ``I``, this mapping is

        g(y) = f(x) where x[I] = y and x[~I] = x_ref[~I].

    This realises the paper's Step 1: "determine the robustness radius with
    respect to ``pi_j`` by setting ``pi_m``, ``m != j``, to ``pi_m^orig`` in
    the ``phi_i`` function".
    """

    def __init__(self, base: FeatureMapping, free_indices,
                 reference: np.ndarray) -> None:
        if not isinstance(base, FeatureMapping):
            raise SpecificationError("base must be a FeatureMapping")
        idx = np.asarray(free_indices, dtype=np.intp).ravel()
        if idx.size == 0:
            raise SpecificationError("free_indices must be non-empty")
        if np.unique(idx).size != idx.size:
            raise SpecificationError("free_indices must be unique")
        if np.any(idx < 0) or np.any(idx >= base.n_inputs):
            raise SpecificationError(
                f"free_indices out of range for base with {base.n_inputs} inputs")
        ref = as_1d_float_array(reference, name="reference")
        if ref.size != base.n_inputs:
            raise DimensionMismatchError(
                f"reference has length {ref.size}, expected {base.n_inputs}")
        super().__init__(idx.size)
        self.base = base
        self.free_indices = idx
        self.reference = ref.copy()

    def embed(self, y: np.ndarray) -> np.ndarray:
        """Lift the reduced vector ``y`` into the full input space."""
        y = self._check_input(y)
        x = self.reference.copy()
        x[self.free_indices] = y
        return x

    def embed_many(self, ys: np.ndarray) -> np.ndarray:
        """Lift a batch of reduced row vectors into the full input space."""
        ys = self._check_input(as_2d_float_array(ys, name="ys"))
        xs = np.tile(self.reference, (ys.shape[0], 1))
        xs[:, self.free_indices] = ys
        return xs

    def value(self, y: np.ndarray) -> float:
        return self.base.value(self.embed(y))

    def value_many(self, ys: np.ndarray) -> np.ndarray:
        return self.base.value_many(self.embed_many(ys))

    def gradient(self, y: np.ndarray) -> np.ndarray | None:
        g = self.base.gradient(self.embed(y))
        if g is None:
            return None
        return g[self.free_indices]

    def gradient_many(self, ys: np.ndarray) -> np.ndarray | None:
        g = self.base.gradient_many(self.embed_many(ys))
        if g is None:
            return None
        return g[:, self.free_indices]

    def structure_key(self) -> tuple | None:
        base_key = self.base.structure_key()
        if base_key is None:
            return None
        return ("restricted", base_key, self.free_indices.tobytes(),
                self.reference.tobytes())

    def __repr__(self) -> str:
        return (f"RestrictedMapping(base={self.base!r}, "
                f"n_free={self.n_inputs})")


class ReweightedMapping(FeatureMapping):
    """A mapping reparameterised by an elementwise scaling into P-space.

    Section 3 of the paper builds the dimensionless vector
    ``P = (alpha_1 * pi_1) . ... . (alpha_k * pi_k)`` (elementwise weights
    after flattening).  With ``P_l = alpha_l x_l`` the feature becomes

        g(P) = f(P / alpha)           (elementwise division),

    and by the chain rule ``dg/dP = (df/dx) / alpha``.
    """

    def __init__(self, base: FeatureMapping, alphas) -> None:
        if not isinstance(base, FeatureMapping):
            raise SpecificationError("base must be a FeatureMapping")
        a = check_finite(as_1d_float_array(alphas, name="alphas"), name="alphas")
        if a.size != base.n_inputs:
            raise DimensionMismatchError(
                f"alphas has length {a.size}, expected {base.n_inputs}")
        if np.any(a == 0.0):
            raise SpecificationError("alphas must be nonzero")
        super().__init__(base.n_inputs)
        self.base = base
        self.alphas = a

    def value(self, p: np.ndarray) -> float:
        p = self._check_input(p)
        return self.base.value(p / self.alphas)

    def value_many(self, ps: np.ndarray) -> np.ndarray:
        ps = self._check_input(as_2d_float_array(ps, name="ps"))
        return self.base.value_many(ps / self.alphas)

    def gradient(self, p: np.ndarray) -> np.ndarray | None:
        p = self._check_input(p)
        g = self.base.gradient(p / self.alphas)
        if g is None:
            return None
        return g / self.alphas

    def gradient_many(self, ps: np.ndarray) -> np.ndarray | None:
        ps = self._check_input(as_2d_float_array(ps, name="ps"))
        g = self.base.gradient_many(ps / self.alphas)
        if g is None:
            return None
        return g / self.alphas

    def structure_key(self) -> tuple | None:
        base_key = self.base.structure_key()
        if base_key is None:
            return None
        return ("reweighted", base_key, self.alphas.tobytes())

    def __repr__(self) -> str:
        return f"ReweightedMapping(base={self.base!r})"
