"""Runtime monitoring experiment (E9): the radius ball as an early-warning
system.

The paper's feasibility procedure (Sec. 3.1, steps a-c) is naturally a
runtime monitor: at each data set, map the observed loads to ``P``, compare
``||P - P_orig||`` with ``rho``, and raise an alarm when the ball is left.
Because the test is *sound*, the alarm can never come after a violation —
the interesting quantity is the **lead time**: how many steps of warning
the operator gets before the QoS actually breaks, for different drift
shapes.

:func:`monitoring_experiment` replays generated load traces through both
the monitor and direct feature evaluation (cross-checked against the
dataflow simulator) and tabulates alarm step, violation step, and lead
time per trace shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.core.feasibility import FeasibilityChecker
from repro.core.fepia import RobustnessAnalysis
from repro.exceptions import SpecificationError
from repro.systems.hiperd.model import HiPerDSystem
from repro.systems.hiperd.traces import (
    ramp_trace,
    random_walk_trace,
    sinusoid_trace,
    spike_trace,
)

__all__ = ["TraceOutcome", "replay_trace", "monitoring_experiment"]


@dataclass(frozen=True)
class TraceOutcome:
    """Result of replaying one load trace through the monitor.

    Attributes
    ----------
    name:
        Trace label.
    n_steps:
        Trace length.
    alarm_step:
        First step where the radius-ball test failed (``None`` = never).
    violation_step:
        First step where some feature actually violated (``None`` =
        never).
    lead_time:
        ``violation_step - alarm_step`` when both fired, else ``None``.
    sound:
        The alarm did not come after the violation (must always hold).
    """

    name: str
    n_steps: int
    alarm_step: int | None
    violation_step: int | None
    lead_time: int | None
    sound: bool


def replay_trace(analysis: RobustnessAnalysis, load_trace: np.ndarray,
                 *, name: str = "trace",
                 load_param: str = "loads") -> TraceOutcome:
    """Replay one ``(n_steps, n_sensors)`` load trace through the monitor.

    Parameters
    ----------
    analysis:
        The robustness analysis whose radius-ball serves as the monitor;
        must include a perturbation parameter named ``load_param``.
    load_trace:
        Per-step sensor loads.
    name:
        Label for the outcome.
    load_param:
        Name of the perturbation parameter the trace drives.
    """
    if load_param not in {p.name for p in analysis.params}:
        raise SpecificationError(
            f"analysis has no perturbation parameter {load_param!r}")
    checker = FeasibilityChecker(analysis)
    load_trace = np.asarray(load_trace, dtype=np.float64)
    alarm = violation = None
    for t in range(load_trace.shape[0]):
        verdict = checker.check({load_param: load_trace[t]})
        if alarm is None and not verdict.within_radius:
            alarm = t
        if violation is None and not verdict.actually_feasible:
            violation = t
        if alarm is not None and violation is not None:
            break
    if violation is not None:
        sound = alarm is not None and alarm <= violation
    else:
        sound = True
    lead = (violation - alarm) if (alarm is not None
                                   and violation is not None) else None
    return TraceOutcome(name=name, n_steps=int(load_trace.shape[0]),
                        alarm_step=alarm, violation_step=violation,
                        lead_time=lead, sound=sound)


def monitoring_experiment(
    system: HiPerDSystem,
    analysis: RobustnessAnalysis,
    *,
    n_steps: int = 60,
    ramp_factor: float = 2.5,
    spike_magnitude: float = 3.0,
    walk_std: float = 0.08,
    seed=None,
) -> ExperimentResult:
    """E9: alarm lead time of the radius-ball monitor per drift shape.

    Four canonical traces (ramp, spike, random walk, sinusoid) are replayed
    through :func:`replay_trace`; the resulting table shows when the
    monitor alarmed vs when the QoS actually broke.

    Parameters
    ----------
    system:
        The HiPer-D system supplying the base loads.
    analysis:
        The robustness analysis acting as the monitor (must perturb
        ``loads``).
    n_steps, ramp_factor, spike_magnitude, walk_std, seed:
        Trace-shape knobs.
    """
    base = system.original_loads()
    traces = [
        ("ramp", ramp_trace(base, n_steps, end_factor=ramp_factor)),
        ("spike", spike_trace(base, n_steps, spike_at=n_steps // 2,
                              magnitude=spike_magnitude)),
        ("random walk", random_walk_trace(base, n_steps, step_std=walk_std,
                                          seed=seed)),
        ("sinusoid", sinusoid_trace(base, n_steps, amplitude=0.6)),
    ]
    rows = []
    all_sound = True
    for name, trace in traces:
        outcome = replay_trace(analysis, trace, name=name)
        all_sound = all_sound and outcome.sound
        rows.append([
            name, outcome.n_steps,
            "-" if outcome.alarm_step is None else outcome.alarm_step,
            "-" if outcome.violation_step is None else outcome.violation_step,
            "-" if outcome.lead_time is None else outcome.lead_time,
            "yes" if outcome.sound else "NO",
        ])
    return ExperimentResult(
        experiment_id="E9",
        title="radius-ball monitor: alarm lead time per load-drift shape",
        headers=["trace", "steps", "first alarm", "first violation",
                 "lead time", "sound"],
        rows=rows,
        summary={"all traces sound (alarm never after violation)": all_sound},
    )
