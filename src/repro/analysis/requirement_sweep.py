"""Requirement sweep (E11): rho as a function of the requirement beta.

The paper's complaint about sensitivity weighting, in one picture: as the
robustness requirement ``beta_max = beta * phi_orig`` is loosened, a sane
measure must report *more* robustness.  The normalized radius grows
linearly in ``beta - 1``; the sensitivity-weighted radius **does not move
at all** ("the fact that an increase in the robustness requirement does
not change the robustness value is troubling").  This module sweeps
``beta`` through both pipelines and returns the two curves.
"""

from __future__ import annotations


from repro.analysis.experiments import ExperimentResult
from repro.analysis.linear_case import analysis_for_case
from repro.core.degeneracy import LinearCase
from repro.core.weighting import NormalizedWeighting, SensitivityWeighting
from repro.exceptions import SpecificationError
from repro.utils.ascii_plot import line_plot

__all__ = ["requirement_sweep"]


def requirement_sweep(
    coefficients,
    originals,
    *,
    betas=(1.05, 1.1, 1.2, 1.4, 1.7, 2.0, 2.5, 3.0),
    seed=None,
) -> ExperimentResult:
    """Sweep the requirement ``beta`` through both weightings' pipelines.

    Parameters
    ----------
    coefficients, originals:
        The linear case's ``k_j`` and ``pi_j^orig``.
    betas:
        Requirement values to sweep (all ``> 1``).
    seed:
        Unused (the computation is deterministic) but accepted for
        interface uniformity with the other experiments.

    Returns
    -------
    ExperimentResult
        Rows ``[beta, rho_sensitivity, rho_normalized]`` plus an ASCII
        plot of the normalized curve; the summary records the spread of
        each curve (sensitivity must be exactly flat).
    """
    betas = sorted(float(b) for b in betas)
    if not betas or betas[0] <= 1.0:
        raise SpecificationError("betas must be non-empty and all > 1")

    rows = []
    sens_values = []
    norm_values = []
    for beta in betas:
        case = LinearCase(coefficients, originals, beta)
        rho_sens = analysis_for_case(case, SensitivityWeighting()).rho()
        rho_norm = analysis_for_case(case, NormalizedWeighting()).rho()
        sens_values.append(rho_sens)
        norm_values.append(rho_norm)
        rows.append([beta, rho_sens, rho_norm])

    sens_spread = max(sens_values) - min(sens_values)
    norm_growth = norm_values[-1] / norm_values[0]
    plot = line_plot(
        betas, norm_values, xlabel="beta",
        ylabel="rho",
        title="normalized rho grows with beta; sensitivity rho is the "
              f"flat line at {sens_values[0]:.4g}",
        width=64, height=16)
    return ExperimentResult(
        experiment_id="E11",
        title=("rho vs requirement beta: the sensitivity measure ignores "
               "the requirement, the normalized one responds to it"),
        headers=["beta", "rho (sensitivity)", "rho (normalized)"],
        rows=rows,
        summary={
            "sensitivity curve spread (paper: exactly 0)": sens_spread,
            "normalized growth factor over the sweep": norm_growth,
            "plot": "\n" + plot,
        },
    )
