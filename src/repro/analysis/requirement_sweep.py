"""Requirement sweep (E11): rho as a function of the requirement beta.

The paper's complaint about sensitivity weighting, in one picture: as the
robustness requirement ``beta_max = beta * phi_orig`` is loosened, a sane
measure must report *more* robustness.  The normalized radius grows
linearly in ``beta - 1``; the sensitivity-weighted radius **does not move
at all** ("the fact that an increase in the robustness requirement does
not change the robustness value is troubling").  This module sweeps
``beta`` through both pipelines and returns the two curves.

The sweep rides on :func:`~repro.analysis.degradation.degradation_curve`:
one template analysis per weighting is built once and walked through the
betas (bounds are the only thing that moves), instead of rebuilding the
whole ``LinearCase`` pipeline per operating point.  The default bounds of
a degradation curve — ``<-inf, beta * phi_orig>`` — are exactly the
``LinearCase`` requirement, so the reported radii are bit-identical to
the per-beta rebuild this module used to do.
"""

from __future__ import annotations

import math

from repro.analysis.degradation import degradation_curve
from repro.analysis.experiments import ExperimentResult
from repro.analysis.linear_case import analysis_for_case
from repro.core.degeneracy import LinearCase
from repro.core.weighting import NormalizedWeighting, SensitivityWeighting
from repro.exceptions import SpecificationError
from repro.utils.ascii_plot import line_plot

__all__ = ["requirement_sweep"]


def _growth_factor(values: list[float]) -> "float | str":
    """Ratio of last to first curve value, guarded against degeneracy.

    At the feasibility boundary the first value can be 0 (or a curve can
    carry non-finite radii); dividing would put ``inf``/``nan`` into the
    summary, so such sweeps report a description instead of a number.
    """
    first, last = values[0], values[-1]
    if first == 0.0 or not (math.isfinite(first) and math.isfinite(last)):
        return "undefined (degenerate curve endpoint)"
    return last / first


def requirement_sweep(
    coefficients,
    originals,
    *,
    betas=(1.05, 1.1, 1.2, 1.4, 1.7, 2.0, 2.5, 3.0),
    seed=None,
) -> ExperimentResult:
    """Sweep the requirement ``beta`` through both weightings' pipelines.

    Parameters
    ----------
    coefficients, originals:
        The linear case's ``k_j`` and ``pi_j^orig``.
    betas:
        Requirement values to sweep (all ``> 1``).  A single-element
        sweep is valid and degrades to table-only output (no plot).
    seed:
        Unused (the computation is deterministic) but accepted for
        interface uniformity with the other experiments.

    Returns
    -------
    ExperimentResult
        Rows ``[beta, rho_sensitivity, rho_normalized]`` plus an ASCII
        plot of the normalized curve (omitted for single-point sweeps);
        the summary records the spread of each curve (sensitivity must
        be exactly flat).
    """
    betas = sorted(float(b) for b in betas)
    if not betas or betas[0] <= 1.0:
        raise SpecificationError("betas must be non-empty and all > 1")

    case = LinearCase(coefficients, originals, betas[0])
    sens_curve = degradation_curve(
        analysis_for_case(case, SensitivityWeighting()), "phi", betas)
    norm_curve = degradation_curve(
        analysis_for_case(case, NormalizedWeighting()), "phi", betas)
    sens_values = sens_curve.rhos()
    norm_values = norm_curve.rhos()
    rows = [[beta, rho_sens, rho_norm]
            for beta, rho_sens, rho_norm
            in zip(betas, sens_values, norm_values)]

    sens_spread = max(sens_values) - min(sens_values)
    summary = {
        "sensitivity curve spread (paper: exactly 0)": sens_spread,
        "normalized growth factor over the sweep":
            _growth_factor(norm_values),
    }
    if len(betas) >= 2:
        plot = line_plot(
            betas, norm_values, xlabel="beta",
            ylabel="rho",
            title="normalized rho grows with beta; sensitivity rho is the "
                  f"flat line at {sens_values[0]:.4g}",
            width=64, height=16)
        summary["plot"] = "\n" + plot
    return ExperimentResult(
        experiment_id="E11",
        title=("rho vs requirement beta: the sensitivity measure ignores "
               "the requirement, the normalized one responds to it"),
        headers=["beta", "rho (sensitivity)", "rho (normalized)"],
        rows=rows,
        summary=summary,
    )
