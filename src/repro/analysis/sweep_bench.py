"""Benchmark harness: cold per-point sweep vs warm-started degradation curve.

:func:`run_sweep_benchmark` walks the same 100-point requirement sweep
over a makespan max-feature twice — once solving every operating point
from scratch (the pre-curve behaviour), once threading a single
:class:`~repro.core.solvers.warm.WarmStart` through the walk — counting
Python-level ``value``/``value_many`` calls through the same delegating
wrapper the solver-kernel benchmark uses.  The payload carries wall-clock
timings, the call counts, the reduction factor, warm-start hit counters,
and a bit-identity verdict over every point's radius, boundary point, and
bound hit: the warm walk promises the *exact* cold answers, measured
rather than assumed.

Emits a ``repro-bench-sweep-v1`` payload; like every bench schema it is
validated by :func:`repro.parallel.bench.validate_bench_payload` (the
single source of truth), and CI smoke-tests it on every push with the
same speedup/identity gate that protects the solver kernels.

Not imported by ``repro.analysis`` eagerly — import it explicitly::

    from repro.analysis.sweep_bench import run_sweep_benchmark
"""

from __future__ import annotations

import logging
import time

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.radius import RadiusProblem, compute_radius
from repro.core.solvers.bench import CallCountingMapping
from repro.core.solvers.warm import WarmStart
from repro.exceptions import SpecificationError
from repro.observability import get_observability
from repro.parallel.bench import SWEEP_BENCH_SCHEMA

__all__ = ["run_sweep_benchmark"]

logger = logging.getLogger(__name__)


def _fixture(tasks: int, machines: int, seed: int):
    """The benchmark substrate: a makespan max-feature under MCT.

    Returns the (uncounted) max mapping and the execution-time origin.
    The requirement bounds are built from ``mapping.value(origin)`` —
    not ``system.makespan()`` — so both legs and the identity check see
    the exact float the solver's own ``g(0)`` evaluation produces.
    """
    from repro.systems.heuristics import MCT
    from repro.systems.independent.etc import generate_etc_gamma
    from repro.systems.independent.makespan import MakespanSystem

    etc = generate_etc_gamma(tasks, machines, seed=seed)
    system = MakespanSystem(etc, MCT().allocate(etc))
    spec = system.makespan_spec(tau=system.makespan() + 1.0)
    return spec.mapping, system.original_times()


def _run_leg(inner, origin: np.ndarray, taus: np.ndarray, seed: int,
             warm: WarmStart | None) -> tuple[list, float, int]:
    """Walk the sweep with a fresh call counter; return (results, s, evals)."""
    counting = CallCountingMapping(inner)
    results = []
    t0 = time.perf_counter()
    for tau in taus:
        problem = RadiusProblem(counting, origin,
                                ToleranceBounds.upper(float(tau)))
        results.append(compute_radius(problem, method="bisection",
                                      seed=seed, cache=False, warm=warm))
    seconds = time.perf_counter() - t0
    return results, seconds, counting.calls


def run_sweep_benchmark(
    *,
    points: int = 100,
    tasks: int = 32,
    machines: int = 8,
    beta_lo: float = 1.05,
    beta_hi: float = 2.0,
    seed: int = 2005,
) -> dict:
    """Benchmark the warm-started sweep against the cold per-point walk.

    Parameters
    ----------
    points:
        Number of operating points in the requirement sweep.
    tasks, machines:
        Size of the makespan fixture (more tasks → more expensive
        evaluations for the warm table to amortise).
    beta_lo, beta_hi:
        Requirement range swept linearly (both ``> 1``); the bound at
        each point is ``beta * makespan_orig``.
    seed:
        Fixture seed, shared by both legs (required for the identity
        verdict to be meaningful; the bisection walk itself draws no
        randomness on this all-linear substrate).

    Returns
    -------
    dict
        A ``repro-bench-sweep-v1`` payload.  ``identical`` compares the
        radius, boundary point, and bound hit of every operating point;
        ``eval_reduction`` is the factor by which the warm table cut
        Python-level evaluation calls across the whole sweep.
    """
    if points < 2:
        raise SpecificationError(f"points must be >= 2, got {points}")
    if not 1.0 < beta_lo <= beta_hi:
        raise SpecificationError(
            f"need 1 < beta_lo <= beta_hi, got {beta_lo} and {beta_hi}")
    logger.info("sweep benchmark: %d points over %dx%d makespan, seed=%d",
                points, tasks, machines, seed)
    inner, origin = _fixture(tasks, machines, seed)
    betas = np.linspace(beta_lo, beta_hi, points)
    taus = betas * inner.value(origin)

    cold, cold_seconds, cold_evals = _run_leg(inner, origin, taus, seed, None)
    warm_state = WarmStart()
    warm, warm_seconds, warm_evals = _run_leg(inner, origin, taus, seed,
                                              warm_state)

    identical = all(
        c.radius == w.radius
        and np.array_equal(c.boundary_point, w.boundary_point,
                           equal_nan=True)
        and c.bound_hit == w.bound_hit
        for c, w in zip(cold, warm))
    if not identical:  # pragma: no cover - bit-identity contract violation
        logger.error("warm sweep results DIFFER from cold results")
    payload = {
        "schema": SWEEP_BENCH_SCHEMA,
        "seed": int(seed),
        "points": int(points),
        "tasks": int(tasks),
        "machines": int(machines),
        "beta_lo": float(beta_lo),
        "beta_hi": float(beta_hi),
        "cold_seconds": float(cold_seconds),
        "warm_seconds": float(warm_seconds),
        "speedup": (float(cold_seconds / warm_seconds)
                    if warm_seconds > 0 else 0.0),
        "cold_evals": int(cold_evals),
        "warm_evals": int(warm_evals),
        "eval_reduction": (float(cold_evals / warm_evals)
                           if warm_evals else 0.0),
        "warm_starts": int(warm_state.warm_starts),
        "warm_hits": int(warm_state.warm_hits),
        "identical": bool(identical),
        "rho_first": float(cold[0].radius),
        "rho_last": float(cold[-1].radius),
    }
    obs = get_observability()
    if obs is not None:
        payload["observability"] = {
            "metrics": obs.metrics.snapshot(),
            "spans": len(obs.recorder.spans()),
            "events": len(obs.events.events()),
        }
    return payload
