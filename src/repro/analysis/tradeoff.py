"""Robustness-performance tradeoff study (E10).

The companion paper's closing observation: optimising raw performance
(makespan) and optimising robustness pull in different directions, so the
interesting allocations form a Pareto frontier.  This experiment samples a
population of allocations — the classical heuristics, random draws, and
simulated-annealing runs with objectives blending makespan and ``-rho`` —
evaluates each against a shared deadline, and extracts the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from repro.analysis.experiments import ExperimentResult
from repro.exceptions import SpecificationError
from repro.systems.heuristics import (
    MCT,
    MaxMin,
    MinMin,
    OLB,
    RandomAllocator,
    SimulatedAnnealer,
    Sufferage,
)
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix
from repro.systems.independent.makespan import MakespanSystem
from repro.utils.ascii_plot import scatter_plot
from repro.utils.rng import default_rng

__all__ = ["TradeoffPoint", "pareto_frontier", "tradeoff_experiment"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One allocation's position in (makespan, robustness) space.

    Attributes
    ----------
    label:
        Where the allocation came from ("MCT", "SA w=0.3", "random", ...).
    makespan:
        Estimated makespan.
    rho:
        Robustness under the experiment's shared deadline (``nan`` when
        the allocation misses the deadline outright).
    """

    label: str
    makespan: float
    rho: float

    @property
    def feasible(self) -> bool:
        """Whether the allocation meets the shared deadline."""
        return self.rho == self.rho  # not NaN


def pareto_frontier(points: Sequence[TradeoffPoint]) -> list[TradeoffPoint]:
    """Non-dominated subset: minimal makespan, maximal robustness.

    A point dominates another if it has both a (weakly) smaller makespan
    and a (weakly) larger rho, strictly better in at least one.  Infeasible
    points never enter the frontier.
    """
    feas = [p for p in points if p.feasible]
    frontier = []
    for p in feas:
        dominated = any(
            (q.makespan <= p.makespan and q.rho >= p.rho)
            and (q.makespan < p.makespan or q.rho > p.rho)
            for q in feas)
        if not dominated:
            frontier.append(p)
    frontier.sort(key=lambda p: p.makespan)
    return frontier


def _blended_sa(etc: EtcMatrix, tau: float, weight: float, seed) -> Allocation:
    """SA on ``weight * makespan - (1-weight) * rho`` (both normalised)."""
    ms_scale = MCT().allocate(etc).makespan(etc)

    def factory(etc_matrix):
        def objective(allocation):
            system = MakespanSystem(etc_matrix, allocation)
            ms = system.makespan()
            if ms >= tau:
                return 10.0 + ms / tau  # deep infeasibility penalty
            rho = system.analytic_rho(tau=tau)
            return weight * ms / ms_scale - (1.0 - weight) * rho / ms_scale
        return objective

    return SimulatedAnnealer(factory, n_steps=1200, seed=seed).allocate(etc)


def tradeoff_experiment(
    etc: EtcMatrix,
    *,
    tau_factor: float = 1.5,
    n_random: int = 12,
    sa_weights: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed=None,
) -> ExperimentResult:
    """E10: the makespan-robustness Pareto frontier of an instance.

    Parameters
    ----------
    etc:
        The problem instance.
    tau_factor:
        Shared deadline as a multiple of the best heuristic makespan.
    n_random:
        Number of random allocations in the population.
    sa_weights:
        Blend weights for the simulated-annealing runs (0 = pure
        robustness, 1 = pure makespan).
    seed:
        RNG seed.
    """
    if tau_factor <= 1.0:
        raise SpecificationError("tau_factor must exceed 1")
    rng = default_rng(seed)

    candidates: list[tuple[str, Allocation]] = [
        (h.name, h.allocate(etc))
        for h in (OLB(), MCT(), MinMin(), MaxMin(), Sufferage())
    ]
    tau = tau_factor * min(a.makespan(etc) for _, a in candidates)

    for i in range(n_random):
        candidates.append(
            (f"random{i}", RandomAllocator(rng).allocate(etc)))
    for w in sa_weights:
        candidates.append(
            (f"SA w={w:.2f}", _blended_sa(etc, tau, w, rng)))

    points = []
    for label, alloc in candidates:
        system = MakespanSystem(etc, alloc)
        ms = system.makespan()
        rho = (system.analytic_rho(tau=tau) if ms < tau else float("nan"))
        points.append(TradeoffPoint(label=label, makespan=ms, rho=rho))

    frontier = pareto_frontier(points)
    frontier_set = {(p.label) for p in frontier}
    rows = [[p.label, p.makespan,
             p.rho if p.feasible else float("nan"),
             "*" if p.label in frontier_set else ""]
            for p in sorted(points, key=lambda q: q.makespan)]

    feas = [p for p in points if p.feasible]
    plot = scatter_plot(
        [p.makespan for p in feas], [p.rho for p in feas],
        xlabel="makespan", ylabel="rho",
        title=f"robustness vs makespan (tau = {tau:.4g}); "
              f"{len(frontier)} Pareto points", width=64, height=18)

    return ExperimentResult(
        experiment_id="E10",
        title=(f"makespan-robustness tradeoff on {etc.n_tasks} tasks x "
               f"{etc.n_machines} machines (* = Pareto frontier)"),
        headers=["allocation", "makespan", "rho", "frontier"],
        rows=rows,
        summary={
            "tau": tau,
            "frontier size": len(frontier),
            "frontier labels": ", ".join(p.label for p in frontier),
            "scatter": "\n" + plot,
        },
    )
