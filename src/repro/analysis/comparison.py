"""Comparison experiments: heuristics (E5), weightings (E6), norms (E8).

These reproduce the *use* of the metric the companion paper's evaluation
demonstrates: ranking candidate resource allocations by robustness (which
disagrees with ranking by raw performance), and quantifying how the choice
of weighting scheme or distance norm changes the measure.
"""

from __future__ import annotations

import math
from typing import Sequence


from repro.analysis.experiments import ExperimentResult
from repro.core.weighting import (
    IdentityWeighting,
    NormalizedWeighting,
    SensitivityWeighting,
    WeightingScheme,
)
from repro.exceptions import InfeasibleAllocationError
from repro.systems.heuristics import (
    MCT,
    MET,
    OLB,
    AllocationHeuristic,
    MaxMin,
    MinMin,
    RandomAllocator,
    RoundRobin,
    Sufferage,
)
from repro.systems.hiperd.constraints import QoSSpec, build_analysis
from repro.systems.hiperd.model import HiPerDSystem
from repro.systems.independent.etc import EtcMatrix
from repro.systems.independent.makespan import MakespanSystem

__all__ = ["compare_heuristics", "compare_weightings", "compare_norms",
           "default_heuristics"]


def default_heuristics(seed=None) -> list[AllocationHeuristic]:
    """The standard lineup used by the comparison experiments."""
    return [OLB(), MET(), MCT(), RoundRobin(), MinMin(), MaxMin(),
            Sufferage(), RandomAllocator(seed)]


def compare_heuristics(
    etc: EtcMatrix,
    *,
    heuristics: Sequence[AllocationHeuristic] | None = None,
    tau_factor: float = 1.3,
    seed=None,
) -> ExperimentResult:
    """E5: rank allocations by makespan and by robustness under a shared tau.

    Every heuristic's allocation is held to the *same* absolute makespan
    limit ``tau = tau_factor * (best makespan among candidates)``, the fair
    comparison; candidates whose makespan already exceeds ``tau`` are
    reported as infeasible (robustness undefined).

    The interesting output is the rank disagreement: the shortest-makespan
    allocation is typically *not* the most robust one.
    """
    if heuristics is None:
        heuristics = default_heuristics(seed)
    allocations = [(h.name, h.allocate(etc)) for h in heuristics]
    best_makespan = min(a.makespan(etc) for _, a in allocations)
    tau = tau_factor * best_makespan

    rows = []
    rhos: dict[str, float] = {}
    makespans: dict[str, float] = {}
    for name, alloc in allocations:
        system = MakespanSystem(etc, alloc)
        ms = system.makespan()
        makespans[name] = ms
        if ms >= tau:
            rows.append([name, ms, float("nan"), "infeasible"])
            continue
        rho = system.analytic_rho(tau=tau)
        rhos[name] = rho
        rows.append([name, ms, rho, ""])
    # Rank correlation between makespan order and robustness order
    # (feasible candidates only; robustness ranks descending).
    feas = sorted(rhos)
    ms_rank = {n: r for r, n in enumerate(
        sorted(feas, key=lambda n: makespans[n]))}
    rho_rank = {n: r for r, n in enumerate(
        sorted(feas, key=lambda n: -rhos[n]))}
    agreements = sum(1 for n in feas if ms_rank[n] == rho_rank[n])
    best_ms = min(feas, key=lambda n: makespans[n]) if feas else "-"
    best_rho = max(feas, key=lambda n: rhos[n]) if feas else "-"
    rows.sort(key=lambda r: (math.isnan(r[2]), -(r[2] if not math.isnan(r[2])
                                                 else 0.0)))
    return ExperimentResult(
        experiment_id="E5",
        title=(f"heuristic comparison on {etc.n_tasks} tasks x "
               f"{etc.n_machines} machines, shared tau = {tau:.4g}"),
        headers=["heuristic", "makespan", "rho (shared tau)", "note"],
        rows=rows,
        summary={
            "shortest-makespan heuristic": best_ms,
            "most-robust heuristic": best_rho,
            "rank agreements (makespan vs robustness)":
                f"{agreements}/{len(feas)}",
        },
    )


def compare_weightings(
    system: HiPerDSystem,
    qos: QoSSpec,
    *,
    kinds: Sequence[str] = ("loads", "exec", "msgsize"),
    seed=None,
) -> ExperimentResult:
    """E6: multi-kind robustness of one HiPer-D allocation per weighting.

    Reports ``rho`` and the critical feature under the identity (illegal
    for true multi-kind inputs — included only when it is legal), the
    sensitivity, and the normalized weighting.
    """
    rows = []
    schemes: list[WeightingScheme] = [SensitivityWeighting(),
                                      NormalizedWeighting()]
    if len(kinds) == 1:
        schemes.insert(0, IdentityWeighting())
    for scheme in schemes:
        analysis = build_analysis(system, qos, kinds=kinds,
                                  weighting=scheme, seed=seed)
        try:
            rho = analysis.rho()
            critical = analysis.critical_feature().name
        except InfeasibleAllocationError as exc:  # pragma: no cover
            rho, critical = float("nan"), f"infeasible: {exc}"
        rows.append([scheme.name, rho, critical])
    return ExperimentResult(
        experiment_id="E6",
        title=(f"weighting-scheme comparison on {system!r} with kinds "
               f"{tuple(kinds)}"),
        headers=["weighting", "rho", "critical feature"],
        rows=rows,
        summary={"n features": len(build_analysis(
            system, qos, kinds=kinds, seed=seed).features)},
    )


def compare_norms(
    system: HiPerDSystem,
    qos: QoSSpec,
    *,
    kinds: Sequence[str] = ("loads", "msgsize"),
    norms: Sequence[float] = (1, 2, float("inf")),
    seed=None,
) -> ExperimentResult:
    """E8: how the distance norm changes the (normalized) radius.

    For linear features the norms obey ``r_inf <= r_2 <= r_1`` pointwise
    (unit balls nest the other way), which the result rows confirm.
    """
    rows = []
    rhos = []
    for norm in norms:
        analysis = build_analysis(system, qos, kinds=kinds,
                                  weighting=NormalizedWeighting(),
                                  norm=norm, seed=seed)
        rho = analysis.rho()
        rhos.append(rho)
        label = "inf" if math.isinf(norm) else str(norm)
        rows.append([f"l{label}", rho, analysis.critical_feature().name])
    ordered = all(rhos[i] >= rhos[i + 1]
                  for i in range(len(rhos) - 1))
    return ExperimentResult(
        experiment_id="E8",
        title=f"norm ablation on {system!r} with kinds {tuple(kinds)}",
        headers=["norm", "rho", "critical feature"],
        rows=rows,
        summary={"r_l1 >= r_l2 >= r_linf (expected for norms 1,2,inf)":
                 ordered},
    )
