"""Placement-heuristic comparison on the HiPer-D substrate (E18).

The E5 experiment, transplanted: candidate *placements* (instead of
independent-task allocations) are produced by the HiPer-D placement
heuristics and ranked by the multi-kind robustness metric, with the
hill-climbing search (E15) run from the best constructive start as the
"how much is left on the table" reference.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis.experiments import ExperimentResult
from repro.systems.hiperd.constraints import QoSSpec
from repro.systems.hiperd.heuristics import PLACEMENT_HEURISTICS
from repro.systems.hiperd.model import HiPerDSystem
from repro.systems.hiperd.placement import improve_placement, placement_rho

__all__ = ["compare_placements"]


def compare_placements(
    system: HiPerDSystem,
    qos: QoSSpec,
    *,
    kinds: Sequence[str] = ("loads",),
    refine_best: bool = True,
    refine_rounds: int = 4,
    seed=None,
) -> ExperimentResult:
    """E18: rank placement heuristics by robustness; optionally refine.

    Parameters
    ----------
    system:
        Supplies the topology; its own allocation is ignored (each
        heuristic re-places the applications).
    qos:
        QoS promises (relative budgets are rebuilt per placement, the
        per-allocation-``beta`` convention).
    kinds:
        Perturbation kinds for the robustness objective.
    refine_best:
        Also run the hill-climbing search from the best constructive
        placement.
    refine_rounds:
        Hill-climbing move budget.
    seed:
        RNG seed (random placement + solvers).
    """
    rows = []
    best_name = None
    best_rho = -math.inf
    best_system = None
    for name, heuristic in PLACEMENT_HEURISTICS.items():
        placed = heuristic(system, seed=seed)
        rho = placement_rho(placed, qos, kinds=kinds, seed=seed)
        rows.append([name, rho if math.isfinite(rho) else float("nan"),
                     "infeasible" if rho == -math.inf else ""])
        if rho > best_rho:
            best_name, best_rho, best_system = name, rho, placed
    summary = {"best constructive placement": best_name}
    if refine_best and best_system is not None and math.isfinite(best_rho):
        refined, steps = improve_placement(best_system, qos, kinds=kinds,
                                           max_rounds=refine_rounds,
                                           seed=seed)
        refined_rho = placement_rho(refined, qos, kinds=kinds, seed=seed)
        rows.append([f"{best_name}+hillclimb", refined_rho,
                     f"{len(steps)} moves"])
        summary["headroom left by the best heuristic"] = (
            f"{(refined_rho / best_rho - 1.0) * 100:.1f}%"
            if best_rho > 0 else "-")
    rows.sort(key=lambda r: (isinstance(r[1], float) and math.isnan(r[1]),
                             -(r[1] if not (isinstance(r[1], float)
                                            and math.isnan(r[1])) else 0.0)))
    return ExperimentResult(
        experiment_id="E18",
        title=(f"placement-heuristic comparison on {system!r}, "
               f"kinds={tuple(kinds)}"),
        headers=["placement", "rho", "note"],
        rows=rows,
        summary=summary,
    )
