"""Experiment implementations reproducing the paper's derivations and the
companion paper's evaluation style.

* :mod:`repro.analysis.linear_case` — the Section 3.1/3.2 sweeps: the
  ``1/sqrt(n)`` degeneracy of sensitivity weighting (E2) and the
  parameter-dependence of the normalized radius (E3);
* :mod:`repro.analysis.comparison` — allocation-heuristic robustness
  comparisons on the independent-task substrate (E5) and weighting-scheme /
  norm ablations (E6/E8);
* :mod:`repro.analysis.degradation` — warm-started degradation curves
  ``rho(beta)`` walking a requirement sweep with shared solver state;
* :mod:`repro.analysis.experiments` — the result container shared by the
  benchmark harness.
"""

from repro.analysis.degradation import (
    CurvePoint,
    DegradationCurve,
    degradation_curve,
)
from repro.analysis.experiments import ExperimentResult
from repro.analysis.linear_case import (
    normalized_dependence_sweep,
    random_linear_case,
    sensitivity_degeneracy_sweep,
)
from repro.analysis.comparison import (
    compare_heuristics,
    compare_norms,
    compare_weightings,
)
from repro.analysis.monitoring import (
    TraceOutcome,
    monitoring_experiment,
    replay_trace,
)
from repro.analysis.tradeoff import (
    TradeoffPoint,
    pareto_frontier,
    tradeoff_experiment,
)
from repro.analysis.requirement_sweep import requirement_sweep
from repro.analysis.study import (
    SystemObservation,
    population_study,
    scaling_study,
)
from repro.analysis.weighting_sensitivity import (
    two_kind_analysis_factory,
    weighting_sensitivity_experiment,
)
from repro.analysis.placement_comparison import compare_placements
from repro.analysis.runner import (
    EXPERIMENT_REGISTRY,
    run_all_experiments,
    run_experiment,
)

__all__ = [
    "CurvePoint",
    "DegradationCurve",
    "degradation_curve",
    "ExperimentResult",
    "random_linear_case",
    "sensitivity_degeneracy_sweep",
    "normalized_dependence_sweep",
    "compare_heuristics",
    "compare_weightings",
    "compare_norms",
    "TraceOutcome",
    "replay_trace",
    "monitoring_experiment",
    "TradeoffPoint",
    "pareto_frontier",
    "tradeoff_experiment",
    "requirement_sweep",
    "SystemObservation",
    "population_study",
    "scaling_study",
    "two_kind_analysis_factory",
    "weighting_sensitivity_experiment",
    "compare_placements",
    "EXPERIMENT_REGISTRY",
    "run_experiment",
    "run_all_experiments",
]
