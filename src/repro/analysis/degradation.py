"""Degradation curves: rho as a function of the requirement ``beta``.

The paper's headline artifact is not a point estimate but the *curve* —
how the robustness metric decays as the QoS requirement tightens (E11's
rho-vs-beta sweep).  Every operating point of such a sweep shares all of
its geometry with its neighbours: the mappings, origins, boxes, and norm
are fixed and only the tolerance bounds move.  :func:`degradation_curve`
exploits that by grouping the sweep into *problem families* (one per
feature, plus one per feature x parameter for radius-dependent
weightings), walking each family's operating points in order, and
threading a :class:`~repro.core.solvers.warm.WarmStart` through the
walk so each solve replays the previous point's ray probes instead of
re-evaluating the mapping.  Warm-started radii are bit-identical to
cold solves (pinned by ``tests/core/test_warm_solvers.py`` and
``tests/analysis/test_degradation.py``), so cache entries, reports, and
goldens are unaffected — the sweep is just cheaper.

Families fan out over a process pool when an executor is available;
points stay *ordered within* a family's task, so warm-starts survive
the fan-out (each worker walks its own families serially).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.radius import RadiusProblem, RadiusResult, compute_radius
from repro.core.solvers.warm import WarmStart
from repro.exceptions import SpecificationError
from repro.observability import get_metrics, span
from repro.parallel.executor import Task
from repro.utils.ascii_plot import line_plot

__all__ = ["CurvePoint", "DegradationCurve", "degradation_curve"]


@dataclass(frozen=True)
class CurvePoint:
    """One operating point of a degradation curve.

    Attributes
    ----------
    beta:
        The requirement multiplier this point was evaluated at.
    rho:
        The robustness metric at this requirement: the minimum P-space
        radius over the curve's features, or ``0.0`` at an infeasible
        point (the original operating point already violates a bound —
        there is no robust region left to measure).
    feasible:
        Whether the original operating point satisfies every feature's
        bounds at this requirement.
    radii:
        Per-feature P-space radii (empty at an infeasible point).
    critical:
        Name of the feature attaining ``rho`` (ties: declaration order),
        ``None`` at an infeasible point.
    """

    beta: float
    rho: float
    feasible: bool
    radii: dict
    critical: str | None


@dataclass(frozen=True)
class DegradationCurve:
    """A walked degradation curve plus its warm-start accounting.

    ``stats`` reports ``points`` / ``feasible`` counts, the number of
    problem ``families`` walked, total ``solves`` dispatched, and the
    aggregated ``warm_starts`` / ``warm_hits`` counters (a *hit* is a
    solve whose bracket location needed zero fresh batched mapping
    evaluations).
    """

    feature: str | None
    betas: tuple
    points: tuple
    stats: dict

    def rhos(self) -> list[float]:
        """The rho value of every point, in beta order."""
        return [p.rho for p in self.points]

    def plot(self, *, width: int = 64, height: int = 16,
             title: str | None = None) -> str:
        """ASCII rendering of the curve (needs at least two points)."""
        if title is None:
            what = self.feature if self.feature is not None else "rho"
            title = f"{what} vs beta"
        return line_plot([p.beta for p in self.points], self.rhos(),
                         xlabel="beta", ylabel="rho", title=title,
                         width=width, height=height)


def _walk_family(
    family: str,
    items: Sequence[tuple[float, RadiusProblem]],
    method: str,
    seed,
    use_warm: bool,
    cache,
) -> tuple[list[RadiusResult], dict]:
    """Solve one family's operating points in order, sharing warm state.

    Picklable unit of work: a family walks as *one* task so its points
    stay ordered and the :class:`WarmStart` threads through every solve
    even when families fan out across processes.
    """
    warm = WarmStart() if use_warm else None
    results: list[RadiusResult] | None = None
    if len(items) >= 2 and not isinstance(seed, np.random.Generator):
        # A family shares its whole geometry across points — exactly one
        # ProblemTensor group.  Bisection-tier families ride the tensor
        # kernel: one flattened expansion (or one warm-table replay) and
        # one batched refinement for the entire walk, with the same
        # warm-start accounting the per-point path keeps per bound.
        from repro.core.solvers.tensor import ProblemTensor

        problems = [problem for _, problem in items]
        keys = {ProblemTensor.batch_key(p, method) for p in problems}
        key = keys.pop() if len(keys) == 1 else None
        if key is not None and key[0][0] == "bisection":
            with span("curve.family", family=family, points=len(items)):
                results = _walk_family_tensor(problems, method, seed, warm,
                                              cache)
    if results is None:
        results = []
        for beta, problem in items:
            with span("curve.point", family=family, beta=float(beta)):
                results.append(compute_radius(problem, method=method,
                                              seed=seed, cache=cache,
                                              warm=warm))
    if warm is None:
        return results, {"warm_starts": 0, "warm_hits": 0}
    return results, {"warm_starts": warm.warm_starts,
                     "warm_hits": warm.warm_hits}


def _walk_family_tensor(problems: list[RadiusProblem], method: str, seed,
                        warm: WarmStart | None, cache) -> list[RadiusResult]:
    """One family as one tensor solve, with per-point cache semantics.

    Mirrors ``compute_radius``'s cache behaviour point by point (consult
    before solving, store after), then solves every miss in a single
    :func:`~repro.core.solvers.tensor.solve_problem_tensor` call that
    threads the family's :class:`WarmStart` — the warm ray table binds
    the shared geometry exactly as the per-point walk would bind it.
    """
    from repro.core.solvers.tensor import ProblemTensor, solve_problem_tensor
    from repro.parallel.cache import resolve_cache

    cache = resolve_cache(cache)
    keys: list = [None] * len(problems)
    results: list = [None] * len(problems)
    if cache is not None:
        for i, problem in enumerate(problems):
            keys[i] = cache.key(problem, method=method, seed=seed)
            results[i] = cache.get(keys[i])
    pending = [i for i, r in enumerate(results) if r is None]
    if pending:
        tensor = ProblemTensor.pack([problems[i] for i in pending], method)
        solved = solve_problem_tensor(tensor, seed=seed, warm=warm)
        for i, result in zip(pending, solved):
            results[i] = result
        if cache is not None:
            for i in pending:
                cache.put(keys[i], results[i])
    return results


def _solve_families(
    families: list[tuple[str, list[tuple[float, RadiusProblem]]]],
    analysis: RobustnessAnalysis,
    executor,
    use_warm: bool,
) -> tuple[dict[str, list[RadiusResult]], dict]:
    """Dispatch family walks, fanned out when an executor allows it."""
    totals = {"warm_starts": 0, "warm_hits": 0, "solves": 0}
    out: dict[str, list[RadiusResult]] = {}
    if not families:
        return out, totals
    cache = analysis.radius_cache
    fan_out = (executor is not None
               and getattr(executor, "workers", 1) > 1
               and len(families) > 1
               and not isinstance(analysis.seed, np.random.Generator))
    if fan_out:
        # Workers keep their own default caches (a RadiusCache does not
        # cross process boundaries); an explicit False still disables.
        task_cache = cache if cache is False else None
        from repro.resilience.supervisor import resolve_task_failures

        tasks = [Task(_walk_family, (name, items, analysis.method,
                                     analysis.seed, use_warm, task_cache))
                 for name, items in families]
        solved = resolve_task_failures(executor.run(tasks), tasks,
                                       executor=executor)
    else:
        solved = [_walk_family(name, items, analysis.method, analysis.seed,
                               use_warm, cache)
                  for name, items in families]
    for (name, items), (results, stats) in zip(families, solved):
        out[name] = results
        totals["solves"] += len(items)
        totals["warm_starts"] += stats["warm_starts"]
        totals["warm_hits"] += stats["warm_hits"]
    return out, totals


def degradation_curve(
    analysis: RobustnessAnalysis,
    feature: "FeatureSpec | str | None" = None,
    betas: Sequence[float] = (),
    *,
    bounds_for: Callable[[FeatureSpec, float], ToleranceBounds] | None = None,
    executor=None,
    warm: bool = True,
) -> DegradationCurve:
    """Walk an analysis through a requirement sweep, warm-starting solves.

    For each ``beta``, every curve feature's tolerance bounds are moved
    (by default to ``<-inf, beta * phi_orig>``, the paper's relative
    requirement for upper-bounded features) and the robustness metric is
    recomputed.  Neighbouring operating points share all solver geometry,
    so each per-family walk threads a
    :class:`~repro.core.solvers.warm.WarmStart` through its solves:
    bisection brackets replay the previous points' ray probes, numeric
    multistarts are seeded through the same table, and the results are
    **bit-identical** to cold solves — a 100-point sweep costs about a
    handful of cold solves in mapping evaluations.

    Parameters
    ----------
    analysis:
        The template analysis; it is not mutated.  Its method, norm,
        seed, weighting, physical-bounds flag, and radius cache carry
        over to every operating point.
    feature:
        Restrict the curve to one feature (name or spec).  ``None``
        sweeps every feature and reports ``rho = min_i r(phi_i, P)``.
    betas:
        Requirement multipliers, walked in the order given — pass them
        monotone for the warm-start to pay off.
    bounds_for:
        Optional ``(spec, beta) -> ToleranceBounds`` override for
        features whose requirement is not an upper bound scaled off the
        original value.
    executor:
        Optional :class:`~repro.parallel.executor.ParallelExecutor` for
        per-family fan-out (defaults to the analysis's own); points stay
        ordered within each family's task, so warm-starts survive the
        fan-out.
    warm:
        ``False`` forces cold solves (the bench harness uses this to
        measure the cold baseline; results are identical either way).

    Returns
    -------
    DegradationCurve

    Notes
    -----
    Operating points where the original feature value already violates
    its moved bounds (e.g. ``beta <= 1`` for an upper-bounded feature)
    are reported as infeasible ``rho = 0`` points rather than raising —
    a curve may cross the feasibility boundary.  A configured
    :class:`~repro.resilience.cascade.SolverCascade` is honoured but
    bypasses warm-starting (its retry state is per-solve).
    """
    betas = [float(b) for b in betas]
    if not betas:
        raise SpecificationError("need at least one beta")
    specs = (list(analysis.features) if feature is None
             else [analysis._get_spec(feature)])
    feature_name = None if feature is None else specs[0].name

    with span("analysis.curve", points=len(betas),
              feature=feature_name or "*"):
        phi_orig = {
            spec.name: float(spec.mapping.value(analysis.pi_orig))
            for spec in specs
        }
        if bounds_for is None:
            def bounds_for(spec: FeatureSpec, beta: float) -> ToleranceBounds:
                return ToleranceBounds.upper(beta * phi_orig[spec.name])

        point_bounds = [{spec.name: bounds_for(spec, beta) for spec in specs}
                        for beta in betas]
        feasible = [
            all(bounds[spec.name].contains(phi_orig[spec.name])
                for spec in specs)
            for bounds in point_bounds
        ]
        clones: list[RobustnessAnalysis | None] = [
            analysis.with_feature_bounds(bounds) if ok else None
            for bounds, ok in zip(point_bounds, feasible)
        ]
        get_metrics().inc("curve.points", len(betas))
        get_metrics().inc("curve.infeasible_points",
                          sum(1 for ok in feasible if not ok))

        totals = {"warm_starts": 0, "warm_hits": 0, "solves": 0}
        if analysis.cascade is not None:
            # The cascade owns its own retry/timeout state per solve;
            # walk each operating point through it cold.
            for clone in clones:
                if clone is None:
                    continue
                for spec in specs:
                    # By name: the clone's spec carries this point's
                    # bounds, the template spec the original ones.
                    clone.radius(spec.name)
                    totals["solves"] += 1
        else:
            executor = executor if executor is not None else analysis.executor
            walked = list(enumerate(clones))
            walked = [(i, c) for i, c in walked if c is not None]
            if analysis.weighting.requires_radii:
                # Stage 1 (Eq. 1): per-(feature, parameter) families feed
                # the radius-dependent weighting before any P-space
                # problem can even be built.
                families = []
                for spec in specs:
                    for p in analysis.params:
                        items = [(betas[i],
                                  clone._single_parameter_problem(
                                      clone._get_spec(spec.name), p))
                                 for i, clone in walked]
                        families.append((f"{spec.name}/{p.name}", items))
                solved, stage = _solve_families(families, analysis,
                                                executor, warm)
                for key, value in stage.items():
                    totals[key] += value
                for spec in specs:
                    for p in analysis.params:
                        results = solved[f"{spec.name}/{p.name}"]
                        for (i, clone), result in zip(walked, results):
                            clone._per_param_cache[(spec.name, p.name)] = \
                                result
            # Stage 2 (Eq. 2): per-feature P-space families.
            families = []
            membership: dict[str, list[int]] = {}
            for spec in specs:
                items = []
                members = []
                for i, clone in walked:
                    clone_spec = clone._get_spec(spec.name)
                    if analysis.weighting.requires_radii \
                            and not clone._effective_params(clone_spec)[0]:
                        # Insensitive at this operating point: the clone
                        # reports an infinite radius without solving.
                        continue
                    items.append((betas[i], clone.pspace_problem(clone_spec)))
                    members.append(i)
                if items:
                    families.append((spec.name, items))
                    membership[spec.name] = members
            solved, stage = _solve_families(families, analysis, executor,
                                            warm)
            for key, value in stage.items():
                totals[key] += value
            by_index = {i: clone for i, clone in walked}
            for name, results in solved.items():
                for i, result in zip(membership[name], results):
                    by_index[i]._radius_cache[name] = result

        points = []
        for i, beta in enumerate(betas):
            clone = clones[i]
            if clone is None:
                points.append(CurvePoint(beta=beta, rho=0.0, feasible=False,
                                         radii={}, critical=None))
                continue
            radii = {spec.name: clone.radius(spec.name).radius
                     for spec in specs}
            rho = min(radii.values())
            critical = next(spec.name for spec in specs
                            if radii[spec.name] == rho)
            points.append(CurvePoint(beta=beta, rho=rho, feasible=True,
                                     radii=radii, critical=critical))

        stats = {
            "points": len(betas),
            "feasible": sum(1 for ok in feasible if ok),
            "families": _count_families(analysis, specs, feasible),
        }
        stats.update(totals)
    return DegradationCurve(feature=feature_name, betas=tuple(betas),
                            points=tuple(points), stats=stats)


def _count_families(analysis: RobustnessAnalysis,
                    specs: list[FeatureSpec],
                    feasible: list[bool]) -> int:
    """Number of warm-start families a curve walk decomposes into."""
    if not any(feasible) or analysis.cascade is not None:
        return 0
    n = len(specs)
    if analysis.weighting.requires_radii:
        n += len(specs) * len(analysis.params)
    return n
