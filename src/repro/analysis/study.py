"""Population studies (E12): robustness statistics across system families.

One system's ``rho`` is an anecdote; the measurement campaign the metric
is built for runs it across a *population* of generated systems and asks
structural questions:

* how is ``rho`` distributed for a family of HiPer-D systems?
* which feature family (latency vs throughput) is critical how often?
* how does ``rho`` scale as systems grow (more applications = more
  features = a min over more radii = weakly decreasing robustness)?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.core.weighting import NormalizedWeighting
from repro.exceptions import SpecificationError
from repro.systems.hiperd.constraints import QoSSpec, build_analysis
from repro.systems.hiperd.generator import (
    HiPerDGenerationSpec,
    generate_hiperd_system,
)
from repro.utils.rng import spawn_rngs

__all__ = ["SystemObservation", "population_study", "scaling_study"]


@dataclass(frozen=True)
class SystemObservation:
    """One generated system's robustness observation.

    Attributes
    ----------
    rho:
        The system's robustness metric.
    critical_feature:
        Name of the limiting feature.
    critical_family:
        Its family prefix (``latency`` / ``throughput`` / ...).
    n_features:
        Number of features in the analysis.
    """

    rho: float
    critical_feature: str
    critical_family: str
    n_features: int


def _observe(spec: HiPerDGenerationSpec, qos: QoSSpec, kinds, seed
             ) -> SystemObservation:
    system = generate_hiperd_system(spec, seed=seed)
    analysis = build_analysis(system, qos, kinds=kinds,
                              weighting=NormalizedWeighting(), seed=seed)
    rho = analysis.rho()
    crit = analysis.critical_feature().name
    family = crit.split("[", 1)[0]
    return SystemObservation(rho=rho, critical_feature=crit,
                             critical_family=family,
                             n_features=len(analysis.features))


def population_study(
    *,
    n_systems: int = 20,
    spec: HiPerDGenerationSpec | None = None,
    qos: QoSSpec | None = None,
    kinds=("loads", "msgsize"),
    seed=None,
) -> ExperimentResult:
    """E12a: the distribution of rho over a family of generated systems.

    Parameters
    ----------
    n_systems:
        Population size.
    spec, qos:
        Generation and QoS configuration (defaults are moderate).
    kinds:
        Perturbation kinds for the analyses.
    seed:
        Master seed; per-system seeds are spawned independently.
    """
    if n_systems < 2:
        raise SpecificationError("n_systems must be >= 2")
    spec = spec if spec is not None else HiPerDGenerationSpec()
    qos = qos if qos is not None else QoSSpec(latency_slack=1.4,
                                              throughput_margin=0.9)
    rngs = spawn_rngs(seed, n_systems)
    observations = [
        _observe(spec, qos, kinds, rng) for rng in rngs
    ]
    rhos = np.array([o.rho for o in observations])
    families: dict[str, int] = {}
    for o in observations:
        families[o.critical_family] = families.get(o.critical_family, 0) + 1
    rows = [
        ["systems", n_systems],
        ["rho mean", float(rhos.mean())],
        ["rho std", float(rhos.std())],
        ["rho min", float(rhos.min())],
        ["rho median", float(np.median(rhos))],
        ["rho max", float(rhos.max())],
    ]
    for family, count in sorted(families.items()):
        rows.append([f"critical family = {family}", f"{count}/{n_systems}"])
    return ExperimentResult(
        experiment_id="E12a",
        title=(f"rho distribution over {n_systems} generated HiPer-D "
               f"systems, kinds={tuple(kinds)}"),
        headers=["statistic", "value"],
        rows=rows,
        summary={"dominant critical family":
                 max(families, key=families.get)},
    )


def scaling_study(
    *,
    layer_sizes=((2, 2), (3, 3), (4, 4), (5, 5)),
    systems_per_size: int = 5,
    qos: QoSSpec | None = None,
    kinds=("loads", "msgsize"),
    seed=None,
) -> ExperimentResult:
    """E12b: how rho scales as systems grow.

    Larger systems have more features; since ``rho`` is a minimum over
    per-feature radii, the *population mean* of ``rho`` should be weakly
    decreasing in system size (an extreme-value effect, not a theorem per
    instance — the assertion belongs to the aggregate).
    """
    qos = qos if qos is not None else QoSSpec(latency_slack=1.4,
                                              throughput_margin=0.9)
    rows = []
    means = []
    rngs = spawn_rngs(seed, len(layer_sizes) * systems_per_size)
    rng_iter = iter(rngs)
    for layers in layer_sizes:
        spec = HiPerDGenerationSpec(app_layers=tuple(layers))
        obs = [_observe(spec, qos, kinds, next(rng_iter))
               for _ in range(systems_per_size)]
        rhos = np.array([o.rho for o in obs])
        n_feat = int(np.mean([o.n_features for o in obs]))
        means.append(float(rhos.mean()))
        rows.append(["x".join(map(str, layers)), n_feat,
                     float(rhos.mean()), float(rhos.min()),
                     float(rhos.max())])
    return ExperimentResult(
        experiment_id="E12b",
        title="rho vs system size (min over more features shrinks)",
        headers=["app layers", "mean #features", "mean rho", "min rho",
                 "max rho"],
        rows=rows,
        summary={
            "mean rho, smallest vs largest systems":
                f"{means[0]:.4g} -> {means[-1]:.4g}",
            "monotone non-increasing trend (first vs last)":
                bool(means[-1] <= means[0] + 1e-12),
        },
    )
