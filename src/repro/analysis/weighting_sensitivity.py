"""Weighting-choice sensitivity (E16): why a canonical weighting matters.

The unit problem has no unique answer: *any* positive exchange rate
``alpha_j`` between, say, seconds and bytes produces a dimensionless
concatenation.  But the resulting radius depends on the choice — this
experiment quantifies by how much.  Sweeping one parameter's custom weight
over several decades while holding the rest fixed shows ``rho`` varying by
orders of magnitude, which is exactly why the paper needs a *canonical*
scheme (normalization by originals) rather than leaving alphas to the
modeller's mood.

The limiting behaviour is also instructive and is asserted in tests: as
``alpha_j -> infinity`` moves in parameter ``j`` become arbitrarily
expensive, so the boundary recedes along it and the radius approaches the
radius of the analysis with parameter ``j`` *frozen*; as ``alpha_j -> 0``
moves in ``j`` become free and the radius approaches the cheapest escape
through ``j`` alone (or 0 if ``j`` alone can violate at zero cost).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import CustomWeighting, NormalizedWeighting
from repro.exceptions import SpecificationError
from repro.utils.ascii_plot import line_plot

__all__ = ["weighting_sensitivity_experiment", "two_kind_analysis_factory"]


def two_kind_analysis_factory(*, exec_orig=(2.0, 3.0), msg_orig=(1e4,),
                              bandwidth: float = 1e6, beta: float = 1.3):
    """Factory for the canonical two-kind latency analysis.

    Returns a function ``make(weighting) -> RobustnessAnalysis`` over the
    feature ``latency = e1 + e2 + m/bandwidth`` with relative bound
    ``beta``; used by E16 and the weighting tests.
    """
    exec_orig = tuple(float(v) for v in exec_orig)
    msg_orig = tuple(float(v) for v in msg_orig)

    def make(weighting) -> RobustnessAnalysis:
        exec_p = PerturbationParameter.nonnegative(
            "exec", exec_orig, unit="s")
        msg_p = PerturbationParameter.nonnegative(
            "msg", msg_orig, unit="bytes")
        coeffs = [1.0] * len(exec_orig) + [1.0 / bandwidth] * len(msg_orig)
        mapping = LinearMapping(coeffs)
        phi0 = mapping.value(np.array(exec_orig + msg_orig))
        feature = PerformanceFeature(
            "latency", ToleranceBounds.relative(phi0, beta), unit="s")
        return RobustnessAnalysis([FeatureSpec(feature, mapping)],
                                  [exec_p, msg_p], weighting=weighting)

    return make


def weighting_sensitivity_experiment(
    *,
    alpha_exponents=(-9, -8, -7, -6, -5, -4, -3),
    beta: float = 1.3,
) -> ExperimentResult:
    """E16: rho as a function of an arbitrary custom exchange rate.

    The ``exec`` parameter keeps a fixed weight of 1 (1/second); the
    ``msg`` parameter's weight sweeps ``10^e`` per byte for the given
    exponents.  The default range brackets the scale where a byte-move
    costs about as much P-distance as the feature gains from it
    (``alpha ~ k_msg = 1e-6``): below it the adversary escapes through
    cheap message growth and rho collapses, above it messages are
    effectively frozen and rho saturates at the exec-only radius.  The
    normalized weighting's rho is reported as the canonical reference.

    Parameters
    ----------
    alpha_exponents:
        Decades of the msg-weight sweep.
    beta:
        Relative latency requirement.
    """
    if not alpha_exponents:
        raise SpecificationError("alpha_exponents must be non-empty")
    make = two_kind_analysis_factory(beta=beta)
    reference = make(NormalizedWeighting()).rho()

    rows = []
    rhos = []
    for e in alpha_exponents:
        alpha = 10.0 ** e
        rho = make(CustomWeighting({"exec": 1.0, "msg": alpha})).rho()
        rhos.append(rho)
        rows.append([f"1e{e}", rho, rho / reference])
    spread = max(rhos) / min(rhos)
    plot = line_plot([float(e) for e in alpha_exponents],
                     [float(np.log10(r)) for r in rhos],
                     xlabel="log10(alpha_msg)", ylabel="log10(rho)",
                     title="rho vs the arbitrary bytes<->seconds exchange "
                           "rate", width=60, height=14)
    return ExperimentResult(
        experiment_id="E16",
        title=("weighting-choice sensitivity: rho under custom exchange "
               "rates vs the canonical normalized weighting"),
        headers=["alpha_msg (per byte)", "rho", "rho / rho_normalized"],
        rows=rows,
        summary={
            "rho(normalized reference)": reference,
            "spread across exchange rates (max/min)": spread,
            "plot": "\n" + plot,
        },
    )
