"""Section 3 sweeps: the degeneracy result (E2) and its fix (E3).

Both sweeps draw random instances of the paper's *general linear case*
(random coefficients over several decades, random original values, random
``beta``) and compute the P-space robustness radius two ways:

* through the full pipeline — :class:`RobustnessAnalysis` with
  one-element perturbation parameters and the chosen weighting scheme,
  exercising the generic solvers end to end;
* through the closed forms of :mod:`repro.core.degeneracy`.

E2 confirms the degeneracy: under sensitivity weighting every instance
with the same ``n`` yields radius ``1/sqrt(n)`` regardless of the other
draws.  E3 confirms the fix: under normalized weighting the radius matches
the parameter-dependent closed form and *varies* across instances.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.core.degeneracy import (
    LinearCase,
    normalized_radius_linear,
    sensitivity_radius_linear,
)
from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.mappings import LinearMapping
from repro.core.perturbation import PerturbationParameter
from repro.core.weighting import NormalizedWeighting, SensitivityWeighting
from repro.utils.rng import default_rng

__all__ = [
    "random_linear_case",
    "analysis_for_case",
    "sensitivity_degeneracy_sweep",
    "normalized_dependence_sweep",
]


def random_linear_case(n: int, rng, *, beta: float | None = None,
                       decades: float = 3.0) -> LinearCase:
    """Draw a random linear case with coefficients/originals over decades.

    Parameters
    ----------
    n:
        Number of one-element perturbation parameters.
    rng:
        A NumPy generator.
    beta:
        Fix the requirement; drawn from ``U(1.05, 3)`` when ``None``.
    decades:
        Log-uniform spread of the positive draws (e.g. 3 -> values across
        three orders of magnitude), stressing unit heterogeneity.
    """
    k = 10.0 ** rng.uniform(-decades / 2, decades / 2, size=n)
    orig = 10.0 ** rng.uniform(-decades / 2, decades / 2, size=n)
    if beta is None:
        beta = float(rng.uniform(1.05, 3.0))
    return LinearCase(k, orig, beta)


def analysis_for_case(case: LinearCase, weighting) -> RobustnessAnalysis:
    """Build the full FePIA analysis for a linear case.

    Each ``pi_j`` becomes a one-element perturbation parameter with its own
    (artificial) unit, so only a genuine multi-kind weighting can
    concatenate them — exactly the paper's setting.
    """
    params = [
        PerturbationParameter(
            name=f"pi{j}", original=np.array([case.originals[j]]),
            unit=f"unit{j}")
        for j in range(case.n)
    ]
    mapping = LinearMapping(case.coefficients)
    feature = PerformanceFeature(
        "phi", ToleranceBounds.upper(case.beta_max), unit="mixed")
    return RobustnessAnalysis([FeatureSpec(feature, mapping)], params,
                              weighting=weighting)


def sensitivity_degeneracy_sweep(
    *,
    ns=(2, 3, 4, 8, 16, 32, 64),
    cases_per_n: int = 10,
    seed=None,
) -> ExperimentResult:
    """E2: sensitivity-weighted radii collapse to ``1/sqrt(n)``.

    For every ``n`` and every random instance, computes the radius via the
    full pipeline and via the un-simplified closed form, and reports the
    spread across instances (which the paper predicts to be zero).
    """
    rng = default_rng(seed)
    rows = []
    worst_dev = 0.0
    worst_spread = 0.0
    for n in ns:
        radii = []
        closed = []
        for _ in range(cases_per_n):
            case = random_linear_case(n, rng)
            ana = analysis_for_case(case, SensitivityWeighting())
            radii.append(ana.rho())
            closed.append(sensitivity_radius_linear(case))
        radii = np.array(radii)
        expect = 1.0 / math.sqrt(n)
        dev = float(np.max(np.abs(radii - expect)) / expect)
        spread = float(radii.max() - radii.min())
        worst_dev = max(worst_dev, dev)
        worst_spread = max(worst_spread, spread)
        rows.append([n, expect, float(radii.min()), float(radii.max()),
                     spread, dev,
                     float(np.max(np.abs(np.array(closed) - expect)))])
    return ExperimentResult(
        experiment_id="E2",
        title=("sensitivity weighting degeneracy: radius = 1/sqrt(n) "
               "independent of k, beta, originals (Sec. 3.1)"),
        headers=["n", "1/sqrt(n)", "min radius", "max radius",
                 "spread", "max rel dev (pipeline)", "max dev (closed form)"],
        rows=rows,
        summary={
            "worst relative deviation from 1/sqrt(n)": worst_dev,
            "worst spread across random instances": worst_spread,
        },
    )


def normalized_dependence_sweep(
    *,
    ns=(2, 3, 4, 8, 16),
    cases_per_n: int = 10,
    seed=None,
) -> ExperimentResult:
    """E3: the normalized radius matches its closed form *and* varies.

    Reports, per ``n``, the pipeline-vs-closed-form agreement and the
    across-instance spread (which must now be substantial — the measure
    distinguishes systems again).
    """
    rng = default_rng(seed)
    rows = []
    worst_err = 0.0
    min_spread = math.inf
    for n in ns:
        radii = []
        errs = []
        for _ in range(cases_per_n):
            case = random_linear_case(n, rng)
            ana = analysis_for_case(case, NormalizedWeighting())
            r_pipe = ana.rho()
            r_closed = normalized_radius_linear(case)
            radii.append(r_pipe)
            errs.append(abs(r_pipe - r_closed) / r_closed)
        radii = np.array(radii)
        spread = float(radii.max() - radii.min())
        rel_spread = spread / float(radii.mean())
        worst_err = max(worst_err, float(np.max(errs)))
        min_spread = min(min_spread, rel_spread)
        rows.append([n, float(radii.min()), float(radii.max()), spread,
                     rel_spread, float(np.max(errs))])
    return ExperimentResult(
        experiment_id="E3",
        title=("normalized weighting: radius matches the closed form and "
               "varies with k, beta, originals (Sec. 3.2)"),
        headers=["n", "min radius", "max radius", "spread",
                 "relative spread", "max rel err vs closed form"],
        rows=rows,
        summary={
            "worst pipeline-vs-closed-form relative error": worst_err,
            "smallest relative spread across instances": min_spread,
        },
    )
