"""Run the complete experiment suite programmatically.

:func:`run_all_experiments` executes every registered experiment at a
configurable (reduced-by-default) scale and returns the results; the CLI's
``experiments`` command uses it to regenerate a full report in one go, and
the tests use the registry to guarantee every DESIGN.md experiment id has
a runnable implementation.
"""

from __future__ import annotations

import logging
from typing import Callable, Mapping, Sequence

from repro.analysis.experiments import ExperimentResult
from repro.exceptions import SpecificationError
from repro.observability import span
from repro.parallel.executor import Task, shared_executor
from repro.resilience.checkpoint import run_checkpointed

__all__ = ["EXPERIMENT_REGISTRY", "run_experiment", "run_all_experiments"]

logger = logging.getLogger(__name__)


def _e2(seed) -> ExperimentResult:
    from repro.analysis.linear_case import sensitivity_degeneracy_sweep
    return sensitivity_degeneracy_sweep(ns=(2, 4, 8, 16), cases_per_n=5,
                                        seed=seed)


def _e3(seed) -> ExperimentResult:
    from repro.analysis.linear_case import normalized_dependence_sweep
    return normalized_dependence_sweep(ns=(2, 4, 8), cases_per_n=5,
                                       seed=seed)


def _e5(seed) -> ExperimentResult:
    from repro.analysis.comparison import compare_heuristics
    from repro.systems.independent import generate_etc_gamma
    etc = generate_etc_gamma(20, 5, seed=seed)
    return compare_heuristics(etc, tau_factor=1.3, seed=seed)


def _hiperd(seed):
    from repro.systems.hiperd import QoSSpec, generate_hiperd_system
    return (generate_hiperd_system(seed=seed),
            QoSSpec(latency_slack=1.4, throughput_margin=0.9))


def _e6(seed) -> ExperimentResult:
    from repro.analysis.comparison import compare_weightings
    system, qos = _hiperd(seed)
    return compare_weightings(system, qos, kinds=("loads", "msgsize"),
                              seed=seed)


def _e8(seed) -> ExperimentResult:
    from repro.analysis.comparison import compare_norms
    system, qos = _hiperd(seed)
    return compare_norms(system, qos, seed=seed)


def _e9(seed) -> ExperimentResult:
    from repro.analysis.monitoring import monitoring_experiment
    from repro.systems.hiperd.constraints import build_analysis
    system, qos = _hiperd(seed)
    analysis = build_analysis(system, qos, kinds=("loads",), seed=seed)
    return monitoring_experiment(system, analysis, n_steps=40, seed=seed)


def _e10(seed) -> ExperimentResult:
    from repro.analysis.tradeoff import tradeoff_experiment
    from repro.systems.independent import generate_etc_gamma
    etc = generate_etc_gamma(14, 4, seed=seed)
    return tradeoff_experiment(etc, n_random=6, sa_weights=(0.0, 0.5, 1.0),
                               seed=seed)


def _e11(seed) -> ExperimentResult:
    from repro.analysis.requirement_sweep import requirement_sweep
    return requirement_sweep([2.0, 3.0, 0.5], [4.0, 2.0, 10.0])


def _e12(seed) -> ExperimentResult:
    from repro.analysis.study import population_study
    from repro.systems.hiperd.generator import HiPerDGenerationSpec
    spec = HiPerDGenerationSpec(n_sensors=2, n_actuators=1, n_machines=3,
                                app_layers=(2, 2))
    return population_study(n_systems=6, spec=spec, seed=seed)


def _e16(seed) -> ExperimentResult:
    from repro.analysis.weighting_sensitivity import (
        weighting_sensitivity_experiment,
    )
    return weighting_sensitivity_experiment()


#: Registered experiment implementations, keyed by DESIGN.md id.  The
#: figure/validation/failure experiments (E1, E4, E7, E13-E15, E17) live
#: in the benchmark harness because their primary outputs are figures,
#: confusion tables, or timings rather than an ExperimentResult.
EXPERIMENT_REGISTRY: Mapping[str, Callable[[int], ExperimentResult]] = {
    "E2": _e2,
    "E3": _e3,
    "E5": _e5,
    "E6": _e6,
    "E8": _e8,
    "E9": _e9,
    "E10": _e10,
    "E11": _e11,
    "E12": _e12,
    "E16": _e16,
}


def run_experiment(experiment_id: str, *, seed: int = 2005
                   ) -> ExperimentResult:
    """Run one registered experiment by its DESIGN.md id."""
    try:
        fn = EXPERIMENT_REGISTRY[experiment_id]
    except KeyError as exc:
        raise SpecificationError(
            f"unknown experiment {experiment_id!r}; registered: "
            f"{sorted(EXPERIMENT_REGISTRY)}") from exc
    logger.info("running experiment %s (seed=%s)", experiment_id, seed)
    with span("experiment", id=experiment_id, seed=seed):
        return fn(seed)


def run_all_experiments(
    *,
    seed: int = 2005,
    ids: Sequence[str] | None = None,
    checkpoint_path=None,
    resume: bool = True,
    checkpoint_every: int = 1,
    workers: int = 1,
    executor=None,
) -> dict[str, ExperimentResult]:
    """Run every registered experiment; returns results keyed by id.

    Parameters
    ----------
    seed:
        Master seed passed to every experiment.
    ids:
        Optional subset of experiment ids (validated against the
        registry); defaults to all of them.
    checkpoint_path:
        Optional checkpoint file.  Each finished experiment is persisted
        there (via :mod:`repro.io.serialize`) so a killed sweep resumes
        from the last completed experiment instead of starting over.
    resume:
        Whether to load an existing checkpoint at ``checkpoint_path``.
    checkpoint_every:
        Persist after this many freshly completed experiments.
    workers:
        Run experiments concurrently over this many worker processes.
        Every experiment seeds itself from the master ``seed``
        independently, so the results are bit-identical to a serial run;
        checkpoints written under either mode resume under the other.
        The worker pool comes from
        :func:`~repro.parallel.executor.shared_executor` — repeated
        sweeps in one process reuse a single warm pool instead of paying
        process spawning per call.
    executor:
        Explicit :class:`~repro.parallel.executor.ParallelExecutor` to
        use instead of the shared one (the caller keeps ownership and
        must close it).
    """
    from repro.io.serialize import from_dict, to_dict

    if ids is None:
        ids = sorted(EXPERIMENT_REGISTRY,
                     key=lambda e: int(e[1:].rstrip("ab")))
    else:
        unknown = [e for e in ids if e not in EXPERIMENT_REGISTRY]
        if unknown:
            raise SpecificationError(
                f"unknown experiment ids {unknown}; registered: "
                f"{sorted(EXPERIMENT_REGISTRY)}")
    items = [(eid, Task(run_experiment, (eid,), {"seed": seed}))
             for eid in ids]
    meta = {"kind": "experiment-sweep", "seed": int(seed),
            "ids": list(ids)}
    if executor is not None:
        pool = executor
    elif workers > 1:
        pool = shared_executor(workers)
    else:
        pool = None
    return run_checkpointed(
        items, path=checkpoint_path, meta=meta, every=checkpoint_every,
        resume=resume, encode=to_dict, decode=from_dict, executor=pool)
