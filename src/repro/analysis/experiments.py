"""Shared experiment-result container.

Every experiment returns an :class:`ExperimentResult`: a named table
(headers + rows) plus free-form scalar summaries, so the benchmark harness
can print the same rows the paper's derivations imply and
``EXPERIMENTS.md`` can record paper-vs-measured values uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.utils.tables import format_table

__all__ = ["ExperimentResult"]


@dataclass(frozen=True)
class ExperimentResult:
    """A tabular experiment outcome.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md experiment id (e.g. ``"E2"``).
    title:
        Human-readable experiment description.
    headers:
        Column names of the result table.
    rows:
        The result rows.
    summary:
        Scalar takeaways keyed by name (e.g. the max deviation from a
        closed form).
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: Sequence[Sequence[Any]]
    summary: dict[str, Any] = field(default_factory=dict)

    def to_table(self, *, float_fmt: str = ".6g") -> str:
        """Render the result as an aligned text table with the summary."""
        out = format_table(self.headers, self.rows, float_fmt=float_fmt,
                           title=f"[{self.experiment_id}] {self.title}")
        if self.summary:
            lines = [f"  {k} = {v}" for k, v in self.summary.items()]
            out += "\nsummary:\n" + "\n".join(lines)
        return out

    def __str__(self) -> str:
        return self.to_table()
