"""Dictionary/JSON serialization for the core object model.

The format is a tagged tree: every serialised object is a dict with a
``"type"`` key naming its class and the remaining keys holding its state
(NumPy arrays as nested lists).  ``from_dict`` inverts ``to_dict``
exactly; round-tripping is covered by property-based tests.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.core.diagnostics import Quality, SolverAttempt
from repro.core.features import PerformanceFeature, ToleranceBounds
from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.radius import RadiusResult
from repro.core.weighting import (
    CustomWeighting,
    IdentityWeighting,
    NormalizedWeighting,
    SensitivityWeighting,
    WeightingScheme,
)
from repro.core.mappings import (
    FeatureMapping,
    LinearMapping,
    MaxMapping,
    ProductMapping,
    QuadraticMapping,
    RestrictedMapping,
    ReweightedMapping,
    SumMapping,
)
from repro.core.perturbation import PerturbationParameter
from repro.exceptions import SpecificationError
from repro.systems.hiperd.model import (
    Actuator,
    Application,
    HiPerDSystem,
    Machine,
    Message,
    Sensor,
)
from repro.systems.independent.allocation import Allocation
from repro.systems.independent.etc import EtcMatrix

__all__ = ["to_dict", "from_dict", "dump_json", "load_json"]


def _arr(a: np.ndarray | None):
    return None if a is None else np.asarray(a).tolist()


def _num(x: float):
    """JSON-safe float: non-finite values become strings, round-tripped."""
    if math.isnan(x):
        return "nan"
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    return float(x)


def _unnum(x) -> float:
    if x == "nan":
        return math.nan
    if x == "inf":
        return math.inf
    if x == "-inf":
        return -math.inf
    return float(x)


def _cell(c):
    """JSON-safe table cell: NumPy scalars unboxed, non-finite floats
    string-encoded, everything else passed through."""
    if isinstance(c, (bool, np.bool_)):
        return bool(c)
    if isinstance(c, (float, np.floating)):
        return _num(float(c))
    if isinstance(c, (int, np.integer)):
        return int(c)
    return c


def _uncell(c):
    return _unnum(c) if c in ("nan", "inf", "-inf") else c


# ----------------------------------------------------------------------
# to_dict
# ----------------------------------------------------------------------
def to_dict(obj: Any) -> dict:
    """Serialise a supported object into its tagged dictionary form.

    Raises
    ------
    SpecificationError
        For unsupported objects (including :class:`CallableMapping`, which
        has no portable representation).
    """
    if isinstance(obj, ToleranceBounds):
        return {"type": "ToleranceBounds",
                "beta_min": _num(obj.beta_min), "beta_max": _num(obj.beta_max)}
    if isinstance(obj, PerformanceFeature):
        return {"type": "PerformanceFeature", "name": obj.name,
                "bounds": to_dict(obj.bounds), "unit": obj.unit,
                "description": obj.description}
    if isinstance(obj, PerturbationParameter):
        return {"type": "PerturbationParameter", "name": obj.name,
                "original": _arr(obj.original), "unit": obj.unit,
                "lower": _arr(obj.lower), "upper": _arr(obj.upper),
                "description": obj.description}
    if isinstance(obj, LinearMapping):
        return {"type": "LinearMapping",
                "coefficients": _arr(obj.coefficients),
                "constant": obj.constant}
    if isinstance(obj, QuadraticMapping):
        return {"type": "QuadraticMapping", "quadratic": _arr(obj.quadratic),
                "linear": _arr(obj.linear), "constant": obj.constant}
    if isinstance(obj, ProductMapping):
        return {"type": "ProductMapping", "powers": _arr(obj.powers),
                "coefficient": obj.coefficient}
    if isinstance(obj, MaxMapping):
        return {"type": "MaxMapping",
                "components": [to_dict(c) for c in obj.components]}
    if isinstance(obj, SumMapping):
        return {"type": "SumMapping",
                "components": [to_dict(c) for c in obj.components]}
    if isinstance(obj, RestrictedMapping):
        return {"type": "RestrictedMapping", "base": to_dict(obj.base),
                "free_indices": obj.free_indices.tolist(),
                "reference": _arr(obj.reference)}
    if isinstance(obj, ReweightedMapping):
        return {"type": "ReweightedMapping", "base": to_dict(obj.base),
                "alphas": _arr(obj.alphas)}
    if isinstance(obj, FeatureSpec):
        return {"type": "FeatureSpec", "feature": to_dict(obj.feature),
                "mapping": to_dict(obj.mapping)}
    if isinstance(obj, IdentityWeighting):
        return {"type": "IdentityWeighting"}
    if isinstance(obj, NormalizedWeighting):
        return {"type": "NormalizedWeighting"}
    if isinstance(obj, SensitivityWeighting):
        return {"type": "SensitivityWeighting"}
    if isinstance(obj, CustomWeighting):
        return {"type": "CustomWeighting",
                "alphas": {k: (_arr(v) if isinstance(v, np.ndarray)
                               else (list(v) if isinstance(v, (list, tuple))
                                     else float(v)))
                           for k, v in obj._alphas.items()}}
    if isinstance(obj, RobustnessAnalysis):
        return {
            "type": "RobustnessAnalysis",
            "features": [to_dict(s) for s in obj.features],
            "params": [to_dict(p) for p in obj.params],
            "weighting": to_dict(obj.weighting),
            "respect_physical_bounds": obj.respect_physical_bounds,
            "method": obj.method,
            "norm": _num(obj.norm) if obj.norm not in (1, 2) else obj.norm,
            "solver_timeout": obj.solver_timeout,
        }
    if isinstance(obj, SolverAttempt):
        return {"type": "SolverAttempt", "solver": obj.solver,
                "bound": None if obj.bound is None else _num(obj.bound),
                "attempt": obj.attempt, "elapsed": obj.elapsed,
                "outcome": obj.outcome, "detail": obj.detail}
    if isinstance(obj, RadiusResult):
        return {
            "type": "RadiusResult",
            "radius": _num(obj.radius),
            "boundary_point": _arr(obj.boundary_point),
            "bound_hit": None if obj.bound_hit is None else _num(obj.bound_hit),
            "method": obj.method,
            "original_value": _num(obj.original_value),
            "per_bound": [[_num(k), _num(v)] for k, v in obj.per_bound.items()],
            "quality": obj.quality.value,
            "diagnostics": [to_dict(a) for a in obj.diagnostics],
        }
    if isinstance(obj, ExperimentResult):
        return {
            "type": "ExperimentResult",
            "experiment_id": obj.experiment_id,
            "title": obj.title,
            "headers": list(obj.headers),
            "rows": [[_cell(c) for c in row] for row in obj.rows],
            "summary": {k: _cell(v) for k, v in obj.summary.items()},
        }
    if isinstance(obj, EtcMatrix):
        return {"type": "EtcMatrix", "values": _arr(obj.values)}
    if isinstance(obj, Allocation):
        return {"type": "Allocation", "assignment": obj.assignment.tolist(),
                "n_machines": obj.n_machines}
    if isinstance(obj, HiPerDSystem):
        return {
            "type": "HiPerDSystem",
            "machines": [{"name": m.name, "speed": m.speed}
                         for m in obj.machines],
            "sensors": [{"name": s.name, "load": s.load, "period": s.period}
                        for s in obj.sensors],
            "applications": [{"name": a.name, "complexity": a.complexity}
                             for a in obj.applications],
            "actuators": [{"name": a.name} for a in obj.actuators],
            "messages": [{"src": m.src, "dst": m.dst, "size": m.size}
                         for m in obj.messages],
            "allocation": dict(obj.allocation),
            "bandwidths": [[list(k), v] for k, v in obj.bandwidths.items()],
            "default_bandwidth": obj.default_bandwidth,
        }
    if isinstance(obj, FeatureMapping):
        raise SpecificationError(
            f"{type(obj).__name__} cannot be serialised: arbitrary Python "
            "callables have no portable representation; use a structural "
            "mapping (Linear/Quadratic/Product/Max/Sum)")
    raise SpecificationError(
        f"unsupported object for serialization: {type(obj).__name__}")


# ----------------------------------------------------------------------
# from_dict
# ----------------------------------------------------------------------
def from_dict(data: dict) -> Any:
    """Reconstruct an object from its tagged dictionary form."""
    if not isinstance(data, dict) or "type" not in data:
        raise SpecificationError(
            f"not a serialised object (missing 'type'): {data!r}")
    t = data["type"]
    if t == "ToleranceBounds":
        return ToleranceBounds(_unnum(data["beta_min"]),
                               _unnum(data["beta_max"]))
    if t == "PerformanceFeature":
        return PerformanceFeature(
            name=data["name"], bounds=from_dict(data["bounds"]),
            unit=data.get("unit", ""),
            description=data.get("description", ""))
    if t == "PerturbationParameter":
        return PerturbationParameter(
            name=data["name"], original=np.asarray(data["original"]),
            unit=data.get("unit", ""),
            lower=None if data.get("lower") is None else np.asarray(data["lower"]),
            upper=None if data.get("upper") is None else np.asarray(data["upper"]),
            description=data.get("description", ""))
    if t == "LinearMapping":
        return LinearMapping(np.asarray(data["coefficients"]),
                             data.get("constant", 0.0))
    if t == "QuadraticMapping":
        return QuadraticMapping(np.asarray(data["quadratic"]),
                                np.asarray(data["linear"]),
                                data.get("constant", 0.0))
    if t == "ProductMapping":
        return ProductMapping(np.asarray(data["powers"]),
                              data.get("coefficient", 1.0))
    if t == "MaxMapping":
        return MaxMapping([from_dict(c) for c in data["components"]])
    if t == "SumMapping":
        return SumMapping([from_dict(c) for c in data["components"]])
    if t == "RestrictedMapping":
        return RestrictedMapping(from_dict(data["base"]),
                                 np.asarray(data["free_indices"]),
                                 np.asarray(data["reference"]))
    if t == "ReweightedMapping":
        return ReweightedMapping(from_dict(data["base"]),
                                 np.asarray(data["alphas"]))
    if t == "FeatureSpec":
        return FeatureSpec(from_dict(data["feature"]),
                           from_dict(data["mapping"]))
    if t == "IdentityWeighting":
        return IdentityWeighting()
    if t == "NormalizedWeighting":
        return NormalizedWeighting()
    if t == "SensitivityWeighting":
        return SensitivityWeighting()
    if t == "CustomWeighting":
        return CustomWeighting({k: (v if np.isscalar(v) else np.asarray(v))
                                for k, v in data["alphas"].items()})
    if t == "RobustnessAnalysis":
        norm = data.get("norm", 2)
        return RobustnessAnalysis(
            [from_dict(s) for s in data["features"]],
            [from_dict(p) for p in data["params"]],
            weighting=from_dict(data["weighting"]),
            respect_physical_bounds=data.get("respect_physical_bounds",
                                             False),
            method=data.get("method", "auto"),
            norm=_unnum(norm) if isinstance(norm, str) else norm,
            solver_timeout=data.get("solver_timeout"),
        )
    if t == "SolverAttempt":
        bound = data.get("bound")
        return SolverAttempt(
            solver=data["solver"],
            bound=None if bound is None else _unnum(bound),
            attempt=int(data["attempt"]), elapsed=float(data["elapsed"]),
            outcome=data["outcome"], detail=data.get("detail", ""))
    if t == "RadiusResult":
        bp = data.get("boundary_point")
        bh = data.get("bound_hit")
        return RadiusResult(
            radius=_unnum(data["radius"]),
            boundary_point=None if bp is None else np.asarray(
                bp, dtype=np.float64),
            bound_hit=None if bh is None else _unnum(bh),
            method=data["method"],
            original_value=_unnum(data["original_value"]),
            per_bound={_unnum(k): _unnum(v)
                       for k, v in data.get("per_bound", [])},
            quality=Quality(data.get("quality", "exact")),
            diagnostics=tuple(from_dict(a)
                              for a in data.get("diagnostics", [])))
    if t == "ExperimentResult":
        return ExperimentResult(
            experiment_id=data["experiment_id"],
            title=data["title"],
            headers=list(data["headers"]),
            rows=[[_uncell(c) for c in row] for row in data["rows"]],
            summary={k: _uncell(v) for k, v in data.get("summary",
                                                        {}).items()})
    if t == "EtcMatrix":
        return EtcMatrix(np.asarray(data["values"]))
    if t == "Allocation":
        return Allocation(np.asarray(data["assignment"], dtype=np.intp),
                          int(data["n_machines"]))
    if t == "HiPerDSystem":
        return HiPerDSystem(
            machines=[Machine(**m) for m in data["machines"]],
            sensors=[Sensor(**s) for s in data["sensors"]],
            applications=[Application(**a) for a in data["applications"]],
            actuators=[Actuator(**a) for a in data["actuators"]],
            messages=[Message(**m) for m in data["messages"]],
            allocation={k: int(v) for k, v in data["allocation"].items()},
            bandwidths={tuple(k): v for k, v in data["bandwidths"]},
            default_bandwidth=data.get("default_bandwidth", 1e6),
        )
    raise SpecificationError(f"unknown serialised type {t!r}")


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
def dump_json(obj: Any, path) -> None:
    """Serialise ``obj`` and write it as pretty-printed JSON to ``path``."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_dict(obj), indent=2), encoding="utf-8")


def load_json(path) -> Any:
    """Read a JSON file written by :func:`dump_json` and reconstruct it."""
    path = pathlib.Path(path)
    return from_dict(json.loads(path.read_text(encoding="utf-8")))
