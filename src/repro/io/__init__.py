"""Serialization: save and load analyses, systems, and reports as JSON.

Every core object has a stable dictionary form, so robustness studies can
be archived, diffed, and re-run:

* :func:`to_dict` / :func:`from_dict` — recursive conversion dispatching
  on a ``"type"`` tag;
* :func:`dump_json` / :func:`load_json` — file-level convenience.

Mappings serialise structurally (:class:`LinearMapping` coefficients,
:class:`QuadraticMapping` matrices, ...); :class:`CallableMapping` is
rejected with a clear error because arbitrary Python callables have no
faithful portable representation.
"""

from repro.io.serialize import dump_json, from_dict, load_json, to_dict

__all__ = ["to_dict", "from_dict", "dump_json", "load_json"]
