"""Soundness and tightness validation of computed radii.

Given a :class:`~repro.core.radius.RadiusProblem` and the
:class:`~repro.core.radius.RadiusResult` a solver produced for it:

* **soundness** — sample points at distances up to ``(1 - margin) * r``
  from the origin; none may violate the tolerance interval.  A violation
  inside the ball refutes the radius (it is too large).
* **tightness** — the witness boundary point must satisfy
  ``f(witness) ~= bound_hit``, its distance must equal the radius, and
  stepping slightly *past* the witness along the witness direction must
  violate the interval (so the radius is not needlessly small).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.fepia import RobustnessAnalysis
from repro.core.radius import RadiusProblem, RadiusResult
from repro.core.solvers.sampling import sampling_upper_bound
from repro.exceptions import SpecificationError
from repro.utils.linalg import vector_norm

__all__ = ["RadiusValidation", "validate_radius", "validate_analysis"]


@dataclass(frozen=True)
class RadiusValidation:
    """Outcome of validating one radius claim.

    Attributes
    ----------
    sound:
        No sampled point strictly inside the ball violated the interval.
    tight:
        The witness lies on the claimed boundary at the claimed distance,
        and overshooting it violates (``True`` vacuously for infinite
        radii, which have no witness).
    n_samples:
        Points used for the soundness search.
    min_violation_distance:
        Closest sampled violation (``inf`` if none) — must exceed the
        claimed radius for a sound result.
    witness_value_error:
        ``|f(witness) - bound_hit|`` (``0`` for infinite radii).
    witness_distance_error:
        ``| ||witness - origin|| - radius |`` (``0`` for infinite radii).
    """

    sound: bool
    tight: bool
    n_samples: int
    min_violation_distance: float
    witness_value_error: float
    witness_distance_error: float

    @property
    def passed(self) -> bool:
        """Both soundness and tightness hold."""
        return self.sound and self.tight


def validate_radius(
    problem: RadiusProblem,
    result: RadiusResult,
    *,
    n_samples: int = 20000,
    margin: float = 1e-6,
    overshoot: float = 1e-3,
    value_rtol: float = 1e-6,
    distance_rtol: float = 1e-6,
    seed=None,
) -> RadiusValidation:
    """Validate a radius claim by sampling and witness inspection.

    Parameters
    ----------
    problem, result:
        The radius computation and its claimed answer.
    n_samples:
        Monte-Carlo sample count for the soundness half.
    margin:
        Relative shrink of the ball sampled for soundness (guards the
        open-ball semantics against float round-off).
    overshoot:
        Relative step past the witness for the violation probe.
    value_rtol, distance_rtol:
        Tolerances for the witness checks.
    seed:
        RNG seed.
    """
    if not 0 <= margin < 1:
        raise SpecificationError(f"margin must be in [0, 1), got {margin}")
    radius = result.radius

    # ---- soundness -----------------------------------------------------
    if radius == 0.0 or not math.isfinite(radius):
        # Zero radius: the open ball is empty, trivially sound.  Infinite
        # radius: sample a wide ball around the origin scale instead —
        # finding any violation refutes the infinity claim outright.
        if math.isinf(radius):
            probe = 10.0 * max(1.0, float(np.linalg.norm(problem.origin)))
            report = sampling_upper_bound(
                problem.mapping, problem.origin, problem.bounds,
                max_distance=probe, n_samples=n_samples, norm=problem.norm,
                lower=problem.lower, upper=problem.upper, seed=seed)
            sound = report.n_violations == 0
            min_viol = report.min_violation_distance
            n_used = report.n_samples
        else:
            sound, min_viol, n_used = True, math.inf, 0
    else:
        report = sampling_upper_bound(
            problem.mapping, problem.origin, problem.bounds,
            max_distance=radius * (1.0 - margin), n_samples=n_samples,
            norm=problem.norm, lower=problem.lower, upper=problem.upper,
            seed=seed)
        sound = report.n_violations == 0
        min_viol = report.min_violation_distance
        n_used = report.n_samples

    # ---- tightness -----------------------------------------------------
    if result.boundary_point is None:
        tight = not math.isfinite(radius)  # finite radius must carry a witness
        value_err = 0.0
        dist_err = 0.0
    else:
        witness = np.asarray(result.boundary_point, dtype=np.float64)
        f_w = problem.mapping.value(witness)
        bound = result.bound_hit if result.bound_hit is not None else f_w
        value_err = abs(f_w - bound)
        d_w = vector_norm(witness - problem.origin, problem.norm)
        dist_err = abs(d_w - radius)
        scale_v = 1.0 + abs(bound)
        scale_d = 1.0 + radius
        tight = (value_err <= value_rtol * scale_v
                 and dist_err <= distance_rtol * scale_d)
        if tight and radius > 0:
            # Overshoot probe: just past the witness must violate (use the
            # strict-containment check so landing exactly on the boundary
            # does not count as a violation).
            direction = (witness - problem.origin) / max(d_w, 1e-300)
            beyond = problem.origin + direction * d_w * (1.0 + overshoot)
            tight = not problem.bounds.contains(
                problem.mapping.value(beyond), strict=True)
    return RadiusValidation(
        sound=bool(sound),
        tight=bool(tight),
        n_samples=n_used,
        min_violation_distance=float(min_viol),
        witness_value_error=float(value_err),
        witness_distance_error=float(dist_err),
    )


def validate_analysis(
    analysis: RobustnessAnalysis,
    *,
    n_samples: int = 20000,
    seed=None,
) -> dict[str, RadiusValidation]:
    """Validate every feature's P-space radius of an analysis.

    Returns a dict from feature name to its :class:`RadiusValidation`.
    """
    out: dict[str, RadiusValidation] = {}
    for spec in analysis.features:
        result = analysis.radius(spec)
        try:
            problem = analysis.pspace_problem(spec)
        except SpecificationError:
            # Feature insensitive to every parameter (empty P-space under
            # sensitivity weighting): infinite radius, vacuously valid.
            out[spec.name] = RadiusValidation(
                sound=True, tight=True, n_samples=0,
                min_violation_distance=math.inf,
                witness_value_error=0.0, witness_distance_error=0.0)
            continue
        out[spec.name] = validate_radius(
            problem, result, n_samples=n_samples, seed=seed)
    return out
