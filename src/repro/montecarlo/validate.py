"""Soundness and tightness validation of computed radii.

Given a :class:`~repro.core.radius.RadiusProblem` and the
:class:`~repro.core.radius.RadiusResult` a solver produced for it:

* **soundness** — sample points at distances up to ``(1 - margin) * r``
  from the origin; none may violate the tolerance interval.  A violation
  inside the ball refutes the radius (it is too large).
* **tightness** — the witness boundary point must satisfy
  ``f(witness) ~= bound_hit``, its distance must equal the radius, and
  stepping slightly *past* the witness along the witness direction must
  violate the interval (so the radius is not needlessly small).
"""

from __future__ import annotations

import logging
import math
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.fepia import RobustnessAnalysis
from repro.core.radius import RadiusProblem, RadiusResult
from repro.core.solvers.sampling import SamplingReport, sampling_upper_bound
from repro.exceptions import SpecificationError
from repro.observability import span
from repro.parallel.executor import Task, executor_scope
from repro.resilience.checkpoint import run_checkpointed
from repro.utils.linalg import vector_norm
from repro.utils.rng import spawn_rngs

__all__ = ["RadiusValidation", "validate_radius", "validate_analysis"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RadiusValidation:
    """Outcome of validating one radius claim.

    Attributes
    ----------
    sound:
        No sampled point strictly inside the ball violated the interval.
    tight:
        The witness lies on the claimed boundary at the claimed distance,
        and overshooting it violates (``True`` vacuously for infinite
        radii, which have no witness).
    n_samples:
        Points used for the soundness search.
    min_violation_distance:
        Closest sampled violation (``inf`` if none) — must exceed the
        claimed radius for a sound result.
    witness_value_error:
        ``|f(witness) - bound_hit|`` (``0`` for infinite radii).
    witness_distance_error:
        ``| ||witness - origin|| - radius |`` (``0`` for infinite radii).
    """

    sound: bool
    tight: bool
    n_samples: int
    min_violation_distance: float
    witness_value_error: float
    witness_distance_error: float

    @property
    def passed(self) -> bool:
        """Both soundness and tightness hold."""
        return self.sound and self.tight


def _report_to_payload(report: SamplingReport) -> dict:
    """JSON-safe encoding of a :class:`SamplingReport` chunk."""
    cv = report.closest_violation
    return {
        "n_samples": int(report.n_samples),
        "n_violations": int(report.n_violations),
        "min_violation_distance": (
            None if math.isinf(report.min_violation_distance)
            else float(report.min_violation_distance)),
        "closest_violation": None if cv is None else [float(v) for v in cv],
    }


def _report_from_payload(payload: dict) -> SamplingReport:
    """Inverse of :func:`_report_to_payload`."""
    cv = payload["closest_violation"]
    mvd = payload["min_violation_distance"]
    return SamplingReport(
        n_samples=int(payload["n_samples"]),
        n_violations=int(payload["n_violations"]),
        min_violation_distance=math.inf if mvd is None else float(mvd),
        closest_violation=None if cv is None else np.asarray(
            cv, dtype=np.float64))


def _sampling_chunk(problem: RadiusProblem, max_distance: float,
                    size: int, rng) -> SamplingReport:
    """One soundness-sampling chunk (picklable for the process pool)."""
    with span("validate.chunk", samples=size):
        return sampling_upper_bound(
            problem.mapping, problem.origin, problem.bounds,
            max_distance=max_distance, n_samples=size,
            norm=problem.norm, lower=problem.lower, upper=problem.upper,
            seed=rng)


def _soundness_reports(
    problem: RadiusProblem,
    max_distance: float,
    *,
    n_samples: int,
    chunk_size: int | None,
    seed,
    checkpoint_path,
    resume: bool,
    checkpoint_every: int,
    executor=None,
) -> list[SamplingReport]:
    """Run the soundness sampling, optionally chunked and checkpointed.

    With ``chunk_size=None`` this is a single :func:`sampling_upper_bound`
    call, bit-identical to the historical behaviour.  With chunking, each
    chunk draws from its own :func:`~repro.utils.rng.spawn_rngs` stream so
    a killed-and-resumed run reproduces the uninterrupted one exactly —
    and, because the streams are independent, the chunks may execute on a
    process pool in any order without changing a single sample.
    """
    if chunk_size is None:
        return [_sampling_chunk(problem, max_distance, n_samples, seed)]
    if chunk_size < 1:
        raise SpecificationError(
            f"chunk_size must be >= 1, got {chunk_size}")
    sizes = [chunk_size] * (n_samples // chunk_size)
    if n_samples % chunk_size:
        sizes.append(n_samples % chunk_size)
    rngs = spawn_rngs(seed, len(sizes))
    items = [
        (f"chunk-{i:05d}",
         Task(_sampling_chunk, (problem, max_distance, size, rng)))
        for i, (size, rng) in enumerate(zip(sizes, rngs))
    ]
    meta = {"kind": "validate_radius", "seed": repr(seed),
            "n_samples": int(n_samples), "chunk_size": int(chunk_size),
            "max_distance": float(max_distance)}
    logger.debug("soundness sampling in %d chunk(s) of <=%d samples",
                 len(sizes), chunk_size)
    reports = run_checkpointed(
        items, path=checkpoint_path, meta=meta, every=checkpoint_every,
        resume=resume, encode=_report_to_payload,
        decode=_report_from_payload, executor=executor)
    return list(reports.values())


def validate_radius(
    problem: RadiusProblem,
    result: RadiusResult,
    *,
    n_samples: int = 20000,
    margin: float = 1e-6,
    overshoot: float = 1e-3,
    value_rtol: float = 1e-6,
    distance_rtol: float = 1e-6,
    seed=None,
    chunk_size: int | None = None,
    checkpoint_path=None,
    resume: bool = True,
    checkpoint_every: int = 1,
    workers: int = 1,
    executor=None,
) -> RadiusValidation:
    """Validate a radius claim by sampling and witness inspection.

    Parameters
    ----------
    problem, result:
        The radius computation and its claimed answer.
    n_samples:
        Monte-Carlo sample count for the soundness half.
    margin:
        Relative shrink of the ball sampled for soundness (guards the
        open-ball semantics against float round-off).
    overshoot:
        Relative step past the witness for the violation probe.
    value_rtol, distance_rtol:
        Tolerances for the witness checks.
    seed:
        RNG seed.
    chunk_size:
        When set, the soundness sampling runs in chunks of this many
        samples, each with an independent spawned RNG stream — required
        for checkpointing, and deterministic across kill/resume for a
        fixed ``seed``.
    checkpoint_path:
        Optional checkpoint file for the chunked sampling; completed
        chunks are persisted there and skipped on resume.  Defaults
        ``chunk_size`` to ``n_samples`` when omitted.
    resume:
        Whether to load an existing checkpoint at ``checkpoint_path``
        (``False`` discards it and starts over).
    checkpoint_every:
        Persist after this many freshly completed chunks.
    workers:
        When ``> 1`` (and the sampling is chunked), chunks run on a
        process pool.  Each chunk's samples come from its own spawned
        stream, so the validation is bit-identical for any worker count
        at a fixed ``chunk_size`` — the chunk structure, not the
        scheduling, defines the randomness.
    executor:
        An explicit :class:`~repro.parallel.executor.ParallelExecutor`
        to reuse (overrides ``workers``).  A
        :class:`~repro.resilience.SupervisedExecutor` adds per-chunk
        deadlines, retries and quarantine; chunks it quarantines are
        transparently re-run in-process by the checkpoint waves, so the
        validation verdict never rests on a
        :class:`~repro.resilience.TaskFailure` sentinel.
    """
    if not 0 <= margin < 1:
        raise SpecificationError(f"margin must be in [0, 1), got {margin}")
    if checkpoint_path is not None and chunk_size is None:
        chunk_size = n_samples
    radius = result.radius

    # ---- soundness -----------------------------------------------------
    with executor_scope(executor, workers) as pool:
        if radius == 0.0 or not math.isfinite(radius):
            # Zero radius: the open ball is empty, trivially sound.
            # Infinite radius: sample a wide ball around the origin scale
            # instead — finding any violation refutes the infinity claim
            # outright.
            if math.isinf(radius):
                probe = 10.0 * max(1.0, float(np.linalg.norm(problem.origin)))
                reports = _soundness_reports(
                    problem, probe, n_samples=n_samples,
                    chunk_size=chunk_size, seed=seed,
                    checkpoint_path=checkpoint_path, resume=resume,
                    checkpoint_every=checkpoint_every, executor=pool)
            else:
                reports = []
        else:
            reports = _soundness_reports(
                problem, radius * (1.0 - margin), n_samples=n_samples,
                chunk_size=chunk_size, seed=seed,
                checkpoint_path=checkpoint_path, resume=resume,
                checkpoint_every=checkpoint_every, executor=pool)
    if reports:
        sound = all(r.n_violations == 0 for r in reports)
        min_viol = min(r.min_violation_distance for r in reports)
        n_used = sum(r.n_samples for r in reports)
    else:
        sound, min_viol, n_used = True, math.inf, 0
    if not sound:
        logger.warning(
            "radius claim %.6g refuted by sampling: violation at "
            "distance %.6g", radius, min_viol)

    # ---- tightness -----------------------------------------------------
    if result.boundary_point is None:
        tight = not math.isfinite(radius)  # finite radius must carry a witness
        value_err = 0.0
        dist_err = 0.0
    else:
        witness = np.asarray(result.boundary_point, dtype=np.float64)
        f_w = problem.mapping.value(witness)
        bound = result.bound_hit if result.bound_hit is not None else f_w
        value_err = abs(f_w - bound)
        d_w = vector_norm(witness - problem.origin, problem.norm)
        dist_err = abs(d_w - radius)
        scale_v = 1.0 + abs(bound)
        scale_d = 1.0 + radius
        tight = (value_err <= value_rtol * scale_v
                 and dist_err <= distance_rtol * scale_d)
        if tight and radius > 0:
            # Overshoot probe: just past the witness must violate (use the
            # strict-containment check so landing exactly on the boundary
            # does not count as a violation).
            direction = (witness - problem.origin) / max(d_w, 1e-300)
            beyond = problem.origin + direction * d_w * (1.0 + overshoot)
            tight = not problem.bounds.contains(
                problem.mapping.value(beyond), strict=True)
    return RadiusValidation(
        sound=bool(sound),
        tight=bool(tight),
        n_samples=n_used,
        min_violation_distance=float(min_viol),
        witness_value_error=float(value_err),
        witness_distance_error=float(dist_err),
    )


def _validation_to_payload(validation: RadiusValidation) -> dict:
    """JSON-safe encoding of a :class:`RadiusValidation`."""
    payload = asdict(validation)
    if math.isinf(payload["min_violation_distance"]):
        payload["min_violation_distance"] = None
    return payload


def _validation_from_payload(payload: dict) -> RadiusValidation:
    """Inverse of :func:`_validation_to_payload`."""
    data = dict(payload)
    if data["min_violation_distance"] is None:
        data["min_violation_distance"] = math.inf
    return RadiusValidation(**data)


def _validate_feature(analysis: RobustnessAnalysis, feature_name: str,
                      n_samples: int, seed) -> RadiusValidation:
    """Validate one feature of an analysis (picklable unit of work)."""
    logger.debug("validating feature %r", feature_name)
    with span("validate.feature", feature=feature_name):
        result = analysis.radius(feature_name)
        try:
            problem = analysis.pspace_problem(feature_name)
        except SpecificationError:
            # Feature insensitive to every parameter (empty P-space under
            # sensitivity weighting): infinite radius, vacuously valid.
            return RadiusValidation(
                sound=True, tight=True, n_samples=0,
                min_violation_distance=math.inf,
                witness_value_error=0.0, witness_distance_error=0.0)
        return validate_radius(problem, result, n_samples=n_samples,
                               seed=seed)


def validate_analysis(
    analysis: RobustnessAnalysis,
    *,
    n_samples: int = 20000,
    seed=None,
    checkpoint_path=None,
    resume: bool = True,
    checkpoint_every: int = 1,
    workers: int = 1,
    executor=None,
) -> dict[str, RadiusValidation]:
    """Validate every feature's P-space radius of an analysis.

    Returns a dict from feature name to its :class:`RadiusValidation`.

    With ``checkpoint_path`` set, each feature's finished validation is
    persisted there and skipped when the run is resumed after a kill; the
    stored metadata (seed, sample count) must match or resuming raises
    :class:`~repro.exceptions.CheckpointError`.

    With ``workers > 1`` (or an explicit ``executor``), the per-feature
    validations fan out over a process pool; because every feature's
    sampling derives its randomness from the same stateless ``seed``
    independently, the outcome is bit-identical for any worker count.
    Analyses whose mappings cannot be pickled fall back to serial
    execution transparently.  A supervised executor (see
    :class:`~repro.resilience.SupervisedExecutor`) additionally retries
    and quarantines failing features — quarantined slots are re-run
    in-process so every returned validation is real.
    """
    items = [
        (spec.name,
         Task(_validate_feature, (analysis, spec.name, n_samples, seed)))
        for spec in analysis.features
    ]
    meta = {"kind": "validate_analysis", "seed": repr(seed),
            "n_samples": int(n_samples)}
    with executor_scope(executor, workers) as pool:
        return run_checkpointed(
            items, path=checkpoint_path, meta=meta, every=checkpoint_every,
            resume=resume, encode=_validation_to_payload,
            decode=_validation_from_payload, executor=pool)
