"""Empirical violation-probability curves.

For a feature and its tolerance interval, estimate the probability that a
uniformly random perturbation *direction* at distance ``d`` from the
original point violates the interval, as a function of ``d``.  The curve
is the empirical counterpart of the robustness radius: it is identically
zero for ``d < r`` and becomes positive beyond ``r`` (immediately so when
the boundary is smooth; the rise rate measures how much of the sphere at
distance ``d`` is unsafe — the directional information the scalar radius
deliberately collapses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.mappings import FeatureMapping
from repro.exceptions import SpecificationError
from repro.utils.linalg import sample_on_sphere
from repro.utils.rng import default_rng

__all__ = ["ViolationCurve", "violation_probability_curve"]


@dataclass(frozen=True)
class ViolationCurve:
    """Violation probability as a function of perturbation distance.

    Attributes
    ----------
    distances:
        The probed distances (monotone increasing).
    probabilities:
        Per-distance fraction of sampled directions whose endpoint at that
        distance violates the tolerance interval.
    n_directions:
        Sphere samples per distance.
    """

    distances: np.ndarray
    probabilities: np.ndarray
    n_directions: int

    def first_violation_distance(self) -> float:
        """Smallest probed distance with positive violation probability.

        Returns ``inf`` when no probed distance produced any violation.
        An empirical *upper* bound on the robustness radius (up to the
        probing grid's resolution).
        """
        hits = np.flatnonzero(self.probabilities > 0)
        if hits.size == 0:
            return float("inf")
        return float(self.distances[hits[0]])


def violation_probability_curve(
    mapping: FeatureMapping,
    origin: np.ndarray,
    bounds: ToleranceBounds,
    distances,
    *,
    n_directions: int = 2000,
    norm: float = 2,
    lower: np.ndarray | None = None,
    upper: np.ndarray | None = None,
    seed=None,
) -> ViolationCurve:
    """Estimate the violation probability at each probed distance.

    The same direction sample is reused across distances (common random
    numbers), so the curve is monotone-noise-free along each direction and
    the first-violation distance estimate is sharp.

    Parameters
    ----------
    mapping, origin, bounds:
        The feature, the original point, and its tolerance interval.
    distances:
        Iterable of distances to probe (must be positive).
    n_directions:
        Number of uniform directions.
    norm:
        Norm in which the distance is measured (directions are normalised
        to unit length in it).
    lower, upper:
        Optional physical box; endpoints are clipped into it.
    seed:
        RNG seed.
    """
    origin = np.asarray(origin, dtype=np.float64)
    ds = np.asarray(list(distances), dtype=np.float64)
    if ds.size == 0 or np.any(ds <= 0):
        raise SpecificationError("distances must be a non-empty positive list")
    ds = np.sort(ds)
    rng = default_rng(seed)
    dirs = sample_on_sphere(rng, n_directions, origin.size)
    p = np.inf if norm in (np.inf, "inf") else norm
    dirs = dirs / np.linalg.norm(dirs, ord=p, axis=1, keepdims=True)

    probs = np.empty(ds.size)
    for i, d in enumerate(ds):
        pts = origin + d * dirs
        if lower is not None:
            pts = np.maximum(pts, np.asarray(lower, dtype=np.float64))
        if upper is not None:
            pts = np.minimum(pts, np.asarray(upper, dtype=np.float64))
        vals = mapping.value_many(pts)
        viol = (vals > bounds.beta_max) | (vals < bounds.beta_min)
        probs[i] = viol.mean()
    return ViolationCurve(distances=ds, probabilities=probs,
                          n_directions=n_directions)
