"""Monte-Carlo validation of robustness radii.

The radius solvers make a geometric claim: *no* perturbation closer than
``r`` to the original point violates the feature's tolerance interval, and
some perturbation at distance ``r`` sits exactly on the boundary.  This
package tests both halves empirically:

* :mod:`repro.montecarlo.validate` — soundness (no violation strictly
  inside the ball) and tightness (the witness is on the boundary and
  stepping just past it violates);
* :mod:`repro.montecarlo.violation` — empirical violation-probability
  curves as a function of distance, which must be zero below the radius
  and typically rise beyond it.
"""

from repro.montecarlo.validate import (
    RadiusValidation,
    validate_radius,
    validate_analysis,
)
from repro.montecarlo.violation import violation_probability_curve

__all__ = [
    "RadiusValidation",
    "validate_radius",
    "validate_analysis",
    "violation_probability_curve",
]
