"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that is
threaded through :func:`default_rng`, so experiments are reproducible
bit-for-bit.  Independent streams for parallel or repeated sub-experiments
are derived with :func:`spawn_rngs`, which uses NumPy's ``SeedSequence``
spawning so the streams are statistically independent (never correlated the
way naive ``seed + i`` offsets can be).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["default_rng", "spawn_rngs"]

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def default_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so callers can share streams).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> Sequence[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    Parameters
    ----------
    seed:
        Anything accepted by :func:`default_rng`.  If a ``Generator`` is
        passed, its internal bit generator's seed sequence is spawned.
    n:
        Number of independent streams required.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
