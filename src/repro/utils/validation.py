"""Array and scalar validation helpers.

These helpers normalise user input into NumPy arrays with consistent dtype
and layout, and raise :class:`repro.exceptions.SpecificationError` (or a
subclass) with actionable messages on bad input.  Centralising validation
keeps the hot numerical code free of defensive branching, per the
"make it work reliably, then optimise the bottleneck" workflow.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, SpecificationError

__all__ = [
    "as_1d_float_array",
    "as_2d_float_array",
    "check_finite",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_same_length",
]


def as_1d_float_array(values: Iterable[float], *, name: str = "array") -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D ``float64`` array.

    Parameters
    ----------
    values:
        Any iterable of numbers (list, tuple, ndarray, generator).
    name:
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        A fresh (never aliased) contiguous 1-D float64 array.

    Raises
    ------
    SpecificationError
        If the input is empty, not 1-D, or not numeric.
    """
    try:
        if isinstance(values, np.ndarray):
            arr = np.array(values, dtype=np.float64)
        elif np.isscalar(values):
            arr = np.array([values], dtype=np.float64)
        else:
            arr = np.array(list(values), dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise SpecificationError(f"{name} must be numeric, got {values!r}") from exc
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise SpecificationError(
            f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise SpecificationError(f"{name} must be non-empty")
    return np.ascontiguousarray(arr)


def as_2d_float_array(values, *, name: str = "matrix") -> np.ndarray:
    """Coerce ``values`` to a contiguous 2-D ``float64`` array.

    Raises
    ------
    SpecificationError
        If the input cannot be interpreted as a non-empty 2-D numeric array.
    """
    try:
        arr = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise SpecificationError(f"{name} must be numeric, got {values!r}") from exc
    if arr.ndim != 2:
        raise SpecificationError(
            f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise SpecificationError(f"{name} must be non-empty")
    return np.ascontiguousarray(arr)


def check_finite(arr: np.ndarray, *, name: str = "array") -> np.ndarray:
    """Raise :class:`SpecificationError` if ``arr`` contains NaN or infinity."""
    if not np.all(np.isfinite(arr)):
        raise SpecificationError(f"{name} must be finite, got {arr!r}")
    return arr


def check_positive(arr: np.ndarray, *, name: str = "array") -> np.ndarray:
    """Raise :class:`SpecificationError` unless every element is ``> 0``."""
    if not np.all(np.asarray(arr) > 0):
        raise SpecificationError(f"every element of {name} must be positive, got {arr!r}")
    return arr


def check_nonnegative(arr: np.ndarray, *, name: str = "array") -> np.ndarray:
    """Raise :class:`SpecificationError` unless every element is ``>= 0``."""
    if not np.all(np.asarray(arr) >= 0):
        raise SpecificationError(
            f"every element of {name} must be non-negative, got {arr!r}")
    return arr


def check_probability(value: float, *, name: str = "probability") -> float:
    """Validate a scalar in the closed interval ``[0, 1]`` and return it."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise SpecificationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_same_length(*arrays: Sequence, names: Sequence[str] | None = None) -> int:
    """Check that all supplied sequences have equal length.

    Returns
    -------
    int
        The common length.

    Raises
    ------
    DimensionMismatchError
        If the lengths disagree.
    """
    lengths = [len(a) for a in arrays]
    if len(set(lengths)) > 1:
        if names is None:
            names = [f"argument {i}" for i in range(len(arrays))]
        detail = ", ".join(f"{n}={l}" for n, l in zip(names, lengths))
        raise DimensionMismatchError(f"length mismatch: {detail}")
    return lengths[0]
