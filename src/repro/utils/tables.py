"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's derivations imply
(and the companion paper's tables report); this module renders them as
aligned monospace tables so ``EXPERIMENTS.md`` and benchmark output read
like the originals.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _fmt_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_fmt: str = ".6g",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Iterable of row tuples; floats are formatted with ``float_fmt``,
        everything else via ``str``.
    float_fmt:
        ``format()`` spec applied to float cells.
    title:
        Optional title printed above the table.

    Returns
    -------
    str
        The rendered table, ending without a trailing newline.
    """
    str_rows = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
