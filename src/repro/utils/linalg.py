"""Small geometric/linear-algebra helpers used by the radius solvers.

The central closed form is the point-to-hyperplane distance (Equation 4 of
the paper): for a plane ``a . x = b`` and a point ``x0``,

    d = |a . x0 - b| / ||a||_2 .

Everything here is vectorised NumPy; these routines sit on the hot path of
the analytic solvers and the Monte-Carlo validator.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionMismatchError, SpecificationError

__all__ = [
    "point_to_hyperplane_distance",
    "project_point_to_hyperplane",
    "vector_norm",
    "vector_norm_many",
    "unit_vector",
    "sample_on_sphere",
    "sample_in_ball",
]


def point_to_hyperplane_distance(
    point: np.ndarray, normal: np.ndarray, offset: float
) -> float:
    """Distance from ``point`` to the hyperplane ``normal . x = offset``.

    Implements Equation 4 of the paper.

    Parameters
    ----------
    point:
        The query point ``x0`` (1-D array).
    normal:
        The plane's coefficient vector ``a`` (1-D array, not all zero).
    offset:
        The plane's constant ``b``.

    Returns
    -------
    float
        ``|a . x0 - b| / ||a||_2``.

    Raises
    ------
    SpecificationError
        If the normal vector is (numerically) zero.
    DimensionMismatchError
        If ``point`` and ``normal`` have different lengths.
    """
    point = np.asarray(point, dtype=np.float64)
    normal = np.asarray(normal, dtype=np.float64)
    if point.shape != normal.shape:
        raise DimensionMismatchError(
            f"point has shape {point.shape} but normal has shape {normal.shape}")
    nn = float(np.linalg.norm(normal))
    if nn == 0.0 or not np.isfinite(nn):
        raise SpecificationError("hyperplane normal must be nonzero and finite")
    return abs(float(normal @ point) - float(offset)) / nn


def project_point_to_hyperplane(
    point: np.ndarray, normal: np.ndarray, offset: float
) -> np.ndarray:
    """Orthogonal projection of ``point`` onto the plane ``normal . x = offset``.

    The projection is the *witness* boundary point realising the
    point-to-hyperplane distance; the radius solvers return it so callers can
    inspect the direction of least robustness.
    """
    point = np.asarray(point, dtype=np.float64)
    normal = np.asarray(normal, dtype=np.float64)
    if point.shape != normal.shape:
        raise DimensionMismatchError(
            f"point has shape {point.shape} but normal has shape {normal.shape}")
    nn2 = float(normal @ normal)
    if nn2 == 0.0:
        raise SpecificationError("hyperplane normal must be nonzero")
    t = (float(offset) - float(normal @ point)) / nn2
    return point + t * normal


def vector_norm(x: np.ndarray, order: float | str = 2) -> float:
    """Norm of a vector with the library's supported orders (1, 2, ``inf``).

    A thin wrapper over :func:`numpy.linalg.norm` that validates ``order``;
    the ablation benchmarks (E8) sweep this argument.
    """
    if order not in (1, 2, np.inf, "inf"):
        raise SpecificationError(f"unsupported norm order {order!r}; use 1, 2 or inf")
    if order == "inf":
        order = np.inf
    return float(np.linalg.norm(np.asarray(x, dtype=np.float64), ord=order))


def vector_norm_many(xs: np.ndarray, order: float | str = 2) -> np.ndarray:
    """Row-wise norms of a ``(m, n)`` batch, bit-identical to the scalar path.

    Returns exactly ``[vector_norm(row, order) for row in xs]`` — down to
    the last ulp — with a single vectorised pass.  For the Euclidean norm
    this requires care: ``numpy.linalg.norm(xs, axis=1)`` reduces with
    ``sqrt(sum(abs(x)**2))`` while the 1-D call uses ``sqrt(dot(x, x))``
    (BLAS), and the two can differ in the last ulp.  The batched ``matmul``
    of row against itself goes through the same BLAS dot kernel per row,
    which restores bit-identity (pinned by ``tests/utils`` and the
    sampling regression suite).
    """
    if order not in (1, 2, np.inf, "inf"):
        raise SpecificationError(f"unsupported norm order {order!r}; use 1, 2 or inf")
    if order == "inf":
        order = np.inf
    xs = np.ascontiguousarray(xs, dtype=np.float64)
    if xs.ndim != 2:
        raise DimensionMismatchError(
            f"expected a 2-D batch of row vectors, got shape {xs.shape}")
    if order == 2:
        return np.sqrt(np.matmul(xs[:, None, :], xs[:, :, None])[:, 0, 0])
    return np.linalg.norm(xs, ord=order, axis=1)


def unit_vector(x: np.ndarray) -> np.ndarray:
    """Return ``x / ||x||_2``, raising on the zero vector."""
    x = np.asarray(x, dtype=np.float64)
    n = float(np.linalg.norm(x))
    if n == 0.0:
        raise SpecificationError("cannot normalise the zero vector")
    return x / n


def sample_on_sphere(rng: np.random.Generator, n_points: int, dim: int) -> np.ndarray:
    """Sample ``n_points`` uniformly on the unit sphere in ``dim`` dimensions.

    Uses the Gaussian-normalisation method; degenerate (near-zero) draws are
    resampled implicitly by the vanishing probability of the event, but we
    guard against exact zeros for robustness of downstream division.
    """
    if dim < 1:
        raise SpecificationError(f"dim must be >= 1, got {dim}")
    pts = rng.standard_normal((n_points, dim))
    norms = np.linalg.norm(pts, axis=1, keepdims=True)
    # A standard normal draw is exactly zero with probability 0, but guard
    # anyway so the division below can never produce NaN.
    norms[norms == 0.0] = 1.0
    return pts / norms


def sample_in_ball(
    rng: np.random.Generator, n_points: int, dim: int, radius: float = 1.0
) -> np.ndarray:
    """Sample ``n_points`` uniformly in the closed ball of ``radius``.

    Combines a uniform direction with a radius drawn as ``U^(1/dim)`` so the
    density is uniform over the ball volume.
    """
    if radius < 0:
        raise SpecificationError(f"radius must be >= 0, got {radius}")
    dirs = sample_on_sphere(rng, n_points, dim)
    radii = radius * rng.random(n_points) ** (1.0 / dim)
    return dirs * radii[:, None]
