"""Shared utilities: input validation, RNG handling, geometry, and reporting
primitives used across the :mod:`repro` package."""

from repro.utils.validation import (
    as_1d_float_array,
    as_2d_float_array,
    check_finite,
    check_positive,
    check_probability,
    check_same_length,
)
from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.linalg import (
    point_to_hyperplane_distance,
    project_point_to_hyperplane,
    vector_norm,
    unit_vector,
)
from repro.utils.tables import format_table
from repro.utils.ascii_plot import AsciiCanvas, scatter_plot, line_plot

__all__ = [
    "as_1d_float_array",
    "as_2d_float_array",
    "check_finite",
    "check_positive",
    "check_probability",
    "check_same_length",
    "default_rng",
    "spawn_rngs",
    "point_to_hyperplane_distance",
    "project_point_to_hyperplane",
    "vector_norm",
    "unit_vector",
    "format_table",
    "AsciiCanvas",
    "scatter_plot",
    "line_plot",
]
