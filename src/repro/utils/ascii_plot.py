"""Terminal (ASCII) plotting, used to regenerate the paper's Figure 1.

The paper has a single conceptual figure: the boundary curve
``{pi : f(pi) = beta_max}`` in a 2-D perturbation space, the original
operating point, and the minimum-distance (robustness-radius) point.  No
plotting libraries are available offline, so figures are rendered as
character rasters — adequate to verify the *shape* of the reproduction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import SpecificationError

__all__ = ["AsciiCanvas", "scatter_plot", "line_plot"]


class AsciiCanvas:
    """A fixed-size character raster with data-space coordinates.

    Parameters
    ----------
    width, height:
        Raster size in characters.
    xlim, ylim:
        Data-space extents ``(lo, hi)`` mapped onto the raster.
    """

    def __init__(
        self,
        width: int = 72,
        height: int = 24,
        xlim: tuple[float, float] = (0.0, 1.0),
        ylim: tuple[float, float] = (0.0, 1.0),
    ) -> None:
        if width < 2 or height < 2:
            raise SpecificationError("canvas must be at least 2x2")
        if xlim[1] <= xlim[0] or ylim[1] <= ylim[0]:
            raise SpecificationError("limits must satisfy lo < hi")
        self.width = int(width)
        self.height = int(height)
        self.xlim = (float(xlim[0]), float(xlim[1]))
        self.ylim = (float(ylim[0]), float(ylim[1]))
        self._grid = [[" "] * self.width for _ in range(self.height)]

    def _to_cell(self, x: float, y: float) -> tuple[int, int] | None:
        """Map data coordinates to (row, col), or None when off-canvas."""
        fx = (x - self.xlim[0]) / (self.xlim[1] - self.xlim[0])
        fy = (y - self.ylim[0]) / (self.ylim[1] - self.ylim[0])
        if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
            return None
        col = min(self.width - 1, int(fx * self.width))
        row = min(self.height - 1, int((1.0 - fy) * self.height))
        return row, col

    def plot_points(self, xs: Sequence[float], ys: Sequence[float], marker: str = "*") -> None:
        """Mark each (x, y) pair with ``marker`` (single character)."""
        if len(marker) != 1:
            raise SpecificationError("marker must be a single character")
        for x, y in zip(xs, ys):
            cell = self._to_cell(float(x), float(y))
            if cell is not None:
                r, c = cell
                self._grid[r][c] = marker

    def plot_line(self, x0: float, y0: float, x1: float, y1: float, marker: str = ".") -> None:
        """Draw a straight segment by dense sampling in data space."""
        n = 4 * max(self.width, self.height)
        ts = np.linspace(0.0, 1.0, n)
        self.plot_points(x0 + ts * (x1 - x0), y0 + ts * (y1 - y0), marker)

    def render(self, *, xlabel: str = "", ylabel: str = "", title: str = "") -> str:
        """Return the canvas as a bordered string with axis annotations."""
        border = "+" + "-" * self.width + "+"
        lines = []
        if title:
            lines.append(title.center(self.width + 2))
        if ylabel:
            lines.append(ylabel)
        lines.append(border)
        for row in self._grid:
            lines.append("|" + "".join(row) + "|")
        lines.append(border)
        footer = f"{self.xlim[0]:g}".ljust(self.width // 2)
        footer += f"{self.xlim[1]:g}".rjust(self.width - len(footer) + 2)
        lines.append(footer)
        if xlabel:
            lines.append(xlabel.center(self.width + 2))
        return "\n".join(lines)


def _auto_limits(values: np.ndarray) -> tuple[float, float]:
    lo, hi = float(np.min(values)), float(np.max(values))
    if lo == hi:
        lo, hi = lo - 0.5, hi + 0.5
    pad = 0.05 * (hi - lo)
    return lo - pad, hi + pad


def scatter_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    marker: str = "*",
    width: int = 72,
    height: int = 24,
    xlabel: str = "",
    ylabel: str = "",
    title: str = "",
) -> str:
    """Render a scatter plot of (xs, ys) with automatic limits."""
    xs = np.asarray(list(xs), dtype=np.float64)
    ys = np.asarray(list(ys), dtype=np.float64)
    if xs.size == 0:
        raise SpecificationError("cannot plot zero points")
    canvas = AsciiCanvas(width, height, _auto_limits(xs), _auto_limits(ys))
    canvas.plot_points(xs, ys, marker)
    return canvas.render(xlabel=xlabel, ylabel=ylabel, title=title)


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    marker: str = ".",
    width: int = 72,
    height: int = 24,
    xlabel: str = "",
    ylabel: str = "",
    title: str = "",
) -> str:
    """Render a polyline through consecutive (xs, ys) points."""
    xs = np.asarray(list(xs), dtype=np.float64)
    ys = np.asarray(list(ys), dtype=np.float64)
    if xs.size < 2:
        raise SpecificationError("need at least two points for a line plot")
    canvas = AsciiCanvas(width, height, _auto_limits(xs), _auto_limits(ys))
    for i in range(xs.size - 1):
        canvas.plot_line(xs[i], ys[i], xs[i + 1], ys[i + 1], marker)
    return canvas.render(xlabel=xlabel, ylabel=ylabel, title=title)
