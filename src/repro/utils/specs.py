"""Shared grammar for compact CLI spec strings (``--chaos``, ``--shock``).

Several CLI flags take a comma-separated ``key=value`` mini-language::

    kill=0.2,exception=0.3,latency=0.1:0.05,seed=7,cap=2      (--chaos)
    kind=spike,magnitude=0.3,steps=40,rate=0.25,name=surge    (--shock)

:func:`parse_kv_spec` is the single parser behind all of them.  A
:class:`SpecField` declares one accepted key (with aliases, a value
converter, an optional closed set of ``choices``, and an optional value
``hint``); every parse failure raises a typed
:class:`~repro.exceptions.SpecGrammarError` — a :class:`ValueError`
subclass — that names the offending token, lists what *would* have been
accepted at that position, and restates the full grammar, so a CLI typo
reads as a usage message rather than a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.exceptions import SpecGrammarError

__all__ = ["SpecField", "parse_kv_spec", "spec_grammar"]


@dataclass(frozen=True)
class SpecField:
    """One key accepted by a ``key=value`` spec grammar.

    Attributes
    ----------
    key:
        Canonical key name (also the name used in the parsed dict unless
        ``dest`` overrides it).
    convert:
        Callable turning the raw value string into the final value;
        a :class:`ValueError` from it is reported as a bad token.
    aliases:
        Alternative spellings accepted for this key.
    dest:
        Name of the entry in the parsed dict (defaults to ``key``).
    choices:
        Optional closed set of accepted *raw* values (checked before
        ``convert``, case-insensitively); an out-of-set value is
        rejected with a message listing the set.
    hint:
        Optional one-phrase description of the expected value shape,
        appended to invalid-value messages (e.g. ``"a rate in [0, 1]"``
        or ``"RATE[:SECONDS]"``).
    """

    key: str
    convert: Callable[[str], Any] = str
    aliases: tuple[str, ...] = ()
    dest: str | None = None
    choices: tuple[str, ...] | None = None
    hint: str | None = None

    @property
    def names(self) -> tuple[str, ...]:
        """Every spelling this field answers to."""
        return (self.key, *self.aliases)

    @property
    def target(self) -> str:
        """The parsed-dict key this field fills."""
        return self.dest if self.dest is not None else self.key

    def describe(self) -> str:
        """The key as shown in grammar/usage lines: aliases and choices."""
        shown = self.key
        if self.aliases:
            shown += f" (alias {', '.join(self.aliases)})"
        if self.choices:
            shown += f"={'|'.join(self.choices)}"
        return shown


def spec_grammar(fields: Sequence[SpecField]) -> str:
    """One-line description of a spec grammar (for error messages)."""
    keys = ", ".join(f.describe() for f in fields)
    return f"a comma-separated list of key=value entries with keys: {keys}"


def parse_kv_spec(spec: str, fields: Sequence[SpecField], *,
                  name: str = "spec") -> dict[str, Any]:
    """Parse a compact ``key=value[,key=value...]`` spec string.

    Parameters
    ----------
    spec:
        The raw spec string.  Empty entries (``a=1,,b=2``) are rejected —
        a stray comma usually means a typo the user wants to hear about.
    fields:
        The accepted keys (see :class:`SpecField`).  Duplicate keys in
        the spec are rejected; a field's ``choices`` set is enforced
        here, centrally, so every grammar gets the same actionable
        message.
    name:
        Label for error messages (e.g. ``"chaos spec"``).

    Returns
    -------
    dict
        ``{field.target: converted value}`` for every entry present.

    Raises
    ------
    SpecGrammarError
        On any malformed entry; the message names the bad token, what
        was accepted at that position, and the full grammar.
    """
    grammar = spec_grammar(fields)
    if not isinstance(spec, str) or not spec.strip():
        raise SpecGrammarError(
            f"{name} must be a non-empty string", grammar=grammar)
    by_name = {alias: f for f in fields for alias in f.names}
    parsed: dict[str, Any] = {}
    seen: set[str] = set()
    for part in spec.split(","):
        token = part.strip()
        if not token:
            raise SpecGrammarError(
                f"{name} has an empty entry", token=part, grammar=grammar)
        key, eq, value = token.partition("=")
        key, value = key.strip().lower(), value.strip()
        if not eq or not value:
            raise SpecGrammarError(
                f"{name} entry must look like key=value", token=token,
                grammar=grammar)
        field = by_name.get(key)
        if field is None:
            valid = ", ".join(f.describe() for f in fields)
            raise SpecGrammarError(
                f"{name} has an unknown key {key!r}; valid keys: {valid}",
                token=token, grammar=grammar)
        if field.target in seen:
            raise SpecGrammarError(
                f"{name} repeats the key {field.key!r}", token=token,
                grammar=grammar)
        seen.add(field.target)
        if field.choices is not None and value.lower() not in field.choices:
            raise SpecGrammarError(
                f"{name} has an invalid value for {field.key!r}: {value!r} "
                f"is not one of {', '.join(field.choices)}",
                token=token, grammar=grammar)
        try:
            parsed[field.target] = field.convert(value)
        except ValueError:
            detail = f"{name} has an invalid value for {field.key!r}"
            if field.hint:
                detail += f" (expected {field.hint})"
            raise SpecGrammarError(
                detail, token=token, grammar=grammar) from None
    return parsed
