"""A radius cache shared across processes, so clients warm each other.

:class:`~repro.parallel.cache.RadiusCache` is process-local: every worker
builds its own, and a solve cached by one client is invisible to the
next.  :class:`SharedRadiusCache` keeps the exact same fingerprinting
(:meth:`~repro.parallel.cache.RadiusCache.key` is inherited unchanged, so
a problem hits the shared store under precisely the key it would hit a
local cache under) but backs the entry store with a
:class:`multiprocessing.managers.SyncManager` dict.  The cache object —
manager proxies included — pickles into worker tasks, so a solve
performed by worker A is served from cache to worker B, to the service
frontend, and to every later request.

Cached results are bit-identical to fresh solves (the library's cache
contract), so sharing them across processes is a pure wall-clock
optimisation, never a correctness concern.

Accounting: besides the inherited hit/miss/skip/eviction counters (which
stay *per client*: each process counts its own traffic), a
:class:`SharedRadiusCache` counts ``warm_hits`` — hits served from an
entry that some *other* client stored.  That is the number a serving
deployment cares about: how often did concurrent clients warm each other.

When serving is off there is nothing to share; use a plain
:class:`~repro.parallel.cache.RadiusCache` (the service's
``cache="auto"`` default does exactly this for serial configurations).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import uuid
from typing import TYPE_CHECKING

from repro.observability import emit_event, get_metrics
from repro.parallel.cache import RadiusCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.radius import RadiusResult

__all__ = ["SharedRadiusCache"]


def _client_id() -> str:
    return f"{os.getpid()}:{uuid.uuid4().hex[:8]}"


class SharedRadiusCache(RadiusCache):
    """Fingerprint-keyed radius memoisation shared across processes.

    Parameters
    ----------
    max_entries:
        Optional size bound; when full, the oldest entry is evicted
        (insertion order, like the local cache).  ``None`` = unbounded.
    manager:
        An existing :class:`multiprocessing.managers.SyncManager` to
        allocate the store from; by default the cache starts (and owns)
        its own.  Call :meth:`close` — or use the cache as a context
        manager — to shut an owned manager down.

    Notes
    -----
    Pickling a :class:`SharedRadiusCache` into a worker task ships the
    manager proxies; the unpickled copy in the worker talks to the *same*
    store under a fresh client id with zeroed local counters.  The
    manager process must outlive every worker that holds a proxy — the
    radius service guarantees this by closing the cache last.
    """

    def __init__(self, max_entries: int | None = None, *,
                 manager=None) -> None:
        super().__init__(max_entries)
        self._owns_manager = manager is None
        self._manager = (manager if manager is not None
                         else multiprocessing.Manager())
        self._shared = self._manager.dict()
        self._shared_lock = self._manager.Lock()
        self._client = _client_id()
        #: Hits served from an entry stored by a *different* client.
        self.warm_hits = 0

    # ------------------------------------------------------------------
    # pickling: ship the proxies, re-identify the client
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"max_entries": self.max_entries, "_shared": self._shared,
                "_shared_lock": self._shared_lock}

    def __setstate__(self, state: dict) -> None:
        self.max_entries = state["max_entries"]
        self._shared = state["_shared"]
        self._shared_lock = state["_shared_lock"]
        self._owns_manager = False
        self._manager = None
        self._store = {}
        self._lock = threading.Lock()
        self.hits = self.misses = self.skips = self.evictions = 0
        self.warm_hits = 0
        self._client = _client_id()

    # ------------------------------------------------------------------
    # storage (same key() as the local cache, shared entries)
    # ------------------------------------------------------------------
    def get(self, key: str | None) -> "RadiusResult | None":
        """Look a key up in the shared store (``None`` key: no-op)."""
        if key is None:
            return None
        entry = self._shared.get(key)
        warm = False
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                warm = entry[0] != self._client
                if warm:
                    self.warm_hits += 1
        if entry is None:
            get_metrics().inc("cache.misses")
            emit_event("cache.miss", key=key[:12])
            return None
        get_metrics().inc("cache.hits")
        emit_event("cache.hit", key=key[:12])
        if warm:
            get_metrics().inc("cache.warm_hits")
            emit_event("cache.warm_hit", key=key[:12], owner=entry[0])
        return entry[1]

    def put(self, key: str | None, result: "RadiusResult") -> None:
        """Store a solved result tagged with this client (``None``: no-op)."""
        if key is None:
            return
        evicted = None
        with self._shared_lock:
            if self.max_entries is not None and key not in self._shared \
                    and len(self._shared) >= self.max_entries:
                evicted = next(iter(self._shared.keys()))
                self._shared.pop(evicted, None)
                with self._lock:
                    self.evictions += 1
            self._shared[key] = (self._client, result)
        if evicted is not None:
            get_metrics().inc("cache.evictions")
            emit_event("cache.evict", key=evicted[:12])

    def clear(self) -> None:
        """Drop every shared entry and reset this client's counters."""
        with self._shared_lock:
            self._shared.clear()
        with self._lock:
            self.hits = self.misses = self.skips = self.evictions = 0
            self.warm_hits = 0

    def __len__(self) -> int:
        return len(self._shared)

    def stats(self) -> dict:
        """This client's counters plus the shared entry count.

        ``warm_hits`` counts hits served from entries other clients
        stored — the cross-client warming a serving deployment exists
        for.  Counters are per client; ``entries`` is global.
        """
        stats = super().stats()
        with self._lock:
            stats["warm_hits"] = self.warm_hits
        stats["entries"] = len(self._shared)
        stats["shared"] = True
        return stats

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the owned manager down (no-op for adopted managers)."""
        if self._owns_manager and self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    def __enter__(self) -> "SharedRadiusCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        try:
            entries = len(self._shared)
        except Exception:  # pragma: no cover - manager already gone
            entries = -1
        return (f"SharedRadiusCache(entries={entries}, hits={self.hits}, "
                f"warm_hits={self.warm_hits}, misses={self.misses})")
