"""Benchmark harness: per-call pools vs the persistent radius service.

:func:`run_service_benchmark` replays one seeded stream of radius
requests three ways —

* **serial**: in-process :func:`~repro.core.radius.compute_radii` per
  request (the reference for the identity check);
* **per-call pool**: a fresh :class:`~repro.parallel.executor.ParallelExecutor`
  built and torn down around every request, which is what every library
  entry point did before the service existed (the architecture that
  measured 0.92× of serial in ``repro-bench-parallel-v1``);
* **service**: one :class:`~repro.service.RadiusService` processing the
  same requests through its persistent pool and shared-memory dispatch
  (service construction and shutdown are *included* in its timing, so
  the reported speedup is end to end, not steady-state-only)

— and emits a ``repro-bench-service-v1`` payload.  Every problem in the
workload is distinct, so caching cannot inflate the comparison; the
service leg runs cache-off for the same reason.  CI gates on
``speedup >= 1.5`` (service vs per-call pool) and ``identical``.

Like :mod:`repro.parallel.bench`, this module is imported explicitly —
``repro.service`` does not pull it in.
"""

from __future__ import annotations

import json
import logging
import time

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.mappings import LinearMapping, QuadraticMapping
from repro.core.radius import RadiusProblem, compute_radii
from repro.exceptions import SpecificationError
from repro.parallel.bench import SERVICE_BENCH_SCHEMA
from repro.parallel.executor import ParallelExecutor, default_workers
from repro.service.service import RadiusService, ServiceConfig

__all__ = ["build_workload", "run_service_benchmark"]

logger = logging.getLogger(__name__)


def build_workload(*, seed: int = 2005, requests: int = 10,
                   problems_per_request: int = 8, dimension: int = 4
                   ) -> list[list[RadiusProblem]]:
    """A seeded stream of mixed radius requests.

    Every request mixes analytic-tier (linear) and ellipsoid-tier
    (diagonal-quadratic) problems, so the batched frontend forms at
    least two structural groups and genuinely exercises the dispatch
    path.  All coefficients and origins are distinct draws — no two
    problems share a cache fingerprint.
    """
    if requests < 1 or problems_per_request < 2:
        raise SpecificationError(
            f"need requests >= 1 and problems_per_request >= 2, got "
            f"{requests} and {problems_per_request}")
    rng = np.random.default_rng(seed)
    workload: list[list[RadiusProblem]] = []
    for _ in range(requests):
        batch: list[RadiusProblem] = []
        for j in range(problems_per_request):
            origin = rng.normal(size=dimension) * 0.1
            if j % 2 == 0:
                mapping = LinearMapping(
                    rng.normal(size=dimension) + 0.1, 1.0)
                bounds = ToleranceBounds(-12.0, 12.0)
            else:
                diag = np.abs(rng.normal(size=dimension)) + 0.5
                mapping = QuadraticMapping(np.diag(diag))
                bounds = ToleranceBounds(-6.0, 6.0)
            batch.append(RadiusProblem(mapping=mapping, origin=origin,
                                       bounds=bounds))
        workload.append(batch)
    return workload


def _canonical(results) -> str:
    """Canonical JSON of results with wall-clock diagnostics neutralised.

    ``SolverAttempt.elapsed`` is the one field of a
    :class:`~repro.core.radius.RadiusResult` that is *not* covered by the
    determinism contract (it is wall-clock time); it is zeroed before
    serialization so the identity check measures exactly what the
    contract promises.
    """
    from repro.io.serialize import to_dict

    dicts = [to_dict(r) for r in results]
    for d in dicts:
        for attempt in d.get("diagnostics", []):
            attempt["elapsed"] = 0.0
    return json.dumps(dicts, sort_keys=True)


def run_service_benchmark(*, workers: int | None = None, seed: int = 2005,
                          requests: int = 10,
                          problems_per_request: int = 8) -> dict:
    """Benchmark the request stream through all three serving paths.

    Returns a ``repro-bench-service-v1`` payload; see the module
    docstring for what the legs measure and
    :func:`~repro.parallel.bench.validate_bench_payload` for the schema.
    """
    if workers is None:
        # The bench compares pool *architectures* (per-call spawn vs
        # persistent); workers=1 would make both legs serial and compare
        # nothing, so the default floors at 2 even on one-core machines.
        workers = max(2, default_workers())
    if workers < 1:
        raise SpecificationError(f"workers must be >= 1, got {workers}")
    workload = build_workload(seed=seed, requests=requests,
                              problems_per_request=problems_per_request)
    solve_seed = seed + 1  # solver randomness, distinct from workload draw

    logger.info("service benchmark: serial leg over %d request(s)",
                requests)
    t0 = time.perf_counter()
    serial = [compute_radii(batch, seed=solve_seed, cache=False)
              for batch in workload]
    serial_seconds = time.perf_counter() - t0

    logger.info("service benchmark: per-call pool leg (%d workers/call)",
                workers)
    t0 = time.perf_counter()
    per_call = []
    for batch in workload:
        with ParallelExecutor(workers) as pool:
            per_call.append(compute_radii(batch, seed=solve_seed,
                                          cache=False, executor=pool))
    per_call_seconds = time.perf_counter() - t0

    logger.info("service benchmark: persistent service leg")
    t0 = time.perf_counter()
    with RadiusService(workers,
                       config=ServiceConfig(queue_limit=max(32, requests),
                                            cache=False)) as service:
        tickets = [service.submit(batch, seed=solve_seed)
                   for batch in workload]
        served = service.gather(tickets)
        service_stats = service.stats()
    service_seconds = time.perf_counter() - t0

    flat_serial = [r for leg in serial for r in leg]
    flat_served = [r for leg in served for r in leg]
    flat_per_call = [r for leg in per_call for r in leg]
    want = _canonical(flat_serial)
    identical = (want == _canonical(flat_served)
                 and want == _canonical(flat_per_call))
    if not identical:  # pragma: no cover - determinism contract violation
        logger.error("service results DIFFER from the serial path")

    executor_stats = service_stats.pop("executor")
    cache_stats = service_stats.pop("cache")
    return {
        "schema": SERVICE_BENCH_SCHEMA,
        "workers": int(workers),
        "seed": int(seed),
        "requests": int(requests),
        "problems": int(requests * problems_per_request),
        "serial_seconds": float(serial_seconds),
        "per_call_seconds": float(per_call_seconds),
        "service_seconds": float(service_seconds),
        "speedup": (float(per_call_seconds / service_seconds)
                    if service_seconds > 0 else 0.0),
        "speedup_vs_serial": (float(serial_seconds / service_seconds)
                              if service_seconds > 0 else 0.0),
        "identical": bool(identical),
        "service": service_stats,
        "executor": executor_stats,
        "cache": cache_stats,
    }
