"""The radius service: a long-lived serving layer over the solver stack.

Every library entry point so far is *call-shaped*: build an executor, fan
a batch out, tear the pool down.  The pool spawn and the per-task
pickling of whole problems dominate short calls — ``repro-bench-parallel-v1``
measured the per-call pool at 0.92× of serial.  :class:`RadiusService`
is the *service-shaped* alternative:

* one persistent :class:`~repro.resilience.supervisor.SupervisedExecutor`
  for the service's lifetime — workers spawn once and stay warm, with the
  supervisor's retries/quarantine/breaker protecting every request;
* an async frontend — :meth:`submit` enqueues a request and returns a
  :class:`RadiusTicket` immediately, so many analyses are in flight at
  once; :meth:`gather` (or :meth:`RadiusTicket.result`) blocks for the
  answers;
* admission control — the request queue is bounded, and a dedicated
  :class:`~repro.resilience.supervisor.CircuitBreaker` sheds load
  (:class:`~repro.exceptions.ServiceOverloadError`) when the queue stays
  full, with the breaker's deterministic event-counted cooldown deciding
  when to probe again;
* shared-memory dispatch — each request's cache-missing problems are
  published **once** into :class:`~repro.service.shm.SharedProblemBatch`
  blocks and tasks carry only indices, so workers stop unpickling whole
  problems;
* a cross-process :class:`~repro.service.cache.SharedRadiusCache` —
  solves performed by any worker for any client warm every other client.

Determinism contract: for a fixed seed, :meth:`compute` returns results
**bit-identical** to :func:`repro.core.radius.compute_radii` on the
in-process library path, for any worker count, with tracing on or off
(``tests/service/test_identity.py`` proves it).  Requests are processed
strictly in admission order by one dispatcher thread, so a fixed request
sequence yields a replayable execution.

Observability: ``service.queue_depth`` / ``service.inflight`` /
``service.shm_bytes`` gauges, ``service.admit`` / ``service.shed`` /
``service.done`` events, a ``service.request`` span per request (worker
spans are absorbed into it by the supervised executor, exactly like the
library fan-out path).
"""

from __future__ import annotations

import itertools
import logging
import queue
import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.radius import (
    RadiusProblem,
    RadiusResult,
    _solver_structure,
)
from repro.core.solvers.tensor import solve_group
from repro.exceptions import (
    ServiceClosedError,
    ServiceOverloadError,
    SpecificationError,
)
from repro.observability import emit_event, get_metrics, span
from repro.parallel.cache import RadiusCache
from repro.parallel.executor import Task
from repro.resilience.supervisor import (
    BreakerConfig,
    CircuitBreaker,
    SupervisedExecutor,
    SupervisorConfig,
    resolve_task_failures,
)
from repro.service.cache import SharedRadiusCache
from repro.service.shm import BatchDescriptor, SharedProblemBatch, attach_batch

__all__ = ["ServiceConfig", "RadiusTicket", "RadiusService"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of a :class:`RadiusService`.

    Attributes
    ----------
    queue_limit:
        Maximum requests waiting for the dispatcher (in-flight request
        excluded).  A full queue sheds new submissions with
        :class:`~repro.exceptions.ServiceOverloadError`.
    cache:
        ``"shared"`` (default) builds a
        :class:`~repro.service.cache.SharedRadiusCache` so concurrent
        clients warm each other; ``"local"`` uses a plain in-process
        :class:`~repro.parallel.cache.RadiusCache` (the fallback when
        cross-process serving is off, e.g. ``workers=1`` deployments
        that do not want a manager process); ``False`` disables caching;
        a cache instance is used as-is (the caller owns its lifetime).
    cache_entries:
        Size bound for a cache the service builds itself.
    supervisor:
        Supervision tuning for the persistent executor (task deadlines,
        retries, the *pool* breaker).
    admission:
        Thresholds for the *admission* breaker — unrelated to the pool
        breaker: its failures are full-queue sheds, and its open-state
        cooldown counts later shed attempts before re-probing the queue.
    use_shm:
        Publish each request's problems through shared memory (default).
        ``False`` falls back to pickling problems into tasks — same
        results, useful to quantify what shm dispatch buys.
    """

    queue_limit: int = 32
    cache: object = "shared"
    cache_entries: int | None = None
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    admission: BreakerConfig = field(
        default_factory=lambda: BreakerConfig(failure_threshold=3,
                                              cooldown=8))
    use_shm: bool = True

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise SpecificationError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if isinstance(self.cache, str) and self.cache not in ("shared",
                                                              "local"):
            raise SpecificationError(
                f"cache must be 'shared', 'local', False or a RadiusCache "
                f"instance, got {self.cache!r}")


class RadiusTicket:
    """A handle to one in-flight radius request.

    Returned immediately by :meth:`RadiusService.submit`; the request is
    solved by the service's dispatcher in admission order.  Call
    :meth:`result` to block for the answers (or :meth:`done` to poll).
    """

    def __init__(self, request_id: int, n_problems: int) -> None:
        self.request_id = request_id
        self.n_problems = n_problems
        self._event = threading.Event()
        self._results: list[RadiusResult] | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the request has finished (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> list[RadiusResult]:
        """Block until the request finishes; return its results in order.

        Re-raises the request's exception if it failed, and
        :class:`TimeoutError` if ``timeout`` seconds elapse first (the
        request itself keeps running).
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not done after {timeout:g} s")
        if self._error is not None:
            raise self._error
        assert self._results is not None
        return self._results

    def _resolve(self, results: list[RadiusResult]) -> None:
        self._results = results
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return (f"RadiusTicket(id={self.request_id}, "
                f"problems={self.n_problems}, {state})")


@dataclass
class _Request:
    ticket: RadiusTicket
    problems: list[RadiusProblem]
    method: str
    seed: object


def _solve_group_shm(descriptor: BatchDescriptor, indices: list[int],
                     method: str, seed, cache) -> list[RadiusResult]:
    """Picklable worker body: solve a structural group out of a shm batch.

    The task carries a few-dozen-byte descriptor plus indices instead of
    pickled problems; the batch is attached and header-decoded once per
    worker process (:func:`~repro.service.shm.attach_batch`).  ``cache``
    is the service's :class:`~repro.service.cache.SharedRadiusCache`
    proxy (workers consult and populate the shared store directly) or
    ``None`` for cache-off solving — the frontend then stores results.
    """
    batch = attach_batch(descriptor)
    return solve_group([batch.problem(i) for i in indices], method=method,
                       seed=seed,
                       cache=cache if cache is not None else False)


def _solve_group_pickled(problems: list[RadiusProblem], method: str,
                         seed, cache) -> list[RadiusResult]:
    """Worker body for ``use_shm=False``: problems pickled into the task."""
    return solve_group(problems, method=method, seed=seed,
                       cache=cache if cache is not None else False)


class RadiusService:
    """Long-lived radius server: persistent pool, shm dispatch, shared cache.

    Parameters
    ----------
    workers:
        Worker-process count of the persistent pool (``1`` = in-process
        serving, still supervised and still async).
    config:
        Service tuning (queue bound, cache policy, supervision,
        admission thresholds); see :class:`ServiceConfig`.
    seed:
        Seed for the supervised executor's retry-jitter stream (task
        results never depend on it).

    Use as a context manager (or call :meth:`close`): shutdown drains
    already-admitted requests, stops the dispatcher, closes the pool and
    the owned cache, and unlinks any shared-memory batch the dispatcher
    had in flight.

    Thread safety: :meth:`submit`, :meth:`gather` and :meth:`compute`
    may be called from any number of client threads concurrently;
    requests are processed strictly in admission order.
    """

    def __init__(self, workers: int = 1, *,
                 config: ServiceConfig | None = None, seed=None) -> None:
        self.config = config if config is not None else ServiceConfig()
        if not isinstance(self.config, ServiceConfig):
            raise SpecificationError(
                f"config must be a ServiceConfig, got "
                f"{type(self.config).__name__}")
        self.executor = SupervisedExecutor(
            workers, config=self.config.supervisor, seed=seed)
        self.admission = CircuitBreaker(self.config.admission)
        self._queue: queue.Queue[_Request | None] = queue.Queue(
            maxsize=self.config.queue_limit)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        #: Requests admitted / shed / completed / failed over the lifetime.
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0

        cache_spec = self.config.cache
        self._owns_cache = isinstance(cache_spec, str)
        if cache_spec == "shared":
            self.cache: RadiusCache | None = SharedRadiusCache(
                self.config.cache_entries)
        elif cache_spec == "local":
            self.cache = RadiusCache(self.config.cache_entries)
        elif cache_spec is False or cache_spec is None:
            self.cache = None
            self._owns_cache = False
        elif isinstance(cache_spec, RadiusCache):
            self.cache = cache_spec
        else:
            raise SpecificationError(
                f"config.cache must be 'shared', 'local', False or a "
                f"RadiusCache instance, got {cache_spec!r}")

        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-radius-dispatcher",
            daemon=True)
        self._dispatcher.start()
        logger.info("radius service up: workers=%d queue_limit=%d cache=%s "
                    "shm=%s", workers, self.config.queue_limit,
                    type(self.cache).__name__ if self.cache else "off",
                    self.config.use_shm)

    # ------------------------------------------------------------------
    # frontend
    # ------------------------------------------------------------------
    def submit(self, problems: Sequence[RadiusProblem], *,
               method: str = "auto", seed=None) -> RadiusTicket:
        """Enqueue a radius request; returns its ticket immediately.

        Raises
        ------
        ServiceOverloadError
            When the admission breaker is open or the bounded queue is
            full — the request was *not* enqueued; retry later or fall
            back to the in-process :func:`~repro.core.radius.compute_radii`.
        ServiceClosedError
            When the service has been closed.
        """
        problems = list(problems)
        if not problems:
            raise SpecificationError("cannot submit an empty request")
        for p in problems:
            if not isinstance(p, RadiusProblem):
                raise SpecificationError(
                    f"problems must be RadiusProblem instances, got "
                    f"{type(p).__name__}")
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if not self.admission.allow_pool():
                # Open breaker: shed without touching the queue.  Each
                # shed attempt advances the deterministic cooldown, so
                # after `cooldown` rejected submissions the breaker goes
                # half-open and the next request probes the queue again.
                self.admission.record_serial_execution(1)
                return self._shed(len(problems), "admission breaker open")
            ticket = RadiusTicket(next(self._ids), len(problems))
            request = _Request(ticket, problems, method, seed)
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self.admission.record_pool_failure()
                return self._shed(len(problems), "request queue full")
            self.admission.record_pool_success()
            self.admitted += 1
            get_metrics().inc("service.requests")
            get_metrics().set_gauge("service.queue_depth",
                                    float(self._queue.qsize()))
            emit_event("service.admit", request=ticket.request_id,
                       problems=len(problems))
            return ticket

    def _shed(self, n_problems: int, reason: str) -> RadiusTicket:
        self.shed += 1
        get_metrics().inc("service.sheds")
        emit_event("service.shed", reason=reason, problems=n_problems,
                   breaker=self.admission.state)
        logger.warning("request shed (%s); %d request(s) shed so far",
                       reason, self.shed)
        raise ServiceOverloadError(
            f"request shed: {reason} "
            f"(queue_limit={self.config.queue_limit}, "
            f"admission breaker {self.admission.state})")

    def gather(self, tickets: Sequence[RadiusTicket],
               timeout: float | None = None) -> list[list[RadiusResult]]:
        """Block for many tickets; one result list per ticket, in order."""
        return [t.result(timeout) for t in tickets]

    def compute(self, problems: Sequence[RadiusProblem], *,
                method: str = "auto", seed=None) -> list[RadiusResult]:
        """Synchronous convenience: :meth:`submit` + :meth:`~RadiusTicket.result`.

        Element ``i`` is bit-identical to
        ``compute_radius(problems[i], method=method, seed=seed)``.
        """
        return self.submit(problems, method=method, seed=seed).result()

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:  # shutdown sentinel
                break
            get_metrics().set_gauge("service.queue_depth",
                                    float(self._queue.qsize()))
            get_metrics().set_gauge("service.inflight", 1.0)
            try:
                self._process(request)
            finally:
                get_metrics().set_gauge("service.inflight", 0.0)

    def _process(self, request: _Request) -> None:
        ticket = request.ticket
        with span("service.request", request=ticket.request_id,
                  problems=ticket.n_problems) as sp:
            try:
                results = self._solve(request.problems, request.method,
                                      request.seed, sp)
            except BaseException as exc:
                self.failed += 1
                get_metrics().inc("service.failures")
                emit_event("service.error", request=ticket.request_id,
                           error=f"{type(exc).__name__}: {exc}")
                logger.exception("request %d failed", ticket.request_id)
                ticket._reject(exc)
                return
        self.completed += 1
        get_metrics().inc("service.completed")
        emit_event("service.done", request=ticket.request_id,
                   problems=ticket.n_problems)
        ticket._resolve(results)

    def _solve(self, problems: list[RadiusProblem], method: str, seed,
               sp) -> list[RadiusResult]:
        """One request, mirroring :func:`~repro.core.radius.compute_radii`:
        cache pass → structural grouping → grouped dispatch → ordered merge.
        """
        cache = self.cache
        keys: list[str | None] = [None] * len(problems)
        results: list[RadiusResult | None] = [None] * len(problems)
        if cache is not None:
            for i, problem in enumerate(problems):
                keys[i] = cache.key(problem, method=method, seed=seed)
                results[i] = cache.get(keys[i])
        pending = [i for i, r in enumerate(results) if r is None]
        if sp is not None:
            sp.tags["hits"] = len(problems) - len(pending)
        if not pending:
            return results  # fully served from cache

        groups: dict[tuple, list[int]] = {}
        for i in pending:
            groups.setdefault(_solver_structure(problems[i], method),
                              []).append(i)
        # Workers talk to the shared store directly; a local cache cannot
        # cross the process boundary, so the frontend stores for it after
        # the gather.
        shared = cache if isinstance(cache, SharedRadiusCache) else None
        stateless = not isinstance(seed, np.random.Generator)

        if self.config.use_shm and stateless:
            # Position of problem i inside the published miss-batch.
            position = {i: j for j, i in enumerate(pending)}
            with SharedProblemBatch.publish(
                    [problems[i] for i in pending]) as batch:
                tasks = [Task(_solve_group_shm,
                              (batch.descriptor,
                               [position[i] for i in idxs],
                               method, seed, shared))
                         for idxs in groups.values()]
                solved = resolve_task_failures(
                    self.executor.run(tasks), tasks, executor=self.executor)
        else:
            tasks = [Task(_solve_group_pickled,
                          ([problems[i] for i in idxs], method,
                           seed, shared if stateless else None))
                     for idxs in groups.values()]
            solved = resolve_task_failures(
                self.executor.run(tasks), tasks, executor=self.executor)

        for idxs, group_results in zip(groups.values(), solved):
            for i, result in zip(idxs, group_results):
                results[i] = result
        if cache is not None and shared is None:
            for i in pending:
                cache.put(keys[i], results[i])
        return results

    # ------------------------------------------------------------------
    # lifecycle and diagnostics
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed (or begun)."""
        return self._closed

    def queue_depth(self) -> int:
        """Requests currently waiting for the dispatcher."""
        return self._queue.qsize()

    def stats(self) -> dict:
        """JSON-safe service counters (plus executor/cache/breaker state)."""
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "admission": self.admission.snapshot(),
            "executor": self.executor.stats(),
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    def close(self, timeout: float | None = None) -> None:
        """Drain admitted requests, then shut everything down (idempotent).

        New submissions are rejected immediately
        (:class:`~repro.exceptions.ServiceClosedError`); requests already
        in the queue are still processed — their tickets resolve — before
        the dispatcher stops, the pool closes, and the owned cache's
        manager shuts down.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)  # FIFO: lands after every admitted request
        self._dispatcher.join(timeout)
        if self._dispatcher.is_alive():  # pragma: no cover - stuck solver
            logger.warning("dispatcher still running after %s s; pool and "
                           "cache are left open", timeout)
            return
        self.executor.close()
        if self._owns_cache and isinstance(self.cache, SharedRadiusCache):
            self.cache.close()
        logger.info("radius service closed: %d completed, %d shed",
                    self.completed, self.shed)

    def __enter__(self) -> "RadiusService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"RadiusService(workers={self.executor.workers}, "
                f"queue={self._queue.qsize()}/{self.config.queue_limit}, "
                f"completed={self.completed}, shed={self.shed}, "
                f"closed={self._closed})")
