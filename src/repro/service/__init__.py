"""Radius-as-a-service: persistent pool, shared-memory dispatch, shared cache.

The serving layer over the solver stack (see :mod:`repro.service.service`
for the architecture, and ``docs/SERVICE.md`` for the operator view)::

    from repro.service import RadiusService

    with RadiusService(workers=4) as service:
        tickets = [service.submit(batch) for batch in batches]
        results = service.gather(tickets)

Results are bit-identical to the in-process library path
(:func:`repro.core.radius.compute_radii`), which also accepts a running
service directly via its ``service=`` seam.
"""

from repro.service.cache import SharedRadiusCache
from repro.service.service import RadiusService, RadiusTicket, ServiceConfig
from repro.service.shm import (
    BatchDescriptor,
    SharedProblemBatch,
    assert_no_leaked_segments,
)

__all__ = [
    "RadiusService",
    "RadiusTicket",
    "ServiceConfig",
    "SharedRadiusCache",
    "SharedProblemBatch",
    "BatchDescriptor",
    "assert_no_leaked_segments",
]
