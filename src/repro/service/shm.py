"""Shared-memory batch publication for the radius service.

The per-call fan-out path pickles every :class:`~repro.core.radius.RadiusProblem`
into each worker task, so a batch of N problems over W workers ships the
same origin/bounds/coefficient payload N times.  A
:class:`SharedProblemBatch` publishes the batch **once** into two
:class:`multiprocessing.shared_memory.SharedMemory` blocks:

* a *data* block — one contiguous ``float64`` array holding every
  problem's origin and box-bound vectors back to back;
* a *meta* block — a single pickled header with the deduplicated mapping
  table (problems sharing one mapping object, e.g. a group of operating
  points over the same system, serialize it once), per-problem offsets
  into the data block, tolerance bounds, and norms.

A task then carries only a tiny :class:`BatchDescriptor` plus the indices
it should solve; workers attach by name and decode the header **once per
process** (module-level cache), so a long-lived pool stops unpickling
whole problems on every task.

Lifecycle discipline is absolute: every published segment is tracked in a
module registry, unlinked via context-manager exit *and* an ``atexit``
safety net, and accounted in the ``service.shm_bytes`` gauge.
:func:`assert_no_leaked_segments` turns a stranded ``/dev/shm`` block
into a loud test failure instead of silent disk-backed garbage.
"""

from __future__ import annotations

import atexit
import logging
import os
import pickle
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.core.radius import RadiusProblem
from repro.exceptions import SpecificationError
from repro.observability import emit_event, get_metrics

__all__ = [
    "SEGMENT_PREFIX",
    "BatchDescriptor",
    "SharedProblemBatch",
    "attach_batch",
    "active_segments",
    "assert_no_leaked_segments",
    "worker_batch_cache_info",
]

logger = logging.getLogger(__name__)

#: Prefix of every shared-memory segment this module creates.  Scoped by
#: pid so concurrent services on one machine never collide, and so the
#: leak guard can tell this process's strands from a sibling's.
SEGMENT_PREFIX = "repro_svc"

#: Publisher-side registry of live batches, keyed by data-segment name.
_LIVE: dict[str, "SharedProblemBatch"] = {}

#: Worker-side cache of decoded batches, keyed by data-segment name.
#: Bounded: decoding is cheap next to a solve, but attached segments pin
#: their pages, so a worker keeps only the most recent few batches.
_WORKER_BATCHES: dict[str, "_DecodedBatch"] = {}
_WORKER_CACHE_LIMIT = 4

_atexit_registered = False


def _segment_name(kind: str) -> str:
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{kind}_{uuid.uuid4().hex[:12]}"


def _update_shm_gauge() -> None:
    get_metrics().set_gauge(
        "service.shm_bytes",
        float(sum(batch.nbytes for batch in _LIVE.values())))


def _release_all_segments() -> None:
    """``atexit`` safety net: unlink whatever close() never reached."""
    for batch in list(_LIVE.values()):
        logger.warning("unlinking shared-memory batch %s at interpreter "
                       "exit; close() was never called", batch.data_name)
        batch.close()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without registering it with the resource tracker.

    On attach (``create=False``) CPython <= 3.12 registers the segment
    with the resource tracker exactly as if this process had created it
    — under the ``fork`` start method all processes share one tracker,
    so attach/detach cycles in workers corrupt the publisher's
    registration (double-unregister noise, or the tracker unlinking the
    block out from under the publisher).  Only the publisher owns the
    unlink; attaching must not track.  The tracker has no public opt-out
    before Python 3.13's ``track=False``, so registration is suppressed
    for the duration of the attach call.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _register_skipping_shm(rname, rtype):  # pragma: no cover - trivial
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _register_skipping_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class BatchDescriptor:
    """Everything a worker needs to attach one published batch.

    A few dozen bytes that replace the pickled problems in every task:
    the segment names, the data-block length (attaching maps whole pages;
    the logical length restores the exact array), and the problem count
    for sanity checks.
    """

    data_name: str
    meta_name: str
    data_length: int
    n_problems: int


class SharedProblemBatch:
    """One radius-problem batch published into shared memory.

    Build with :meth:`publish`; hand :attr:`descriptor` plus per-task
    indices to workers; release with :meth:`close` (or use as a context
    manager — the batch unlinks on exit even when a request fails).

    Notes
    -----
    The publisher must outlive every task that reads the batch: tasks
    attach by name, and an unlinked segment cannot be attached.  The
    radius service guarantees this by closing a batch only after the
    request that published it has gathered all its group results.
    """

    def __init__(self, data: shared_memory.SharedMemory,
                 meta: shared_memory.SharedMemory, data_length: int,
                 n_problems: int) -> None:
        self._data = data
        self._meta = meta
        self.descriptor = BatchDescriptor(
            data_name=data.name, meta_name=meta.name,
            data_length=data_length, n_problems=n_problems)
        self.nbytes = data.size + meta.size
        self.closed = False
        global _atexit_registered
        if not _atexit_registered:
            atexit.register(_release_all_segments)
            _atexit_registered = True
        _LIVE[data.name] = self
        get_metrics().inc("service.shm_batches")
        emit_event("service.shm_publish", name=data.name,
                   problems=n_problems, bytes=self.nbytes)
        _update_shm_gauge()

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, problems: Sequence[RadiusProblem]
                ) -> "SharedProblemBatch":
        """Pack a problem batch into fresh shared-memory blocks.

        The mapping table is deduplicated by object identity — a group of
        problems over one system's mapping serializes it exactly once —
        and every numeric vector lands in one contiguous ``float64``
        block.  Decoding (:func:`attach_batch`) reconstructs problems
        that are bit-identical to the originals.
        """
        problems = list(problems)
        if not problems:
            raise SpecificationError("cannot publish an empty batch")
        mapping_table: list = []
        mapping_index: dict[int, int] = {}
        chunks: list[np.ndarray] = []
        headers: list[dict] = []
        offset = 0

        def _push(arr: np.ndarray | None) -> int:
            nonlocal offset
            if arr is None:
                return -1
            arr = np.ascontiguousarray(arr, dtype=np.float64)
            chunks.append(arr)
            start = offset
            offset += arr.size
            return start

        for problem in problems:
            key = id(problem.mapping)
            if key not in mapping_index:
                mapping_index[key] = len(mapping_table)
                mapping_table.append(problem.mapping)
            headers.append({
                "mapping": mapping_index[key],
                "n": int(problem.origin.size),
                "origin": _push(problem.origin),
                "lower": _push(problem.lower),
                "upper": _push(problem.upper),
                "bounds": problem.bounds,
                "norm": problem.norm,
            })
        flat = (np.concatenate(chunks) if chunks
                else np.empty(0, dtype=np.float64))
        meta_blob = pickle.dumps(
            {"mappings": mapping_table, "problems": headers},
            protocol=pickle.HIGHEST_PROTOCOL)

        data = shared_memory.SharedMemory(
            name=_segment_name("data"), create=True,
            size=max(1, flat.nbytes))
        try:
            meta = shared_memory.SharedMemory(
                name=_segment_name("meta"), create=True,
                size=max(1, len(meta_blob)))
        except Exception:
            data.close()
            data.unlink()
            raise
        if flat.size:
            np.ndarray(flat.shape, dtype=np.float64,
                       buffer=data.buf)[:] = flat
        meta.buf[:len(meta_blob)] = meta_blob
        return cls(data, meta, data_length=int(flat.size),
                   n_problems=len(problems))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink both segments (idempotent)."""
        if self.closed:
            return
        self.closed = True
        _LIVE.pop(self.descriptor.data_name, None)
        for segment in (self._data, self._meta):
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        emit_event("service.shm_unlink", name=self.descriptor.data_name)
        _update_shm_gauge()

    def __enter__(self) -> "SharedProblemBatch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SharedProblemBatch(name={self.descriptor.data_name!r}, "
                f"problems={self.descriptor.n_problems}, "
                f"bytes={self.nbytes}, closed={self.closed})")


class _DecodedBatch:
    """A worker's attached, header-decoded view of one published batch."""

    def __init__(self, descriptor: BatchDescriptor) -> None:
        self._data = _attach_untracked(descriptor.data_name)
        meta_shm = _attach_untracked(descriptor.meta_name)
        try:
            meta = pickle.loads(bytes(meta_shm.buf))
        finally:
            meta_shm.close()
        self._flat = np.ndarray((descriptor.data_length,),
                                dtype=np.float64, buffer=self._data.buf)
        self._mappings = meta["mappings"]
        self._headers = meta["problems"]
        if len(self._headers) != descriptor.n_problems:
            raise SpecificationError(
                f"batch {descriptor.data_name} header carries "
                f"{len(self._headers)} problem(s), descriptor says "
                f"{descriptor.n_problems}")

    def _slice(self, start: int, n: int) -> np.ndarray | None:
        if start < 0:
            return None
        # Copy out of the mapped buffer: the reconstructed problem must
        # stay valid after this batch is evicted from the worker cache.
        return self._flat[start:start + n].copy()

    def problem(self, index: int) -> RadiusProblem:
        """Reconstruct problem ``index`` exactly as it was published."""
        h = self._headers[index]
        n = h["n"]
        return RadiusProblem(
            mapping=self._mappings[h["mapping"]],
            origin=self._slice(h["origin"], n),
            bounds=h["bounds"],
            lower=self._slice(h["lower"], n),
            upper=self._slice(h["upper"], n),
            norm=h["norm"],
        )

    def release(self) -> None:
        self._flat = None
        self._data.close()


def attach_batch(descriptor: BatchDescriptor) -> _DecodedBatch:
    """Attach (or reuse) a published batch in this process.

    The first task of a batch reaching a worker pays one attach + one
    header unpickle; every later task of the same batch is served from
    the module cache.  The cache holds the most recent
    ``_WORKER_CACHE_LIMIT`` batches; evicted entries detach their
    segments (the publisher still owns the unlink).
    """
    cached = _WORKER_BATCHES.get(descriptor.data_name)
    if cached is not None:
        return cached
    decoded = _DecodedBatch(descriptor)
    while len(_WORKER_BATCHES) >= _WORKER_CACHE_LIMIT:
        oldest = next(iter(_WORKER_BATCHES))
        _WORKER_BATCHES.pop(oldest).release()
    _WORKER_BATCHES[descriptor.data_name] = decoded
    return decoded


def worker_batch_cache_info() -> dict:
    """Size and keys of this process's decoded-batch cache (diagnostics)."""
    return {"entries": len(_WORKER_BATCHES),
            "names": sorted(_WORKER_BATCHES)}


# ----------------------------------------------------------------------
# leak guard
# ----------------------------------------------------------------------
def active_segments() -> list[str]:
    """Names of the batches this process has published and not yet closed."""
    return sorted(_LIVE)


def _stranded_dev_shm_segments() -> list[str]:
    """``/dev/shm`` entries carrying our prefix but unknown to the registry.

    These are strands of a *crashed* publisher (this process or an
    earlier one); a live publisher's segments are in :data:`_LIVE` and
    reported separately.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    try:
        entries = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - permission oddities
        return []
    return sorted(name for name in entries
                  if name.startswith(SEGMENT_PREFIX + "_")
                  and name not in _LIVE)


def assert_no_leaked_segments(*, cleanup: bool = True) -> None:
    """Fail loudly when shared-memory segments were stranded.

    The test-time half of the leak guard: call it after exercising the
    service and it raises :class:`AssertionError` naming every segment
    that is still live in this process's registry or stranded under
    ``/dev/shm`` with our prefix.  With ``cleanup`` (the default) the
    offenders are unlinked first, so one failing test cannot poison the
    next; pass ``cleanup=False`` to inspect the strands post mortem.
    """
    live = active_segments()
    stranded = _stranded_dev_shm_segments()
    if not live and not stranded:
        return
    if cleanup:
        for batch in list(_LIVE.values()):
            batch.close()
        for name in stranded:
            try:
                segment = shared_memory.SharedMemory(name=name)
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass
    raise AssertionError(
        "leaked shared-memory segment(s): "
        f"live={live} stranded={stranded}"
        + ("; cleaned up" if cleanup else ""))
