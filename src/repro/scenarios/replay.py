"""Replay engine: drive an allocation through a shock trajectory.

For each step of a :class:`~repro.scenarios.shocks.ShockScenario` the
engine applies the drawn displacement to the perturbation parameters
(clipped into their physical boxes), evaluates every performance
feature, and records:

* the **violation series** — whether any feature left its tolerance
  interval at that step;
* the **P-space distance** from the original operating point (the
  paper's step (b)), comparable against the analytic radius ``rho``;
* per-feature **drawdown** — the worst fraction of the margin to
  ``beta`` consumed along the trajectory (1.0 = the bound was reached);
* **time-to-first-violation**.

Trajectories are independent and fan out through a
:class:`~repro.resilience.SupervisedExecutor`; each is a pure function
of ``(seed, scenario, trajectory)``, so the merged result is
bit-identical for any worker count, traced or untraced.

The lab measures distances in a *shared* P-space (one weighting for all
features), so radius-dependent weightings (sensitivity) are rejected —
their per-feature alphas would give one trajectory several incomparable
distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.core.fepia import FeatureSpec, RobustnessAnalysis
from repro.core.perturbation import PerturbationParameter
from repro.core.pspace import ConcatenatedPerturbation
from repro.exceptions import SpecificationError
from repro.observability import emit_event, span
from repro.parallel.executor import Task
from repro.scenarios.shocks import ShockScenario

__all__ = [
    "ReplayContext",
    "TrajectoryResult",
    "ReplayResult",
    "replay_scenario",
]


@dataclass(frozen=True)
class ReplayContext:
    """The picklable slice of an analysis a replay worker needs.

    Built once per lab run with :meth:`from_analysis` and shipped to
    worker processes alongside each trajectory task; everything in it is
    plain data (parameters, feature specs, the shared P-space alphas and
    the norm), so the supervised executor can fan trajectories out.
    """

    params: tuple[PerturbationParameter, ...]
    features: tuple[FeatureSpec, ...]
    alphas: np.ndarray
    norm: float

    @classmethod
    def from_analysis(cls, analysis: RobustnessAnalysis) -> "ReplayContext":
        """Extract the replay context of an analysis.

        Raises
        ------
        SpecificationError
            For radius-dependent weightings (sensitivity): their
            P-space is per-feature, so a single trajectory distance is
            undefined.  Use identity/normalized/custom weightings.
        """
        if analysis.weighting.requires_radii:
            raise SpecificationError(
                f"the scenario lab needs a shared P-space, but "
                f"{type(analysis.weighting).__name__} builds one per "
                "feature; use an identity/normalized/custom weighting")
        pspace = analysis.pspace(None)
        return cls(params=tuple(analysis.params),
                   features=tuple(analysis.features),
                   alphas=np.array(pspace.alphas, dtype=np.float64),
                   norm=float(analysis.norm))

    def pspace(self) -> ConcatenatedPerturbation:
        """Rebuild the shared P-space (cheap, done once per trajectory)."""
        return ConcatenatedPerturbation(list(self.params), self.alphas,
                                        weighting_name="lab")


@dataclass(frozen=True)
class TrajectoryResult:
    """One replayed trajectory, step by step.

    Attributes
    ----------
    scenario:
        Name of the scenario that generated the trajectory.
    trajectory:
        Trajectory index within its scenario.
    violations:
        Per-step flag: did *any* feature leave its tolerance interval?
    distances:
        Per-step P-space distance from the original operating point.
    first_violation_step:
        Index of the first violating step, or ``None``.
    max_drawdown:
        Per feature, the worst fraction of the margin to its ``beta``
        bound consumed along the trajectory (can exceed 1 on violation).
    """

    scenario: str
    trajectory: int
    violations: tuple[bool, ...]
    distances: tuple[float, ...]
    first_violation_step: int | None
    max_drawdown: dict[str, float]

    @property
    def n_steps(self) -> int:
        """Trajectory length."""
        return len(self.violations)

    @property
    def n_violations(self) -> int:
        """Number of violating steps."""
        return sum(1 for v in self.violations if v)

    @property
    def violation_rate(self) -> float:
        """Fraction of violating steps."""
        return self.n_violations / self.n_steps if self.n_steps else 0.0


def _margin_used(value: float, original: float, beta_min: float,
                 beta_max: float) -> float:
    """Fraction of the margin from the original value to a bound consumed.

    Computed against whichever finite bound the value moved towards;
    0 when it moved away from every finite bound, > 1 once violated.
    """
    used = 0.0
    if math.isfinite(beta_max) and beta_max > original and value > original:
        used = max(used, (value - original) / (beta_max - original))
    if math.isfinite(beta_min) and beta_min < original and value < original:
        used = max(used, (original - value) / (original - beta_min))
    return used


def _replay_trajectory_task(ctx: ReplayContext, scenario: ShockScenario,
                            seed: int, trajectory: int,
                            frozen: str | None = None) -> TrajectoryResult:
    """Replay one trajectory — a pure, picklable, module-level task.

    ``frozen`` names one perturbation parameter whose displacement is
    suppressed (held at its original value) — the ablation lever.
    """
    pspace = ctx.pspace()
    originals = {spec.name: spec.mapping.value(pspace.pi_orig)
                 for spec in ctx.features}
    order = np.inf if ctx.norm in (np.inf, "inf") else ctx.norm
    violations: list[bool] = []
    distances: list[float] = []
    drawdown = {name: 0.0 for name in originals}
    first_violation: int | None = None
    for step in range(scenario.n_steps):
        disp = scenario.displacements(seed, trajectory, step, ctx.params)
        if frozen is not None:
            disp.pop(frozen, None)
        values = {}
        for p in ctx.params:
            block = disp.get(p.name)
            if block is None:
                continue
            values[p.name] = p.clip_to_bounds(p.original + block)
        flat = pspace.flatten_values(values)
        distances.append(float(np.linalg.norm(
            pspace.to_p(flat) - pspace.p_orig, ord=order)))
        violated = False
        for spec in ctx.features:
            value = float(spec.mapping.value(flat))
            bounds = spec.feature.bounds
            drawdown[spec.name] = max(
                drawdown[spec.name],
                _margin_used(value, originals[spec.name],
                             bounds.beta_min, bounds.beta_max))
            if not spec.feature.is_satisfied(value):
                violated = True
        violations.append(violated)
        if violated and first_violation is None:
            first_violation = step
    return TrajectoryResult(
        scenario=scenario.name,
        trajectory=trajectory,
        violations=tuple(violations),
        distances=tuple(distances),
        first_violation_step=first_violation,
        max_drawdown=drawdown,
    )


@dataclass(frozen=True)
class ReplayResult:
    """All trajectories of one scenario, plus the radius to compare to.

    Attributes
    ----------
    scenario:
        The generating scenario.
    trajectories:
        Per-trajectory results, in trajectory order.
    rho:
        The analytic FePIA robustness metric of the analysed allocation
        (``min_i r(phi_i, P)``), against which the realized P-space
        distances are judged.
    """

    scenario: ShockScenario
    trajectories: tuple[TrajectoryResult, ...]
    rho: float

    @property
    def n_steps_total(self) -> int:
        """Total replayed steps across trajectories."""
        return sum(t.n_steps for t in self.trajectories)

    @property
    def violation_rate(self) -> float:
        """Pooled fraction of violating (trajectory, step) cells."""
        total = self.n_steps_total
        if not total:
            return 0.0
        return sum(t.n_violations for t in self.trajectories) / total

    @property
    def predicted_violation_rate(self) -> float:
        """The radius-based prediction on the same trajectories.

        FePIA guarantees no violation strictly inside the radius ball;
        the fraction of steps whose realized P-distance exceeds ``rho``
        is therefore an *upper bound* on the violation rate — and exact
        along a critical direction.  Comparing the bootstrap CI of the
        empirical rate against this number is the lab's confidence gate.
        """
        total = self.n_steps_total
        if not total:
            return 0.0
        outside = sum(1 for t in self.trajectories
                      for d in t.distances if d > self.rho)
        return outside / total

    @property
    def mean_first_violation_step(self) -> float | None:
        """Mean time-to-first-violation over violating trajectories."""
        firsts = [t.first_violation_step for t in self.trajectories
                  if t.first_violation_step is not None]
        if not firsts:
            return None
        return sum(firsts) / len(firsts)

    @property
    def worst_drawdown(self) -> dict[str, float]:
        """Per feature, the worst drawdown over all trajectories."""
        out: dict[str, float] = {}
        for t in self.trajectories:
            for name, value in t.max_drawdown.items():
                out[name] = max(out.get(name, 0.0), value)
        return out

    def violation_series(self) -> list[np.ndarray]:
        """Per-trajectory boolean violation series (bootstrap input)."""
        return [np.asarray(t.violations, dtype=bool)
                for t in self.trajectories]

    def to_dict(self) -> dict:
        """JSON-safe summary — derived statistics only, fully seeded."""
        mean_first = self.mean_first_violation_step
        return {
            "scenario": self.scenario.to_dict(),
            "trajectories": len(self.trajectories),
            "violation_rate": float(self.violation_rate),
            "predicted_violation_rate": float(self.predicted_violation_rate),
            "mean_first_violation_step": (
                None if mean_first is None else float(mean_first)),
            "worst_drawdown": {k: float(v)
                               for k, v in self.worst_drawdown.items()},
        }


def replay_scenario(
    ctx: ReplayContext,
    scenario: ShockScenario,
    *,
    seed: int,
    n_trajectories: int = 8,
    rho: float,
    executor=None,
    frozen: str | None = None,
) -> ReplayResult:
    """Replay a scenario's trajectories, optionally fanned out.

    Parameters
    ----------
    ctx:
        The analysis slice (see :meth:`ReplayContext.from_analysis`).
    scenario:
        The shock process to realize.
    seed:
        Lab seed; trajectory ``t`` draws from spawn keys
        ``(scenario_key, t, step)`` under this entropy.
    n_trajectories:
        Independent trajectories to replay.
    rho:
        Analytic robustness metric for the prediction comparison.
    executor:
        Optional executor (typically a
        :class:`~repro.resilience.SupervisedExecutor`) to fan
        trajectories out through; quarantined trajectories are re-run
        in-process so the result never contains sentinels.
    frozen:
        Optional parameter name whose displacements are suppressed
        (the ablation lever).
    """
    if n_trajectories < 1:
        raise SpecificationError(
            f"n_trajectories must be >= 1, got {n_trajectories}")
    scenario.active_params(ctx.params)  # validate names up front
    tasks = [Task(_replay_trajectory_task,
                  (ctx, scenario, int(seed), t, frozen))
             for t in range(n_trajectories)]
    with span("lab.replay", scenario=scenario.name,
              trajectories=n_trajectories, frozen=frozen or ""):
        if executor is not None:
            # Imported lazily (resilience imports core modules this
            # package sits next to; avoid any chance of a cycle).
            from repro.resilience.supervisor import resolve_task_failures

            results = resolve_task_failures(executor.run(tasks), tasks,
                                            executor=executor)
        else:
            results = [task() for task in tasks]
    # Workers return private copies of the scenario-name and feature-name
    # strings; re-point every trajectory at the caller's instances so the
    # merged result pickles byte-identically to a serial run (pickle
    # memoizes shared references, so copies change the bytes).
    results = [
        replace(t, scenario=scenario.name,
                max_drawdown={spec.name: t.max_drawdown[spec.name]
                              for spec in ctx.features})
        for t in results]
    result = ReplayResult(scenario=scenario,
                          trajectories=tuple(results), rho=float(rho))
    emit_event("lab.replayed", scenario=scenario.name,
               trajectories=n_trajectories,
               violation_rate=result.violation_rate)
    return result
