"""Block-bootstrap confidence intervals and pass/fail robustness gates.

Replay trajectories are short autocorrelated series (a drift's violation
steps cluster at the end; a spike's cluster around firings), so a naive
i.i.d. bootstrap over steps understates the variance.  The lab uses a
**two-level circular block bootstrap**: resample trajectories with
replacement, then resample circular step-blocks within each — the
standard prescription for dependent series.

:class:`RobustnessGates` turns the resulting statistics into a verdict
with a small threshold grammar, ``{"metric": (op, value)}``::

    RobustnessGates({"violation_rate": ("<=", 0.6),
                     "worst_drawdown": ("<", 1.5)})

mirroring requirement dictionaries like ``{"P_net_MWe": (">=", 500.0)}``
in engineering QoS specs.  All randomness derives from a
:class:`numpy.random.SeedSequence` spawn key, so the same seed yields
the same CI on any machine and worker count.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import SpecificationError
from repro.observability import span

__all__ = [
    "block_bootstrap_violation_rate",
    "parse_gate",
    "GateCheck",
    "GateResult",
    "RobustnessGates",
]

#: Spawn-key tag separating bootstrap draws from every other consumer of
#: the lab seed (scenario draws use scenario-name CRCs).
_BOOTSTRAP_KEY = zlib.crc32(b"repro.scenarios.bootstrap")


def block_bootstrap_violation_rate(
    series: Sequence[np.ndarray],
    *,
    n_boot: int = 200,
    block: int = 10,
    seed: int = 0,
    level: float = 0.95,
) -> dict:
    """Bootstrap CI for the pooled violation rate of replay trajectories.

    Parameters
    ----------
    series:
        One boolean violation series per trajectory (equal lengths).
    n_boot:
        Bootstrap replicates.
    block:
        Circular block length for the within-trajectory resampling
        (clamped to the series length).
    seed:
        Lab seed; draws come from a dedicated spawn key under it.
    level:
        Central CI coverage (default 95%).

    Returns
    -------
    dict
        ``{"mean", "lo", "hi", "n_boot", "block", "level"}`` — the
        observed pooled rate and the percentile CI bounds.
    """
    arrays = [np.asarray(s, dtype=bool).ravel() for s in series]
    if not arrays:
        raise SpecificationError("need at least one trajectory series")
    n_steps = arrays[0].size
    if n_steps == 0 or any(a.size != n_steps for a in arrays):
        raise SpecificationError(
            "trajectory series must be non-empty and equal-length")
    if n_boot < 1:
        raise SpecificationError(f"n_boot must be >= 1, got {n_boot}")
    if block < 1:
        raise SpecificationError(f"block must be >= 1, got {block}")
    if not 0.0 < level < 1.0:
        raise SpecificationError(f"level must be in (0, 1), got {level}")
    block = min(block, n_steps)
    stacked = np.stack(arrays)  # (n_traj, n_steps)
    n_traj = stacked.shape[0]
    observed = float(stacked.mean())
    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=int(seed), spawn_key=(_BOOTSTRAP_KEY,)))
    n_blocks = math.ceil(n_steps / block)
    offsets = np.arange(block)
    rates = np.empty(n_boot)
    with span("lab.bootstrap", n_boot=n_boot, block=block,
              trajectories=n_traj):
        for b in range(n_boot):
            chosen = rng.integers(0, n_traj, size=n_traj)
            starts = rng.integers(0, n_steps, size=(n_traj, n_blocks))
            # Circular blocks: indices (start + offset) mod n_steps,
            # concatenated and truncated back to the series length.
            idx = (starts[:, :, None] + offsets[None, None, :]) % n_steps
            idx = idx.reshape(n_traj, -1)[:, :n_steps]
            rates[b] = stacked[chosen[:, None], idx].mean()
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(rates, [alpha, 1.0 - alpha])
    return {
        "mean": observed,
        "lo": float(lo),
        "hi": float(hi),
        "n_boot": int(n_boot),
        "block": int(block),
        "level": float(level),
    }


# ----------------------------------------------------------------------
# gates
# ----------------------------------------------------------------------
_OPS = {
    "<=": lambda v, t: v <= t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    ">": lambda v, t: v > t,
}


def parse_gate(expr: str) -> tuple[str, tuple[str, float]]:
    """Parse a CLI gate expression like ``violation_rate<=0.6``.

    Returns ``(metric, (op, threshold))`` — one entry of the
    :class:`RobustnessGates` thresholds mapping.  Two-character
    operators are tried first so ``<=`` never parses as ``<``.
    """
    if not isinstance(expr, str) or not expr.strip():
        raise SpecificationError(
            "gate must be a non-empty string like 'violation_rate<=0.6'")
    text = expr.strip()
    for op in ("<=", ">=", "<", ">"):
        metric, sep, value = text.partition(op)
        if not sep:
            continue
        metric = metric.strip()
        if not metric:
            raise SpecificationError(f"gate {expr!r} is missing a metric name")
        try:
            threshold = float(value.strip())
        except ValueError:
            raise SpecificationError(
                f"gate {expr!r} has a non-numeric threshold") from None
        return metric, (op, threshold)
    raise SpecificationError(
        f"gate {expr!r} needs a comparison operator (<=, >=, <, >)")


@dataclass(frozen=True)
class GateCheck:
    """One evaluated gate: ``metric op threshold`` against a value."""

    metric: str
    op: str
    threshold: float
    value: float
    passed: bool

    def to_dict(self) -> dict:
        """JSON-safe record."""
        return {
            "metric": self.metric,
            "op": self.op,
            "threshold": float(self.threshold),
            "value": float(self.value),
            "passed": bool(self.passed),
        }


@dataclass(frozen=True)
class GateResult:
    """Every gate's verdict plus the conjunction."""

    checks: tuple[GateCheck, ...]

    @property
    def passed(self) -> bool:
        """Whether every gate passed."""
        return all(c.passed for c in self.checks)

    def to_dict(self) -> dict:
        """JSON-safe record."""
        return {
            "passed": self.passed,
            "checks": [c.to_dict() for c in self.checks],
        }


class RobustnessGates:
    """Threshold checks over lab metrics, SHAMS-style.

    Parameters
    ----------
    thresholds:
        ``{metric: (op, value)}`` with ``op`` one of ``<=``, ``>=``,
        ``<``, ``>`` — e.g. ``{"violation_rate": ("<=", 0.6)}``.
    """

    def __init__(self, thresholds: Mapping[str, tuple[str, float]]) -> None:
        if not thresholds:
            raise SpecificationError("gates need at least one threshold")
        clean: dict[str, tuple[str, float]] = {}
        for metric, rule in thresholds.items():
            try:
                op, value = rule
            except (TypeError, ValueError):
                raise SpecificationError(
                    f"gate for {metric!r} must be an (op, value) pair, "
                    f"got {rule!r}") from None
            if op not in _OPS:
                raise SpecificationError(
                    f"gate for {metric!r} has unknown operator {op!r}; "
                    f"expected one of {sorted(_OPS)}")
            clean[str(metric)] = (op, float(value))
        self.thresholds = clean

    def evaluate(self, metrics: Mapping[str, float]) -> GateResult:
        """Judge a metrics dict; every gated metric must be present."""
        checks = []
        for metric, (op, threshold) in self.thresholds.items():
            if metric not in metrics:
                raise SpecificationError(
                    f"gated metric {metric!r} is missing; have "
                    f"{sorted(metrics)}")
            value = float(metrics[metric])
            checks.append(GateCheck(metric=metric, op=op,
                                    threshold=threshold, value=value,
                                    passed=_OPS[op](value, threshold)))
        return GateResult(checks=tuple(checks))

    def __repr__(self) -> str:
        rules = ", ".join(f"{m}{op}{v:g}"
                          for m, (op, v) in self.thresholds.items())
        return f"RobustnessGates({rules})"
