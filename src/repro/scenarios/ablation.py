"""Perturbation-kind ablation: which kind dominates the robustness?

The paper's Eq. 1 answers "how far can parameter ``pi_j`` move *alone*
before a requirement breaks" analytically; the lab answers the stochastic
twin — "how much of the realized violation rate disappears if kind ``j``
is frozen at its original values" — and cross-checks the two rankings.

For each perturbation parameter the ablation replays the scenario with
that parameter's displacements suppressed (same seed, same draws for the
others — the freeze is a projection, not a re-draw) and records the drop
in pooled violation rate.  The parameter whose freeze removes the most
violations *dominates* the scenario; the analytic counterpart is the
parameter with the smallest min-over-features single-parameter radius.
"""

from __future__ import annotations

from typing import Mapping

from repro.observability import emit_event, span
from repro.scenarios.replay import ReplayContext, ReplayResult, replay_scenario
from repro.scenarios.shocks import ShockScenario

__all__ = ["run_ablation"]


def run_ablation(
    ctx: ReplayContext,
    scenario: ShockScenario,
    *,
    seed: int,
    n_trajectories: int,
    rho: float,
    full: ReplayResult,
    per_parameter_radii: Mapping[str, float],
    executor=None,
) -> dict:
    """Freeze one perturbation kind at a time and rank the damage.

    Parameters
    ----------
    ctx, scenario, seed, n_trajectories, rho, executor:
        As for :func:`~repro.scenarios.replay.replay_scenario`; the
        frozen replays reuse the exact seed so the unfrozen parameters'
        draws are identical to the full replay's.
    full:
        The unablated replay of the same scenario (the baseline rate).
    per_parameter_radii:
        ``{param: min-over-features single-parameter radius}`` — the
        paper's Eq. 1 numbers to cross-check the stochastic ranking
        against (smaller radius = analytically more dominant).

    Returns
    -------
    dict
        JSON-safe: per-parameter frozen rates and deltas, the stochastic
        dominance ranking, the analytic radius ranking, and whether the
        two agree on the dominant kind.
    """
    full_rate = full.violation_rate
    entries = []
    with span("lab.ablation", scenario=scenario.name,
              params=len(ctx.params)):
        for p in ctx.params:
            frozen = replay_scenario(
                ctx, scenario, seed=seed, n_trajectories=n_trajectories,
                rho=rho, executor=executor, frozen=p.name)
            frozen_rate = frozen.violation_rate
            entries.append({
                "param": p.name,
                "frozen_violation_rate": float(frozen_rate),
                "delta_violation_rate": float(full_rate - frozen_rate),
                "radius": (float(per_parameter_radii[p.name])
                           if p.name in per_parameter_radii else None),
            })
    # Stochastic ranking: biggest rate drop first (ties broken by name
    # so the artifact is stable under dict-order changes).
    dominance = sorted(entries,
                       key=lambda e: (-e["delta_violation_rate"], e["param"]))
    # Analytic ranking: smallest Eq. 1 radius first (None = unranked).
    ranked_radii = sorted(
        (e for e in entries if e["radius"] is not None),
        key=lambda e: (e["radius"], e["param"]))
    radius_ranking = [e["param"] for e in ranked_radii]
    dominant = dominance[0]["param"] if dominance else None
    agreement = bool(radius_ranking
                     and dominance
                     and dominance[0]["delta_violation_rate"] > 0
                     and dominant == radius_ranking[0])
    emit_event("lab.ablated", scenario=scenario.name,
               dominant=dominant or "")
    return {
        "scenario": scenario.name,
        "full_violation_rate": float(full_rate),
        "entries": entries,
        "dominance_ranking": [e["param"] for e in dominance],
        "radius_ranking": radius_ranking,
        "dominant_param": dominant,
        "rank_agreement": agreement,
    }
