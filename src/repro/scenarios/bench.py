"""Replay-throughput benchmark: serial vs supervised fan-out.

:func:`run_lab_benchmark` replays the makespan shock catalogue twice —
once in-process, once fanned out through a
:class:`~repro.resilience.SupervisedExecutor` — and emits a
``repro-bench-lab-v1`` payload with steps-per-second throughput for both
legs plus a byte-identity verdict over the trajectory results (the lab's
determinism contract, measured rather than assumed).

Like the other bench modules this one is import-heavy (it pulls in the
systems layer) and is meant to be imported explicitly::

    from repro.scenarios.bench import run_lab_benchmark
"""

from __future__ import annotations

import time

from repro.exceptions import SpecificationError
from repro.parallel.bench import LAB_BENCH_SCHEMA
from repro.parallel.executor import default_workers
from repro.resilience.chaos import bit_identical
from repro.resilience.supervisor import SupervisedExecutor, SupervisorConfig
from repro.scenarios.replay import ReplayContext, replay_scenario

__all__ = ["run_lab_benchmark"]


def _bench_fixture(seed: int, tasks: int, machines: int, beta: float,
                   n_steps: int):
    """A makespan system, its replay context, rho, and the catalogue."""
    from repro.systems.heuristics import MCT
    from repro.systems.independent import generate_etc_gamma
    from repro.systems.independent.makespan import MakespanSystem
    from repro.systems.independent.scenarios import (
        makespan_scenario_catalogue,
    )

    etc = generate_etc_gamma(tasks, machines, seed=seed)
    system = MakespanSystem(etc, MCT().allocate(etc))
    analysis = system.robustness_analysis(beta=beta, seed=seed)
    ctx = ReplayContext.from_analysis(analysis)
    rho = float(min(system.analytic_radii(beta)))
    catalogue = makespan_scenario_catalogue(system, beta, n_steps=n_steps)
    return ctx, rho, catalogue


def run_lab_benchmark(
    *,
    workers: int | None = None,
    seed: int = 2005,
    n_trajectories: int = 8,
    n_steps: int = 60,
    tasks: int = 24,
    machines: int = 6,
    beta: float = 1.2,
) -> dict:
    """Benchmark scenario replay serially vs supervised fan-out.

    Parameters
    ----------
    workers:
        Worker count for the supervised leg; defaults to
        :func:`~repro.parallel.executor.default_workers`.
    seed:
        Seed for both the generated system and every replay (both legs
        must share it for the identity verdict to be meaningful).
    n_trajectories, n_steps:
        Replay volume per scenario.
    tasks, machines, beta:
        Shape of the generated makespan instance.

    Returns
    -------
    dict
        A ``repro-bench-lab-v1`` payload (see
        :func:`repro.parallel.bench.validate_bench_payload`).
    """
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise SpecificationError(f"workers must be >= 1, got {workers}")
    ctx, rho, catalogue = _bench_fixture(seed, tasks, machines, beta,
                                         n_steps)

    t0 = time.perf_counter()
    serial = [replay_scenario(ctx, sc, seed=seed,
                              n_trajectories=n_trajectories, rho=rho)
              for sc in catalogue]
    serial_seconds = time.perf_counter() - t0

    with SupervisedExecutor(workers, config=SupervisorConfig(),
                            seed=seed) as ex:
        t0 = time.perf_counter()
        supervised = [replay_scenario(ctx, sc, seed=seed,
                                      n_trajectories=n_trajectories,
                                      rho=rho, executor=ex)
                      for sc in catalogue]
        supervised_seconds = time.perf_counter() - t0
        executor_stats = ex.stats()

    steps_total = sum(r.n_steps_total for r in serial)
    identical = all(
        bit_identical(a.trajectories, b.trajectories)
        for a, b in zip(serial, supervised))
    return {
        "schema": LAB_BENCH_SCHEMA,
        "workers": int(workers),
        "seed": int(seed),
        "trajectories": int(n_trajectories),
        "steps_total": int(steps_total),
        "scenarios": [sc.name for sc in catalogue],
        "serial_seconds": float(serial_seconds),
        "supervised_seconds": float(supervised_seconds),
        "serial_steps_per_sec": (float(steps_total / serial_seconds)
                                 if serial_seconds > 0 else 0.0),
        "supervised_steps_per_sec": (
            float(steps_total / supervised_seconds)
            if supervised_seconds > 0 else 0.0),
        "speedup": (float(serial_seconds / supervised_seconds)
                    if supervised_seconds > 0 else 0.0),
        "identical": bool(identical),
        "executor": executor_stats,
    }
