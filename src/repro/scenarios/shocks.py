"""Shock catalogue: named, seeded perturbation-trajectory generators.

A :class:`ShockScenario` describes a stochastic process over the paper's
perturbation space.  Its draws are **pure functions** of
``(seed, scenario, trajectory, step)``: every random number comes from an
RNG spawned at ``SeedSequence(entropy=seed,
spawn_key=(scenario_key, trajectory, step))``, where ``scenario_key`` is
a CRC-32 of the scenario name — the same determinism discipline as
:class:`~repro.resilience.chaos.ChaosPolicy`.  Two consequences:

* replaying a trajectory is stateless — step 17 can be drawn without
  drawing steps 0..16, so trajectories parallelise freely and results
  are bit-identical for any worker count;
* two scenarios with different names never share a stream, even under
  the same lab seed.

Three shock kinds are shipped:

``spike``
    Each step independently fires with probability :attr:`rate`; a
    firing step displaces a random half of the affected elements by
    centred Gaussian noise scaled by :attr:`magnitude`.
``drift``
    A deterministic ramp reaching :attr:`magnitude` (measured as
    pi-space Euclidean length) at the final step, along either an
    explicit per-parameter :attr:`directions` vector or the default
    uniform-inflation direction; :attr:`jitter` adds bounded
    multiplicative noise per step.
``correlated``
    A single latent factor per step moves *every* affected parameter at
    once through per-trajectory random loadings — a multi-kind shock in
    which unlike parameters (seconds, bytes, objects/set) co-move, the
    regime the IPDPS'05 paper's concatenated P-space exists for.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.perturbation import PerturbationParameter
from repro.exceptions import SpecGrammarError, SpecificationError
from repro.utils.specs import SpecField, parse_kv_spec, spec_grammar

__all__ = ["SHOCK_KINDS", "ShockScenario", "parse_shock_spec"]

#: The shipped shock-process kinds.
SHOCK_KINDS = ("spike", "drift", "correlated")

#: Reserved pseudo-step for a trajectory's static draws (e.g. the
#: correlated kind's loadings), far outside any realistic step range.
_STATIC_STEP = 2**31 - 1


@dataclass(frozen=True)
class ShockScenario:
    """A named, seeded shock process over the perturbation space.

    Attributes
    ----------
    name:
        Unique identifier; hashed into the scenario's spawn key, so two
        differently-named scenarios never share random draws.
    kind:
        One of :data:`SHOCK_KINDS`.
    magnitude:
        Scale of the shock in pi-space units: the ramp length for
        ``drift``, the per-element noise scale for ``spike``, and the
        latent-factor scale for ``correlated``.
    n_steps:
        Trajectory length.
    rate:
        Per-step firing probability (``spike`` only).
    jitter:
        Bounded multiplicative ramp noise (``drift`` only): each step's
        ramp is multiplied by ``1 + jitter * U(-1, 1)``.
    params:
        Names of the perturbation parameters the shock touches; empty
        means *all* parameters of the analysis.
    directions:
        Optional explicit drift direction per parameter (``drift``
        only); vectors are used as given, so a unit-norm direction makes
        ``magnitude`` the exact final pi-space displacement length.
    description:
        Free text for reports.
    """

    name: str
    kind: str
    magnitude: float
    n_steps: int = 40
    rate: float = 0.25
    jitter: float = 0.0
    params: tuple[str, ...] = ()
    directions: dict[str, tuple[float, ...]] | None = field(default=None)
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("scenario name must be non-empty")
        if self.kind not in SHOCK_KINDS:
            raise SpecificationError(
                f"unknown shock kind {self.kind!r}; expected one of "
                f"{SHOCK_KINDS}")
        if not (math.isfinite(self.magnitude) and self.magnitude > 0):
            raise SpecificationError(
                f"magnitude must be positive and finite, got {self.magnitude}")
        if self.n_steps < 1:
            raise SpecificationError(
                f"n_steps must be >= 1, got {self.n_steps}")
        if not 0.0 <= self.rate <= 1.0:
            raise SpecificationError(f"rate must be in [0, 1], got {self.rate}")
        if self.jitter < 0 or self.jitter >= 1:
            raise SpecificationError(
                f"jitter must be in [0, 1), got {self.jitter}")
        object.__setattr__(self, "params", tuple(self.params))
        if self.directions is not None:
            clean = {name: tuple(float(v) for v in vec)
                     for name, vec in self.directions.items()}
            object.__setattr__(self, "directions", clean)

    @property
    def scenario_key(self) -> int:
        """Stable spawn-key component derived from the name."""
        return zlib.crc32(self.name.encode("utf-8"))

    def _rng(self, seed: int, trajectory: int, step: int
             ) -> np.random.Generator:
        """The RNG of one ``(trajectory, step)`` cell — stateless."""
        return np.random.default_rng(np.random.SeedSequence(
            entropy=int(seed),
            spawn_key=(self.scenario_key, int(trajectory), int(step))))

    def active_params(
        self, params: Sequence[PerturbationParameter]
    ) -> list[PerturbationParameter]:
        """The subset of ``params`` this scenario perturbs (in order)."""
        if not self.params:
            return list(params)
        by_name = {p.name: p for p in params}
        missing = [n for n in self.params if n not in by_name]
        if missing:
            raise SpecificationError(
                f"scenario {self.name!r} names unknown parameter(s) "
                f"{missing}; have {sorted(by_name)}")
        return [by_name[n] for n in self.params]

    # ------------------------------------------------------------------
    # the draw
    # ------------------------------------------------------------------
    def displacements(
        self, seed: int, trajectory: int, step: int,
        params: Sequence[PerturbationParameter],
    ) -> dict[str, np.ndarray]:
        """Per-parameter pi-space displacement of one step.

        Pure in ``(seed, scenario, trajectory, step)``; parameters the
        scenario does not touch are absent from the result.
        """
        if not 0 <= step < self.n_steps:
            raise SpecificationError(
                f"step must be in [0, {self.n_steps}), got {step}")
        active = self.active_params(params)
        if self.kind == "spike":
            return self._spike(seed, trajectory, step, active)
        if self.kind == "drift":
            return self._drift(seed, trajectory, step, active)
        return self._correlated(seed, trajectory, step, active)

    def _spike(self, seed, trajectory, step, active
               ) -> dict[str, np.ndarray]:
        rng = self._rng(seed, trajectory, step)
        if rng.random() >= self.rate:
            return {p.name: np.zeros(p.dimension) for p in active}
        out = {}
        for p in active:
            noise = rng.standard_normal(p.dimension)
            mask = rng.random(p.dimension) < 0.5
            out[p.name] = self.magnitude * noise * mask
        return out

    def _drift(self, seed, trajectory, step, active
               ) -> dict[str, np.ndarray]:
        ramp = self.magnitude * (step + 1) / self.n_steps
        if self.jitter:
            u = self._rng(seed, trajectory, step).random()
            ramp *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return {p.name: ramp * block
                for p, block in zip(active, self._direction_blocks(active))}

    def _direction_blocks(self, active) -> list[np.ndarray]:
        """Unit-style direction split per parameter (drift only)."""
        if self.directions is not None:
            blocks = []
            for p in active:
                vec = self.directions.get(p.name)
                if vec is None:
                    blocks.append(np.zeros(p.dimension))
                    continue
                arr = np.asarray(vec, dtype=np.float64)
                if arr.size != p.dimension:
                    raise SpecificationError(
                        f"direction for {p.name!r} has length {arr.size}, "
                        f"expected {p.dimension}")
                blocks.append(arr)
            return blocks
        # Default: uniform inflation, normalised so the concatenated
        # direction has unit Euclidean length (magnitude == final
        # pi-space displacement length, as for explicit unit directions).
        total = sum(p.dimension for p in active)
        scale = 1.0 / math.sqrt(total)
        return [np.full(p.dimension, scale) for p in active]

    def _correlated(self, seed, trajectory, step, active
                    ) -> dict[str, np.ndarray]:
        static = self._rng(seed, trajectory, _STATIC_STEP)
        loadings = [static.standard_normal(p.dimension) for p in active]
        norm = math.sqrt(sum(float(b @ b) for b in loadings))
        if norm == 0.0:  # pragma: no cover - measure-zero draw
            norm = 1.0
        factor = float(self._rng(seed, trajectory, step).standard_normal())
        scale = self.magnitude * factor / norm
        return {p.name: scale * block
                for p, block in zip(active, loadings)}

    def to_dict(self) -> dict:
        """JSON-safe description (no trajectories, no draws)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "magnitude": float(self.magnitude),
            "steps": int(self.n_steps),
            "rate": float(self.rate),
            "jitter": float(self.jitter),
            "params": list(self.params),
        }


def _parse_params(value: str) -> tuple[str, ...]:
    """``params=exec_times:background`` -> ``("exec_times", "background")``."""
    names = tuple(n.strip() for n in value.split(":") if n.strip())
    if not names:
        raise ValueError("empty params list")
    return names


#: Grammar of the CLI ``--shock`` spec — same parser as ``--chaos``.
_SHOCK_SPEC_FIELDS = (
    SpecField("kind", str, choices=SHOCK_KINDS),
    SpecField("magnitude", float, aliases=("mag",),
              hint="a shock scale in pi-space units"),
    SpecField("steps", int, dest="n_steps",
              hint="a positive trajectory length"),
    SpecField("rate", float, hint="a per-step firing probability in [0, 1]"),
    SpecField("jitter", float, hint="a non-negative noise scale"),
    SpecField("params", _parse_params,
              hint="colon-separated parameter names, e.g. a:b"),
    SpecField("name", str),
)


def parse_shock_spec(spec: str) -> ShockScenario:
    """Build a custom scenario from a compact CLI spec string.

    The spec is a comma-separated list of ``key=value`` entries, e.g.::

        kind=spike,magnitude=0.3,steps=40,rate=0.25,name=surge
        kind=drift,mag=1.5,jitter=0.1,params=exec_times:background

    Keys: ``kind`` (required: ``spike``/``drift``/``correlated``),
    ``magnitude`` (alias ``mag``, required), ``steps``, ``rate``,
    ``jitter``, ``params`` (colon-separated parameter names), ``name``.
    Malformed specs raise :class:`~repro.exceptions.SpecGrammarError`
    naming the bad token — the same grammar machinery as ``--chaos``.
    """
    parsed = parse_kv_spec(spec, _SHOCK_SPEC_FIELDS, name="shock spec")
    missing = [key for key in ("kind", "magnitude") if key not in parsed]
    if missing:
        raise SpecGrammarError(
            f"shock spec must set {', '.join(missing)}",
            token=spec, grammar=spec_grammar(_SHOCK_SPEC_FIELDS))
    parsed.setdefault("name", f"custom-{parsed['kind']}")
    try:
        return ShockScenario(**parsed)
    except SpecificationError as exc:
        # Grammar-valid but semantically bad (e.g. kind=frobnicate).
        raise SpecGrammarError(
            str(exc), token=spec,
            grammar=spec_grammar(_SHOCK_SPEC_FIELDS)) from exc
