"""The scenario lab: catalogue → replay → bootstrap → ablation.

:func:`run_lab` orchestrates one full lab run against a
:class:`~repro.core.fepia.RobustnessAnalysis`:

1. resolve the analytic radii through the analysis (which routes them
   through the batched :func:`~repro.core.radius.compute_radii`
   frontend, so caching, observability and chaos-hardening all apply);
2. replay every scenario's trajectories (fanned out through the
   supplied executor);
3. block-bootstrap the empirical violation rate into a CI and compare
   it against the radius-based prediction and any
   :class:`~repro.scenarios.bootstrap.RobustnessGates`;
4. ablate the chosen scenario parameter-by-parameter and cross-check
   the dominance ranking against the paper's Eq. 1 radii.

The emitted ``repro-lab-v1`` payload is validated by
:func:`repro.parallel.bench.validate_bench_payload` and contains **no
wall-clock timings and no worker counts** — everything in it is a pure
function of ``(analysis, scenarios, seed)``, which is what makes the
bit-identical-artifact contract (`repro lab --seed S` twice, any
``--workers``, traced or untraced) checkable with a plain byte diff.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.fepia import RobustnessAnalysis
from repro.exceptions import SpecificationError
from repro.observability import emit_event, span
from repro.parallel.bench import LAB_SCHEMA
from repro.scenarios.ablation import run_ablation
from repro.scenarios.bootstrap import (
    RobustnessGates,
    block_bootstrap_violation_rate,
)
from repro.scenarios.replay import ReplayContext, replay_scenario
from repro.scenarios.shocks import ShockScenario

__all__ = ["LAB_SCHEMA", "run_lab"]


def _finite_or_none(value: float) -> float | None:
    """JSON-safe float: ``inf``/``nan`` become ``None`` (unbounded)."""
    value = float(value)
    return value if math.isfinite(value) else None


def run_lab(
    analysis: RobustnessAnalysis,
    scenarios: Sequence[ShockScenario],
    *,
    seed: int = 2005,
    n_trajectories: int = 8,
    n_boot: int = 200,
    block: int = 10,
    gates: RobustnessGates | None = None,
    executor=None,
    system: str = "custom",
    ablate: str | None = None,
) -> dict:
    """Run the full scenario lab and return the ``repro-lab-v1`` payload.

    Parameters
    ----------
    analysis:
        The FePIA analysis of the allocation under study; must use a
        shared-P-space weighting (identity/normalized/custom).
    scenarios:
        The shock catalogue to replay (names must be unique).
    seed:
        Lab seed — the only entropy source of the whole run.
    n_trajectories:
        Trajectories per scenario.
    n_boot, block:
        Bootstrap replicates and circular block length.
    gates:
        Optional :class:`RobustnessGates` evaluated per scenario over
        ``violation_rate``, ``ci_lo``, ``ci_hi``,
        ``predicted_violation_rate`` and ``worst_drawdown``.
    executor:
        Optional (supervised) executor; trajectory replays fan out
        through it, and the analysis' radius solves adopt it too when
        the analysis has none of its own.
    system:
        Label for the artifact (e.g. ``"makespan"``).
    ablate:
        Name of the scenario to ablate; defaults to the first scenario
        with a non-zero violation rate (else the first scenario).
    """
    scenarios = list(scenarios)
    if not scenarios:
        raise SpecificationError("need at least one scenario")
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise SpecificationError(f"duplicate scenario names in {names}")
    if ablate is not None and ablate not in names:
        raise SpecificationError(
            f"unknown ablation scenario {ablate!r}; have {names}")
    if executor is not None and analysis.executor is None:
        # Route the analysis' batched radius solves through the same
        # executor the replays use.
        analysis.executor = executor

    with span("lab.run", system=system, scenarios=len(scenarios),
              trajectories=n_trajectories):
        ctx = ReplayContext.from_analysis(analysis)
        radii = {name: result.radius
                 for name, result in analysis.radii().items()}
        rho = min(radii.values())
        per_param = {p.name: math.inf for p in analysis.params}
        for spec in analysis.features:
            for pname, r in analysis.per_parameter_radii(spec).items():
                per_param[pname] = min(per_param[pname], r)

        scenario_payloads = []
        replays = {}
        all_passed = True
        for scenario in scenarios:
            replay = replay_scenario(
                ctx, scenario, seed=seed, n_trajectories=n_trajectories,
                rho=rho, executor=executor)
            replays[scenario.name] = replay
            ci = block_bootstrap_violation_rate(
                replay.violation_series(), n_boot=n_boot, block=block,
                seed=seed)
            predicted = replay.predicted_violation_rate
            brackets = bool(ci["lo"] <= predicted <= ci["hi"])
            entry = replay.to_dict()
            entry["bootstrap"] = ci
            entry["ci_brackets_prediction"] = brackets
            if gates is not None:
                worst = max(replay.worst_drawdown.values(), default=0.0)
                verdict = gates.evaluate({
                    "violation_rate": replay.violation_rate,
                    "ci_lo": ci["lo"],
                    "ci_hi": ci["hi"],
                    "predicted_violation_rate": predicted,
                    "worst_drawdown": worst,
                })
                entry["gates"] = verdict.to_dict()
                all_passed = all_passed and verdict.passed
            else:
                entry["gates"] = None
            scenario_payloads.append(entry)

        if ablate is None:
            ablate = next(
                (s.name for s in scenarios
                 if replays[s.name].violation_rate > 0),
                scenarios[0].name)
        target = next(s for s in scenarios if s.name == ablate)
        ablation = run_ablation(
            ctx, target, seed=seed, n_trajectories=n_trajectories,
            rho=rho, full=replays[ablate],
            per_parameter_radii=per_param, executor=executor)

    payload = {
        "schema": LAB_SCHEMA,
        "seed": int(seed),
        "system": str(system),
        "weighting": analysis.weighting.name,
        "norm": float(analysis.norm),
        "rho": _finite_or_none(rho),
        "radii": {name: _finite_or_none(r) for name, r in radii.items()},
        "per_parameter_radii": {name: _finite_or_none(r)
                                for name, r in per_param.items()},
        "trajectories": int(n_trajectories),
        "bootstrap": {"n_boot": int(n_boot), "block": int(block)},
        "scenarios": scenario_payloads,
        "ablation": ablation,
        "gates_passed": bool(all_passed),
    }
    emit_event("lab.done", system=system, scenarios=len(scenarios),
               gates_passed=all_passed)
    return payload
