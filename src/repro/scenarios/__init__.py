"""Scenario lab: stochastic shock replay over the FePIA perturbation space.

The paper's robustness radius is a *point estimate*: the smallest
perturbation that can violate a requirement.  This package wraps that
number in a stochastic harness that shows what it means under *realized*
perturbation trajectories:

* :mod:`~repro.scenarios.shocks` — a catalogue of named, seeded shock
  generators (spikes, drifts, correlated multi-kind shocks), each a pure
  function of ``(seed, scenario, trajectory, step)`` via
  :class:`numpy.random.SeedSequence` spawn keys — the same determinism
  discipline as :class:`~repro.resilience.chaos.ChaosPolicy`.
* :mod:`~repro.scenarios.replay` — applies a shock trajectory to an
  allocation and records per-step feature values, violation events,
  worst-case drawdown against each requirement ``beta``, and
  time-to-first-violation; trajectories fan out through a
  :class:`~repro.resilience.SupervisedExecutor`.
* :mod:`~repro.scenarios.bootstrap` — block-bootstrap confidence
  intervals for the empirical violation rate, and pass/fail
  :class:`~repro.scenarios.bootstrap.RobustnessGates` with a threshold
  grammar like ``{"violation_rate": ("<=", 0.6)}``.
* :mod:`~repro.scenarios.ablation` — freezes one perturbation kind at a
  time to rank which kind dominates, cross-checked against the paper's
  per-parameter radii (Eq. 1).
* :mod:`~repro.scenarios.lab` — the ``repro lab`` orchestration:
  catalogue → replay → bootstrap → ablation, emitting a ``repro-lab-v1``
  artifact that is bit-identical under seed for any worker count, traced
  or untraced.

See ``docs/SCENARIOS.md`` for the full tour.
"""

from repro.scenarios.ablation import run_ablation
from repro.scenarios.bootstrap import (
    GateResult,
    RobustnessGates,
    block_bootstrap_violation_rate,
    parse_gate,
)
from repro.scenarios.lab import LAB_SCHEMA, run_lab
from repro.scenarios.replay import (
    ReplayContext,
    ReplayResult,
    TrajectoryResult,
    replay_scenario,
)
from repro.scenarios.shocks import (
    SHOCK_KINDS,
    ShockScenario,
    parse_shock_spec,
)

__all__ = [
    "SHOCK_KINDS",
    "ShockScenario",
    "parse_shock_spec",
    "ReplayContext",
    "ReplayResult",
    "TrajectoryResult",
    "replay_scenario",
    "block_bootstrap_violation_rate",
    "parse_gate",
    "GateResult",
    "RobustnessGates",
    "run_ablation",
    "LAB_SCHEMA",
    "run_lab",
]
