"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the quickstart two-kind analysis and print the report.
``degeneracy``
    Run the E2/E3 sweeps (the paper's central results) and print their
    tables.
``heuristics``
    Generate an ETC instance and print the heuristic comparison (E5).
``hiperd``
    Generate a HiPer-D system, run the multi-kind analysis, and print the
    robustness report, criticality decomposition, and the monitoring
    experiment (E6/E9).
``tradeoff``
    Print the makespan-robustness Pareto study (E10).

Every command accepts ``--seed`` for reproducibility,
``--solver-timeout`` to route radius computations through the
fault-tolerant :class:`~repro.resilience.SolverCascade`, ``--workers N``
to fan independent work out over worker processes (results are
bit-identical to a serial run — see ``docs/PERFORMANCE.md``), and
``--no-cache`` to disable the process-wide radius cache installed by
default, and ``--trace PATH`` to record an observability trace
(``repro-events-v1`` JSON-lines; render it with ``repro stats PATH``).

Fan-out can be *supervised* (see ``docs/CHAOS.md``): ``--task-timeout``
gives every task a wall-clock deadline, ``--max-task-retries`` bounds
per-task retries before quarantine, and ``--chaos SPEC`` injects a
deterministic fault schedule (worker kills, latency, exception storms,
pickling corruption) at the dispatch boundary — any of these routes the
sweep through a :class:`~repro.resilience.SupervisedExecutor`.

The ``experiments`` command additionally supports
``--checkpoint``/``--resume`` for kill-safe sweeps; ``bench-parallel``
times the sweep serially vs in parallel, writing a
``repro-bench-parallel-v1`` JSON payload; ``bench-solvers`` times the
scalar vs batched solver kernels, writing a ``repro-bench-solvers-v1``
payload; ``bench-radii`` times the per-problem radius loop against the
cross-problem tensor kernel, writing a ``repro-bench-radii-v1``
payload; ``chaos`` replays a seeded chaos schedule against the
sweep, verifying bit-identical recovery and writing a
``repro-bench-chaos-v1`` payload; ``curve`` walks a warm-started
degradation curve over the makespan substrate, writing a
``repro-curve-v1`` artifact; ``bench-sweep`` times that warm walk
against the cold per-point baseline, writing a ``repro-bench-sweep-v1``
payload; and ``selfhost`` closes the analytic-empirical loop — it solves
the radius of the executor's *own* dispatch policy, calibrates the
supervisor from the boundary witness, replays real chaos schedules
inside and outside the predicted radius, and writes a
``repro-selfhost-v1`` artifact (see ``docs/SELFHOST.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'A Measure of Robustness Against "
                     "Multiple Kinds of Perturbations' (IPDPS 2005)"))
    parser.add_argument("--seed", type=int, default=2005,
                        help="RNG seed (default 2005)")
    parser.add_argument("--solver-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-solver wall-clock budget; radii are then "
                             "computed through the fault-tolerant solver "
                             "cascade with graceful degradation")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for parallelisable work "
                             "(default 1 = serial; results are "
                             "bit-identical for any value)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the process-wide radius result cache")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline per fanned-out task; "
                             "implies supervised execution (timed-out "
                             "tasks are retried, then quarantined)")
    parser.add_argument("--max-task-retries", type=int, default=None,
                        metavar="N",
                        help="retries per fanned-out task before it is "
                             "quarantined (default 2; implies supervised "
                             "execution)")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="inject a deterministic fault schedule at the "
                             "executor boundary, e.g. 'kill=0.1,"
                             "latency=0.2:0.005,exception=0.2,corrupt=0.1,"
                             "seed=7,cap=1' (implies supervised execution)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record spans, metrics and events of this run "
                             "to a repro-events-v1 JSON-lines file "
                             "(inspect it with 'repro stats PATH')")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v logs INFO progress, -vv full DEBUG trail")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quickstart two-kind analysis")

    deg = sub.add_parser("degeneracy",
                         help="the 1/sqrt(n) degeneracy and its fix (E2/E3)")
    deg.add_argument("--cases", type=int, default=6,
                     help="random instances per n")

    heu = sub.add_parser("heuristics", help="heuristic comparison (E5)")
    heu.add_argument("--tasks", type=int, default=24)
    heu.add_argument("--machines", type=int, default=6)
    heu.add_argument("--tau-factor", type=float, default=1.3)

    hip = sub.add_parser("hiperd",
                         help="HiPer-D multi-kind analysis + monitor (E6/E9)")
    hip.add_argument("--kinds", default="loads,exec,msgsize",
                     help="comma-separated perturbation kinds")
    hip.add_argument("--latency-slack", type=float, default=1.4)

    tra = sub.add_parser("tradeoff",
                         help="makespan-robustness Pareto study (E10)")
    tra.add_argument("--tasks", type=int, default=20)
    tra.add_argument("--machines", type=int, default=5)

    fai = sub.add_parser("failures",
                         help="machine/link failure robustness (E13/E14)")
    fai.add_argument("--tasks", type=int, default=16)
    fai.add_argument("--machines", type=int, default=5)
    fai.add_argument("--tau-factor", type=float, default=2.0)

    pla = sub.add_parser("placement",
                         help="robustness-aware placement search (E15)")
    pla.add_argument("--rounds", type=int, default=5)

    exp = sub.add_parser("experiments",
                         help="run every registered experiment")
    exp.add_argument("--only", default=None,
                     help="comma-separated experiment ids (default: all)")
    exp.add_argument("--markdown", action="store_true",
                     help="emit GitHub-markdown instead of ASCII tables")
    exp.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="persist each finished experiment to this JSON "
                          "checkpoint so a killed sweep can resume")
    exp.add_argument("--resume", action="store_true",
                     help="resume from an existing --checkpoint file "
                          "(without this flag a stale checkpoint is "
                          "discarded)")

    ben = sub.add_parser("bench-parallel",
                         help="time the experiment sweep serially vs in "
                              "parallel and write a JSON benchmark payload")
    ben.add_argument("--only", default=None,
                     help="comma-separated experiment ids (default: all)")
    ben.add_argument("--out", default="BENCH_parallel.json", metavar="PATH",
                     help="benchmark payload destination "
                          "(default BENCH_parallel.json)")

    sol = sub.add_parser("bench-solvers",
                         help="time the scalar vs batched solver kernels "
                              "and write a JSON benchmark payload")
    sol.add_argument("--dimension", type=int, default=32, metavar="N",
                     help="perturbation-space dimension (default 32)")
    sol.add_argument("--directions", type=int, default=128, metavar="N",
                     help="random bisection directions (default 128)")
    sol.add_argument("--out", default="BENCH_solvers.json", metavar="PATH",
                     help="benchmark payload destination "
                          "(default BENCH_solvers.json)")

    rad = sub.add_parser("bench-radii",
                         help="time the per-problem radius loop vs the "
                              "cross-problem tensor kernel and write a "
                              "JSON benchmark payload")
    rad.add_argument("--problems", type=int, default=32, metavar="N",
                     help="radius problems in the structural group "
                          "(default 32)")
    rad.add_argument("--dimension", type=int, default=12, metavar="N",
                     help="perturbation-space dimension (default 12)")
    rad.add_argument("--out", default="BENCH_radii.json", metavar="PATH",
                     help="benchmark payload destination "
                          "(default BENCH_radii.json)")

    cur = sub.add_parser("curve",
                         help="degradation curve rho(beta) of the makespan "
                              "max-feature via warm-started incremental "
                              "re-solve; writes a repro-curve-v1 artifact")
    cur.add_argument("--tasks", type=int, default=24)
    cur.add_argument("--machines", type=int, default=6)
    cur.add_argument("--points", type=int, default=40, metavar="N",
                     help="operating points in the sweep (default 40)")
    cur.add_argument("--beta-lo", type=float, default=1.05, metavar="B",
                     help="first requirement value, > 1 (default 1.05)")
    cur.add_argument("--beta-hi", type=float, default=2.0, metavar="B",
                     help="last requirement value (default 2.0)")
    cur.add_argument("--out", default="CURVE.json", metavar="PATH",
                     help="artifact destination (default CURVE.json)")

    swe = sub.add_parser("bench-sweep",
                         help="time the warm-started sweep against the cold "
                              "per-point baseline and write a JSON "
                              "benchmark payload")
    swe.add_argument("--points", type=int, default=100, metavar="N",
                     help="operating points in the sweep (default 100)")
    swe.add_argument("--tasks", type=int, default=32)
    swe.add_argument("--machines", type=int, default=8)
    swe.add_argument("--beta-lo", type=float, default=1.05, metavar="B",
                     help="first requirement value, > 1 (default 1.05)")
    swe.add_argument("--beta-hi", type=float, default=2.0, metavar="B",
                     help="last requirement value (default 2.0)")
    swe.add_argument("--out", default="BENCH_sweep.json", metavar="PATH",
                     help="benchmark payload destination "
                          "(default BENCH_sweep.json)")

    srv = sub.add_parser("serve",
                         help="run the radius service against a seeded "
                              "request stream and report service stats "
                              "(soak/smoke harness; no network layer)")
    srv.add_argument("--requests", type=int, default=10, metavar="N",
                     help="requests in the seeded stream (default 10)")
    srv.add_argument("--problems-per-request", type=int, default=8,
                     metavar="N",
                     help="radius problems per request (default 8)")
    srv.add_argument("--queue-limit", type=int, default=32, metavar="N",
                     help="bounded request queue size (default 32)")
    srv.add_argument("--local-cache", action="store_true",
                     help="use an in-process RadiusCache instead of the "
                          "cross-process SharedRadiusCache")
    srv.add_argument("--repeat", type=int, default=2, metavar="N",
                     help="times the stream is replayed (default 2; "
                          "replays exercise the shared cache)")

    bsv = sub.add_parser("bench-service",
                         help="time per-call pools vs the persistent "
                              "radius service on a seeded request stream "
                              "and write a JSON benchmark payload")
    bsv.add_argument("--requests", type=int, default=10, metavar="N",
                     help="requests in the seeded stream (default 10)")
    bsv.add_argument("--problems-per-request", type=int, default=8,
                     metavar="N",
                     help="radius problems per request (default 8)")
    bsv.add_argument("--out", default="BENCH_service.json", metavar="PATH",
                     help="benchmark payload destination "
                          "(default BENCH_service.json)")

    cha = sub.add_parser("chaos",
                         help="replay a seeded chaos schedule against the "
                              "experiment sweep, verify bit-identical "
                              "recovery, and write a JSON payload")
    cha.add_argument("--only", default=None,
                     help="comma-separated experiment ids (default: all)")
    cha.add_argument("--spec", default=None, metavar="SPEC",
                     help="chaos schedule (same format as --chaos; default: "
                          "a modest kill/latency/exception/corrupt mix "
                          "seeded from --seed)")
    cha.add_argument("--out", default="BENCH_chaos.json", metavar="PATH",
                     help="benchmark payload destination "
                          "(default BENCH_chaos.json)")

    lab = sub.add_parser("lab",
                         help="scenario lab: shock replay, bootstrap "
                              "confidence gates and perturbation-kind "
                              "ablation; writes a repro-lab-v1 artifact")
    lab.add_argument("--system", choices=("makespan", "hiperd", "selfhost"),
                     default="makespan",
                     help="which substrate to analyse (default makespan)")
    lab.add_argument("--beta", type=float, default=1.2,
                     help="relative makespan requirement (default 1.2)")
    lab.add_argument("--tasks", type=int, default=24)
    lab.add_argument("--machines", type=int, default=6)
    lab.add_argument("--latency-slack", type=float, default=1.4,
                     help="QoS latency slack for --system hiperd")
    lab.add_argument("--scenarios", default=None, metavar="NAMES",
                     help="comma-separated catalogue subset "
                          "(default: the full catalogue)")
    lab.add_argument("--shock", action="append", default=None,
                     metavar="SPEC",
                     help="append a custom scenario, e.g. 'kind=spike,"
                          "magnitude=0.3,rate=0.25,name=surge' (same "
                          "key=value grammar as --chaos; repeatable)")
    lab.add_argument("--trajectories", type=int, default=8, metavar="N",
                     help="trajectories per scenario (default 8)")
    lab.add_argument("--steps", type=int, default=40, metavar="N",
                     help="steps per trajectory for catalogue scenarios "
                          "(default 40)")
    lab.add_argument("--boot", type=int, default=200, metavar="N",
                     help="bootstrap replicates (default 200)")
    lab.add_argument("--block", type=int, default=10, metavar="N",
                     help="bootstrap circular block length (default 10)")
    lab.add_argument("--gate", action="append", default=None,
                     metavar="EXPR",
                     help="pass/fail threshold like 'violation_rate<=0.6' "
                          "(repeatable; metrics: violation_rate, ci_lo, "
                          "ci_hi, predicted_violation_rate, "
                          "worst_drawdown)")
    lab.add_argument("--ablate", default=None, metavar="NAME",
                     help="scenario to ablate parameter-by-parameter "
                          "(default: first scenario with violations)")
    lab.add_argument("--out", default="LAB.json", metavar="PATH",
                     help="artifact destination (default LAB.json)")

    sfh = sub.add_parser("selfhost",
                         help="closed analytic-empirical loop: solve the "
                              "radius of the executor's own dispatch "
                              "policy, calibrate the supervisor from it, "
                              "run real chaos schedules inside and outside "
                              "the radius; writes a repro-selfhost-v1 "
                              "artifact")
    sfh.add_argument("--beta", type=float, default=2.0,
                     help="relative requirement on every feature "
                          "(default 2.0)")
    sfh.add_argument("--tasks", type=int, default=96,
                     help="batch size of the modelled workload (default 96)")
    sfh.add_argument("--model-workers", type=int, default=3, metavar="W",
                     help="modelled pool size — the allocation under "
                          "study, independent of the runtime --workers "
                          "(default 3)")
    sfh.add_argument("--ratios", default="0.4,1.8", metavar="R1,R2",
                     help="boundary-direction scalings of the chaos legs; "
                          "<1 is inside the radius, >1 outside "
                          "(default '0.4,1.8')")
    sfh.add_argument("--quarantine-budget", type=float, default=0.5,
                     metavar="TASKS",
                     help="fluid quarantined mass the calibrated retry "
                          "budget must keep the boundary point under "
                          "(default 0.5)")
    sfh.add_argument("--out", default="SELFHOST.json", metavar="PATH",
                     help="artifact destination (default SELFHOST.json)")

    top = sub.add_parser("topology",
                         help="path-slack and bottleneck analysis of a "
                              "generated HiPer-D system")
    top.add_argument("--latency-slack", type=float, default=1.4)
    top.add_argument("--top", type=int, default=5)

    sta = sub.add_parser("stats",
                         help="render the span tree, metric table and "
                              "event tail of a --trace capture")
    sta.add_argument("trace_file", metavar="TRACE",
                     help="repro-events-v1 file written by --trace")
    sta.add_argument("--events", type=int, default=15, metavar="N",
                     help="show the last N events (default 15)")
    return parser


def _cmd_demo(args) -> int:
    from repro import (FeatureSpec, LinearMapping, PerformanceFeature,
                       PerturbationParameter, RobustnessAnalysis,
                       ToleranceBounds, robustness_metric)

    exec_times = PerturbationParameter.nonnegative(
        "exec_times", [2.0, 3.0], unit="s")
    msg_sizes = PerturbationParameter.nonnegative(
        "msg_sizes", [1e4], unit="bytes")
    mapping = LinearMapping([1.0, 1.0, 1e-6])
    phi0 = mapping.value(np.array([2.0, 3.0, 1e4]))
    feature = PerformanceFeature(
        "latency", ToleranceBounds.relative(phi0, 1.3), unit="s")
    analysis = RobustnessAnalysis([FeatureSpec(feature, mapping)],
                                  [exec_times, msg_sizes],
                                  seed=args.seed,
                                  solver_timeout=args.solver_timeout)
    print(robustness_metric(analysis))
    return 0


def _cmd_degeneracy(args) -> int:
    from repro.analysis import (normalized_dependence_sweep,
                                sensitivity_degeneracy_sweep)

    print(sensitivity_degeneracy_sweep(cases_per_n=args.cases,
                                       seed=args.seed))
    print()
    print(normalized_dependence_sweep(cases_per_n=args.cases,
                                      seed=args.seed))
    return 0


def _cmd_heuristics(args) -> int:
    from repro.analysis import compare_heuristics
    from repro.systems.independent import generate_etc_gamma

    etc = generate_etc_gamma(args.tasks, args.machines, seed=args.seed)
    print(compare_heuristics(etc, tau_factor=args.tau_factor,
                             seed=args.seed))
    return 0


def _cmd_hiperd(args) -> int:
    from repro.analysis.monitoring import monitoring_experiment
    from repro.core.criticality import criticality_report
    from repro.core.metric import robustness_metric
    from repro.systems.hiperd import (QoSSpec, build_analysis,
                                      generate_hiperd_system)

    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    system = generate_hiperd_system(seed=args.seed)
    print(system)
    qos = QoSSpec(latency_slack=args.latency_slack)
    analysis = build_analysis(system, qos, kinds=kinds, seed=args.seed,
                              solver_timeout=args.solver_timeout)
    print()
    print(robustness_metric(analysis))
    print()
    print(criticality_report(analysis))
    if "loads" in kinds:
        print()
        print(monitoring_experiment(system, analysis, seed=args.seed))
    return 0


def _cmd_tradeoff(args) -> int:
    from repro.analysis import tradeoff_experiment
    from repro.systems.independent import generate_etc_gamma

    etc = generate_etc_gamma(args.tasks, args.machines, seed=args.seed)
    print(tradeoff_experiment(etc, seed=args.seed))
    return 0


def _cmd_failures(args) -> int:
    from repro.systems.heuristics import MCT, Sufferage
    from repro.systems.hiperd import QoSSpec, generate_hiperd_system
    from repro.systems.hiperd.failures import critical_links
    from repro.systems.independent import (
        failure_radius,
        generate_etc_gamma,
        survival_probability,
    )
    from repro.utils.tables import format_table

    etc = generate_etc_gamma(args.tasks, args.machines, seed=args.seed)
    rows = []
    for heuristic in (MCT(), Sufferage()):
        alloc = heuristic.allocate(etc)
        tau = args.tau_factor * alloc.makespan(etc)
        fa = failure_radius(etc, alloc, tau)
        p = survival_probability(etc, alloc, tau, p_fail=0.2,
                                 n_samples=1000, seed=args.seed)
        rows.append([heuristic.name, alloc.makespan(etc), fa.radius, p])
    print(format_table(
        ["heuristic", "makespan", "failure radius", "P(survive p=0.2)"],
        rows, title="machine-failure robustness (E13)"))

    system = generate_hiperd_system(seed=args.seed)
    qos = QoSSpec(latency_slack=1.4)
    ranking = critical_links(system, qos, degraded_factor=0.05)
    print()
    print(format_table(
        ["link", "worst margin after failure"],
        [["-".join(pair), margin] for pair, margin in ranking[:8]],
        title="single-link criticality (E14, bandwidth degraded to 5%)"))
    return 0


def _cmd_placement(args) -> int:
    from repro.systems.hiperd import (
        HiPerDGenerationSpec,
        QoSSpec,
        generate_hiperd_system,
    )
    from repro.systems.hiperd.placement import improve_placement, placement_rho
    from repro.utils.tables import format_table

    spec = HiPerDGenerationSpec(balanced_placement=False)
    system = generate_hiperd_system(spec, seed=args.seed)
    qos = QoSSpec(latency_slack=1.4)
    before = placement_rho(system, qos)
    improved, steps = improve_placement(system, qos, max_rounds=args.rounds)
    rows = [[s.application, s.from_machine, s.to_machine, s.rho]
            for s in steps]
    print(format_table(
        ["moved app", "from", "to", "rho after"],
        rows,
        title=(f"placement search (E15): rho {before:.4g} -> "
               f"{placement_rho(improved, qos):.4g} in {len(steps)} moves")))
    return 0


def _make_executor(args):
    """The supervised executor the global flags ask for, or ``None``.

    Plain ``--workers`` keeps the historical behaviour (a
    :class:`~repro.parallel.executor.ParallelExecutor` built by the
    callee); any of ``--task-timeout`` / ``--max-task-retries`` /
    ``--chaos`` upgrades the run to a
    :class:`~repro.resilience.SupervisedExecutor` with per-task fault
    domains.  The caller owns the returned executor's lifetime.
    """
    if (args.task_timeout is None and args.max_task_retries is None
            and args.chaos is None):
        return None
    from repro.resilience.chaos import ChaosPolicy
    from repro.resilience.supervisor import (SupervisedExecutor,
                                             SupervisorConfig)

    config = SupervisorConfig(
        task_timeout=args.task_timeout,
        max_task_retries=(args.max_task_retries
                          if args.max_task_retries is not None else 2))
    chaos = ChaosPolicy.parse(args.chaos) if args.chaos else None
    return SupervisedExecutor(max(1, args.workers), config=config,
                              chaos=chaos, seed=args.seed)


def _cmd_experiments(args) -> int:
    import contextlib

    from repro.analysis.runner import run_all_experiments
    from repro.reporting.markdown import experiment_to_markdown

    if args.only:
        ids = [e.strip().upper() for e in args.only.split(",") if e.strip()]
    else:
        ids = None
    executor = _make_executor(args)
    with executor if executor is not None else contextlib.nullcontext():
        results = run_all_experiments(
            seed=args.seed, ids=ids, checkpoint_path=args.checkpoint,
            resume=args.resume, workers=args.workers, executor=executor)
    if executor is not None and executor.last_report is not None:
        print(f"supervision: {executor.stats()}", file=sys.stderr)
    for result in results.values():
        if args.markdown:
            print(experiment_to_markdown(result))
        else:
            print(result)
        print()
    return 0


def _cmd_bench_parallel(args) -> int:
    from repro.parallel.bench import run_parallel_benchmark, write_benchmark

    if args.only:
        ids = [e.strip().upper() for e in args.only.split(",") if e.strip()]
    else:
        ids = None
    # --workers 1 (the global default) would make the parallel leg a
    # no-op; benchmark with every core instead unless told otherwise.
    workers = args.workers if args.workers > 1 else None
    payload = run_parallel_benchmark(workers=workers, seed=args.seed,
                                     ids=ids)
    write_benchmark(payload, args.out)
    print(f"serial   {payload['serial_seconds']:.3f}s")
    print(f"parallel {payload['parallel_seconds']:.3f}s "
          f"({payload['workers']} workers)")
    print(f"speedup  {payload['speedup']:.2f}x")
    print(f"identical results: {payload['identical']}")
    print(f"cache: {payload['cache']}")
    print(f"written to {args.out}")
    return 0 if payload["identical"] else 1


def _cmd_bench_solvers(args) -> int:
    from repro.core.solvers.bench import run_solver_kernel_benchmark
    from repro.parallel.bench import write_benchmark

    payload = run_solver_kernel_benchmark(dimension=args.dimension,
                                          directions=args.directions,
                                          seed=args.seed)
    write_benchmark(payload, args.out)
    bis, grad = payload["bisection"], payload["gradient"]
    print(f"bisection scalar  {bis['scalar_seconds']:.4f}s "
          f"({bis['scalar_evals']} evals)")
    print(f"bisection batched {bis['batched_seconds']:.4f}s "
          f"({bis['batched_evals']} evals, "
          f"{bis['eval_reduction']:.1f}x fewer, "
          f"{bis['speedup']:.2f}x faster)")
    print(f"gradient scalar   {grad['scalar_seconds']:.4f}s "
          f"({grad['scalar_evals']} evals)")
    print(f"gradient stencil  {grad['batched_seconds']:.4f}s "
          f"({grad['batched_evals']} evals, "
          f"{grad['eval_reduction']:.1f}x fewer, "
          f"{grad['speedup']:.2f}x faster)")
    print(f"identical results: {payload['identical']}")
    print(f"written to {args.out}")
    ok = (payload["identical"] and bis["speedup"] > 1.0
          and bis["eval_reduction"] >= 5.0)
    return 0 if ok else 1


def _cmd_bench_radii(args) -> int:
    from repro.core.solvers.radii_bench import run_radius_batch_benchmark
    from repro.parallel.bench import write_benchmark

    payload = run_radius_batch_benchmark(problems=args.problems,
                                         dimension=args.dimension,
                                         seed=args.seed)
    write_benchmark(payload, args.out)
    print(f"per-problem loop {payload['scalar_seconds']:.4f}s "
          f"({payload['scalar_evals']} evals over "
          f"{payload['problems']} problems)")
    print(f"tensor kernel    {payload['tensor_seconds']:.4f}s "
          f"({payload['tensor_evals']} evals, "
          f"{payload['eval_reduction']:.1f}x fewer, "
          f"{payload['speedup']:.2f}x faster)")
    print(f"identical results: {payload['identical']}")
    print(f"written to {args.out}")
    ok = (payload["identical"] and payload["speedup"] >= 3.0
          and payload["eval_reduction"] >= 10.0)
    return 0 if ok else 1


def _cmd_curve(args) -> int:
    import contextlib
    import math

    from repro.analysis import degradation_curve
    from repro.parallel.bench import CURVE_SCHEMA, write_benchmark
    from repro.systems.heuristics import MCT
    from repro.systems.independent import generate_etc_gamma
    from repro.systems.independent.makespan import MakespanSystem
    from repro.utils.tables import format_table

    etc = generate_etc_gamma(args.tasks, args.machines, seed=args.seed)
    system = MakespanSystem(etc, MCT().allocate(etc))
    analysis = system.makespan_analysis(beta=args.beta_lo,
                                        method="bisection", seed=args.seed)
    betas = np.linspace(args.beta_lo, args.beta_hi, args.points)

    executor = _make_executor(args)
    if executor is None and args.workers > 1:
        from repro.resilience.supervisor import (SupervisedExecutor,
                                                 SupervisorConfig)
        executor = SupervisedExecutor(args.workers, config=SupervisorConfig(),
                                      seed=args.seed)
    with executor if executor is not None else contextlib.nullcontext():
        curve = degradation_curve(analysis, "makespan", betas,
                                  executor=executor)

    payload = {
        "schema": CURVE_SCHEMA,
        "seed": int(args.seed),
        "system": "makespan",
        "feature": curve.feature,
        "points": len(curve.points),
        "curve": [
            {
                "beta": float(p.beta),
                "rho": float(p.rho) if math.isfinite(p.rho) else None,
                "feasible": bool(p.feasible),
                "critical": p.critical,
            }
            for p in curve.points
        ],
        "stats": {k: int(v) for k, v in curve.stats.items()},
    }
    write_benchmark(payload, args.out)

    rows = [[p.beta, p.rho, "yes" if p.feasible else "NO"]
            for p in curve.points]
    print(format_table(
        ["beta", "rho", "feasible"], rows,
        title=(f"degradation curve of '{curve.feature}' "
               f"({args.tasks} tasks on {args.machines} machines)")))
    if len(curve.points) >= 2:
        print()
        print(curve.plot())
    stats = curve.stats
    print(f"\n{stats['solves']} solves over {stats['points']} points "
          f"({stats['warm_starts']} warm-started, "
          f"{stats['warm_hits']} served entirely from the ray table)")
    print(f"written to {args.out}")
    return 0


def _cmd_bench_sweep(args) -> int:
    from repro.analysis.sweep_bench import run_sweep_benchmark
    from repro.parallel.bench import write_benchmark

    payload = run_sweep_benchmark(points=args.points, tasks=args.tasks,
                                  machines=args.machines,
                                  beta_lo=args.beta_lo,
                                  beta_hi=args.beta_hi, seed=args.seed)
    write_benchmark(payload, args.out)
    print(f"cold sweep {payload['cold_seconds']:.4f}s "
          f"({payload['cold_evals']} evals)")
    print(f"warm sweep {payload['warm_seconds']:.4f}s "
          f"({payload['warm_evals']} evals, "
          f"{payload['eval_reduction']:.1f}x fewer, "
          f"{payload['speedup']:.2f}x faster)")
    print(f"warm starts: {payload['warm_starts']}, served entirely from "
          f"the ray table: {payload['warm_hits']}")
    print(f"identical results: {payload['identical']}")
    print(f"written to {args.out}")
    ok = (payload["identical"] and payload["speedup"] > 1.0
          and payload["eval_reduction"] >= 5.0)
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    from repro.core.radius import compute_radii
    from repro.service import RadiusService, ServiceConfig
    from repro.service.bench import _canonical, build_workload

    workload = build_workload(
        seed=args.seed, requests=args.requests,
        problems_per_request=args.problems_per_request)
    solve_seed = args.seed + 1
    config = ServiceConfig(
        queue_limit=args.queue_limit,
        cache="local" if args.local_cache else "shared")
    identical = True
    with RadiusService(args.workers, config=config,
                       seed=args.seed) as service:
        for round_no in range(1, args.repeat + 1):
            tickets = [service.submit(batch, seed=solve_seed)
                       for batch in workload]
            gathered = service.gather(tickets)
            flat = [r for leg in gathered for r in leg]
            want = [r for batch in workload
                    for r in compute_radii(batch, seed=solve_seed,
                                           cache=False)]
            round_identical = _canonical(flat) == _canonical(want)
            identical = identical and round_identical
            print(f"round {round_no}: {len(tickets)} request(s), "
                  f"{len(flat)} radii, identical to library path: "
                  f"{round_identical}")
        stats = service.stats()
        last_report = service.executor.last_report
    print(f"service: {stats['completed']} completed, {stats['shed']} shed, "
          f"{stats['failed']} failed "
          f"(queue limit {stats['queue_limit']}, admission breaker "
          f"{stats['admission']['state']})")
    ex = stats["executor"]
    print(f"executor: {ex['workers']} workers, {ex['dispatched']} "
          f"dispatched, {ex['pool_reuses']} pool reuses, "
          f"{ex['quarantined']} quarantined")
    brk = ex["breaker"]
    print(f"pool breaker: state {brk['state']}, {brk['opens']} open(s), "
          f"{brk['consecutive_failures']} consecutive failure(s)")
    if last_report is not None:
        print(f"last batch: {last_report.to_dict()}")
    if stats["cache"] is not None:
        print(f"cache: {stats['cache']}")
    print(f"identical results: {identical}")
    return 0 if identical else 1


def _cmd_bench_service(args) -> int:
    from repro.parallel.bench import write_benchmark
    from repro.service.bench import run_service_benchmark

    # --workers 1 (the global default) would serve in-process; a service
    # exists to own a pool, so use every core unless told otherwise.
    workers = args.workers if args.workers > 1 else None
    payload = run_service_benchmark(
        workers=workers, seed=args.seed, requests=args.requests,
        problems_per_request=args.problems_per_request)
    write_benchmark(payload, args.out)
    print(f"serial        {payload['serial_seconds']:.4f}s")
    print(f"per-call pool {payload['per_call_seconds']:.4f}s "
          f"({payload['workers']} workers/call)")
    print(f"service       {payload['service_seconds']:.4f}s "
          f"({payload['speedup']:.2f}x vs per-call)")
    ex = payload["executor"]
    print(f"pool reuses: {ex['pool_reuses']}, dispatched: "
          f"{ex['dispatched']}, quarantined: {ex['quarantined']}")
    print(f"identical results: {payload['identical']}")
    print(f"written to {args.out}")
    ok = payload["identical"] and payload["speedup"] >= 1.5
    return 0 if ok else 1


def _cmd_chaos(args) -> int:
    from repro.parallel.bench import write_benchmark
    from repro.resilience.chaos import ChaosPolicy, run_chaos_benchmark

    if args.only:
        ids = [e.strip().upper() for e in args.only.split(",") if e.strip()]
    else:
        ids = None
    spec = args.spec if args.spec is not None else args.chaos
    policy = ChaosPolicy.parse(spec) if spec else None
    # --workers 1 (the global default) would skip the process pool and
    # never exercise worker kills; use every core unless told otherwise.
    workers = args.workers if args.workers > 1 else None
    payload = run_chaos_benchmark(workers=workers, seed=args.seed, ids=ids,
                                  policy=policy)
    write_benchmark(payload, args.out)
    print(f"plain      {payload['plain_seconds']:.3f}s "
          f"({payload['workers']} workers)")
    print(f"supervised {payload['supervised_seconds']:.3f}s "
          f"({payload['supervision_overhead']:.2f}x)")
    print(f"chaos      {payload['chaos_seconds']:.3f}s "
          f"({payload['recovery_overhead']:.2f}x vs supervised)")
    print(f"schedule: {payload['chaos']}")
    ex = payload["executor"]
    print(f"recovery: {ex['retries']} retries, {ex['pool_breaks']} pool "
          f"breaks, {ex['respawns']} respawns, "
          f"{ex['quarantined']} quarantined")
    brk = ex["breaker"]
    print(f"breaker: state {brk['state']}, {brk['opens']} open(s), "
          f"{brk['consecutive_failures']} consecutive failure(s)")
    if payload["report"] is not None:
        print(f"last batch: {payload['report']}")
    print(f"identical results: {payload['identical']}")
    print(f"written to {args.out}")
    return 0 if payload["identical"] and not ex["quarantined"] else 1


def _lab_fixture(args):
    """The ``(analysis, catalogue, label)`` for ``repro lab --system``."""
    if args.system == "hiperd":
        from repro.systems.hiperd import (QoSSpec, build_analysis,
                                          generate_hiperd_system)
        from repro.systems.hiperd.scenarios import hiperd_scenario_catalogue

        system = generate_hiperd_system(seed=args.seed)
        qos = QoSSpec(latency_slack=args.latency_slack)
        analysis = build_analysis(system, qos, seed=args.seed,
                                  solver_timeout=args.solver_timeout)
        catalogue = hiperd_scenario_catalogue(analysis, n_steps=args.steps)
        return analysis, catalogue, "hiperd"

    if args.system == "selfhost":
        from repro.systems.selfhost import (SelfhostSystem,
                                            selfhost_scenario_catalogue)

        system = SelfhostSystem.baseline(seed=args.seed)
        analysis = system.robustness_analysis(
            args.beta, seed=args.seed, solver_timeout=args.solver_timeout)
        catalogue = selfhost_scenario_catalogue(system, n_steps=args.steps)
        return analysis, catalogue, "selfhost"

    from repro.systems.heuristics import MCT
    from repro.systems.independent import generate_etc_gamma
    from repro.systems.independent.makespan import MakespanSystem
    from repro.systems.independent.scenarios import (
        makespan_scenario_catalogue,
    )

    etc = generate_etc_gamma(args.tasks, args.machines, seed=args.seed)
    system = MakespanSystem(etc, MCT().allocate(etc))
    analysis = system.robustness_analysis(beta=args.beta, seed=args.seed)
    catalogue = makespan_scenario_catalogue(system, args.beta,
                                            n_steps=args.steps)
    return analysis, catalogue, "makespan"


def _cmd_lab(args) -> int:
    import contextlib

    from repro.exceptions import SpecificationError
    from repro.parallel.bench import write_benchmark
    from repro.scenarios import (
        RobustnessGates,
        parse_gate,
        parse_shock_spec,
        run_lab,
    )

    analysis, catalogue, label = _lab_fixture(args)
    if args.scenarios:
        wanted = [n.strip() for n in args.scenarios.split(",") if n.strip()]
        have = {sc.name: sc for sc in catalogue}
        unknown = [n for n in wanted if n not in have]
        if unknown:
            raise SpecificationError(
                f"unknown scenario(s) {unknown}; catalogue has "
                f"{sorted(have)}")
        catalogue = [have[n] for n in wanted]
    for spec in args.shock or ():
        catalogue.append(parse_shock_spec(spec))
    gates = None
    if args.gate:
        gates = RobustnessGates(dict(parse_gate(g) for g in args.gate))

    executor = _make_executor(args)
    if executor is None and args.workers > 1:
        from repro.resilience.supervisor import (SupervisedExecutor,
                                                 SupervisorConfig)
        executor = SupervisedExecutor(args.workers, config=SupervisorConfig(),
                                      seed=args.seed)
    with executor if executor is not None else contextlib.nullcontext():
        payload = run_lab(
            analysis, catalogue, seed=args.seed,
            n_trajectories=args.trajectories, n_boot=args.boot,
            block=args.block, gates=gates, executor=executor,
            system=label, ablate=args.ablate)
    write_benchmark(payload, args.out)

    print(f"system {label}: rho = {payload['rho']} "
          f"(weighting {payload['weighting']}, norm {payload['norm']:g})")
    for entry in payload["scenarios"]:
        ci = entry["bootstrap"]
        verdict = ""
        if entry["gates"] is not None:
            verdict = ("  gates PASS" if entry["gates"]["passed"]
                       else "  gates FAIL")
        sc = entry["scenario"]
        print(f"  {sc['name']:<18} ({sc['kind']:<10}) "
              f"violation rate {entry['violation_rate']:.3f} "
              f"CI [{ci['lo']:.3f}, {ci['hi']:.3f}] "
              f"predicted {entry['predicted_violation_rate']:.3f} "
              f"brackets={entry['ci_brackets_prediction']}{verdict}")
    abl = payload["ablation"]
    print(f"ablation of {abl['scenario']}: dominant kind "
          f"{abl['dominant_param']} (rank agreement with per-parameter "
          f"radii: {abl['rank_agreement']})")
    print(f"written to {args.out}")
    return 0 if payload["gates_passed"] else 1


def _cmd_selfhost(args) -> int:
    from repro.exceptions import SpecificationError
    from repro.parallel.bench import write_benchmark
    from repro.resilience.calibrate import run_selfhost_loop
    from repro.systems.selfhost import SelfhostSystem

    try:
        ratios = tuple(float(r) for r in args.ratios.split(",") if r.strip())
    except ValueError:
        raise SpecificationError(
            f"--ratios must be comma-separated numbers, got {args.ratios!r}")
    system = SelfhostSystem.baseline(args.tasks, args.model_workers,
                                     seed=args.seed)
    payload = run_selfhost_loop(
        system, beta=args.beta, seed=args.seed, ratios=ratios,
        quarantine_budget=args.quarantine_budget,
        runtime_workers=max(1, args.workers),
        solver_workers=max(1, args.workers))
    write_benchmark(payload, args.out)

    print(f"selfhost ({args.tasks} tasks on {args.model_workers} modelled "
          f"workers): rho = {payload['rho']:.4f}, critical feature "
          f"{payload['critical_feature']} (beta {payload['beta']:g})")
    for name, entry in payload["radii"].items():
        radius = entry["radius"]
        shown = "inf" if radius is None else f"{radius:.4f}"
        print(f"  radius {name:<22} {shown:>8} "
              f"({entry['method']}, {entry['quality']})")
    cal = payload["calibration"]
    print(f"calibration: max_task_retries {cal['max_task_retries']} "
          f"(boundary needs {cal['required_retries']}), quarantined mass at "
          f"boundary {cal['boundary_quarantined_mass']:.3f} < budget "
          f"{cal['quarantine_budget']:g}")
    crit = payload["critical_feature"]
    for leg in payload["legs"]:
        side = "IN " if leg["inside_radius"] else "OUT"
        rep = leg["report"]
        inj = ", ".join(f"{k}={v}"
                        for k, v in leg["injections"].items()) or "none"
        mf = leg["measured_features"][crit]
        pred = "feasible" if leg["predicted_feasible"] else "VIOLATES"
        meas = "feasible" if leg["measured_feasible"] else "VIOLATES"
        print(f"  {side} ratio {leg['ratio']:g}: predicted {pred}, "
              f"measured {meas} ({crit} {mf['value']:.3f} vs bound "
              f"{mf['bound']:.3f})")
        print(f"      injections: {inj}; report: {rep['ok']}/{rep['tasks']} "
              f"ok, {rep['retries']} retries over {rep['waves']} wave(s), "
              f"{rep['quarantined']} quarantined, quality {rep['quality']}")
    print(f"in-radius recovered:    {payload['in_radius_recovered']}")
    print(f"out-of-radius violates: {payload['out_of_radius_violates']}")
    print(f"closed loop:            {payload['closed_loop']}")
    print(f"written to {args.out}")
    return 0 if payload["closed_loop"] else 1


def _cmd_topology(args) -> int:
    from repro.systems.hiperd import QoSSpec, generate_hiperd_system
    from repro.systems.hiperd.topology import topology_report

    system = generate_hiperd_system(seed=args.seed)
    print(system)
    print()
    print(topology_report(system,
                          QoSSpec(latency_slack=args.latency_slack),
                          top_k=args.top))
    return 0


def _cmd_stats(args) -> int:
    from repro.observability import render_report

    print(render_report(args.trace_file, events_tail=args.events))
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "degeneracy": _cmd_degeneracy,
    "heuristics": _cmd_heuristics,
    "hiperd": _cmd_hiperd,
    "tradeoff": _cmd_tradeoff,
    "failures": _cmd_failures,
    "placement": _cmd_placement,
    "experiments": _cmd_experiments,
    "bench-parallel": _cmd_bench_parallel,
    "bench-solvers": _cmd_bench_solvers,
    "bench-radii": _cmd_bench_radii,
    "curve": _cmd_curve,
    "bench-sweep": _cmd_bench_sweep,
    "serve": _cmd_serve,
    "bench-service": _cmd_bench_service,
    "chaos": _cmd_chaos,
    "lab": _cmd_lab,
    "selfhost": _cmd_selfhost,
    "topology": _cmd_topology,
    "stats": _cmd_stats,
}


def log_level(verbosity: int) -> int | None:
    """Map the ``-v`` count to a logging level.

    ``0`` leaves logging unconfigured (``None``), ``1`` (-v) enables
    INFO progress lines, ``2`` or more (-vv) the full DEBUG trail.
    """
    import logging

    if verbosity <= 0:
        return None
    return logging.INFO if verbosity == 1 else logging.DEBUG


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    from repro.exceptions import SpecGrammarError

    args = build_parser().parse_args(argv)
    level = log_level(args.verbose)
    if level is not None:
        import logging
        logging.basicConfig(
            level=level,
            format="%(levelname)s %(name)s: %(message)s")
    if not args.no_cache:
        from repro.parallel.cache import install_default_cache
        install_default_cache()
    try:
        if args.trace:
            from repro.observability import Observability, observing, span
            obs = Observability()
            with observing(obs):
                with span(f"cli.{args.command}", seed=args.seed):
                    code = _COMMANDS[args.command](args)
            path = obs.write(args.trace, command=args.command, seed=args.seed)
            print(f"trace written to {path}", file=sys.stderr)
            return code
        return _COMMANDS[args.command](args)
    except SpecGrammarError as exc:
        # A malformed --chaos/--shock spec is a usage error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
