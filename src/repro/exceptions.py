"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError`` from
misuse of the Python API itself, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SpecificationError",
    "SpecGrammarError",
    "DimensionMismatchError",
    "UnitMismatchError",
    "SolverError",
    "BoundaryNotFoundError",
    "InfeasibleAllocationError",
    "ConvergenceError",
    "SolverTimeoutError",
    "CheckpointError",
    "DegradedResultWarning",
    "ServiceOverloadError",
    "ServiceClosedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SpecificationError(ReproError):
    """An analysis component (feature, perturbation, mapping) is ill-specified.

    Raised, for example, when a tolerance interval is empty, when a
    perturbation parameter has non-positive original values but a
    normalized weighting is requested, or when a mapping is attached to a
    perturbation parameter of the wrong dimension.
    """


class SpecGrammarError(SpecificationError, ValueError):
    """A compact CLI spec string (``--chaos``, ``--shock``) failed to parse.

    Carries the offending token and the grammar in its message so the
    user sees what was wrong and what would have been accepted, instead
    of an internal traceback.  Derives from :class:`ValueError` so
    generic argument-validation handlers catch it too.

    Attributes
    ----------
    token:
        The exact spec fragment that failed to parse (``None`` when the
        whole spec is unusable, e.g. empty or not a string).
    grammar:
        One-line description of the accepted grammar.
    """

    def __init__(self, message: str, *, token: str | None = None,
                 grammar: str | None = None) -> None:
        detail = message
        if token is not None:
            detail += f" (bad token: {token!r})"
        if grammar:
            detail += f"; expected {grammar}"
        super().__init__(detail)
        self.token = token
        self.grammar = grammar


class DimensionMismatchError(SpecificationError):
    """Vector dimensions disagree (e.g. gradient length vs. parameter length)."""


class UnitMismatchError(SpecificationError):
    """Quantities with different units were combined without a weighting.

    This is the error the IPDPS'05 paper is *about*: elements with different
    units must not be concatenated into one perturbation vector, because the
    Euclidean norm of the concatenation would add unlike units.  The library
    raises this error instead of silently computing a meaningless radius.
    """


class SolverError(ReproError):
    """A robustness-radius solver failed to produce a usable answer."""


class BoundaryNotFoundError(SolverError):
    """No boundary point ``f(pi) = beta`` exists in the searched region.

    A system whose feature can never reach its tolerance bound has infinite
    robustness radius; solvers raise this so the caller can map it to
    ``math.inf`` explicitly rather than returning an arbitrary large number.
    """


class ConvergenceError(SolverError):
    """An iterative solver exhausted its budget without converging."""


class SolverTimeoutError(SolverError):
    """A solver exceeded its wall-clock budget.

    Raised by the resilient cascade's timeout wrapper
    (:func:`repro.resilience.timeouts.call_with_timeout`); the cascade
    treats it as a signal to degrade to the next, cheaper solver rather
    than as a fatal error.
    """


class CheckpointError(ReproError):
    """A checkpoint file is unusable for the requested run.

    Raised when a checkpoint's recorded run metadata (seed, sample counts,
    chunking) disagrees with the resuming run's — resuming would silently
    mix results from two different experiments."""


class DegradedResultWarning(UserWarning):
    """A radius computation completed in a degraded mode.

    Emitted (via :mod:`warnings`) when the resilient cascade returns an
    ``UPPER_BOUND`` or ``FAILED`` quality result instead of an exact or
    converged radius, so non-interactive sweeps leave an audit trail
    without aborting."""


class ServiceOverloadError(ReproError):
    """The radius service shed a request under overload.

    Raised by :meth:`repro.service.RadiusService.submit` when the bounded
    request queue is full or the admission circuit breaker is open.  The
    request was *not* enqueued; the caller may retry later or fall back
    to the in-process library path (``compute_radii`` without a service),
    which always works."""


class ServiceClosedError(ReproError):
    """An operation was attempted on a closed :class:`RadiusService`."""


class InfeasibleAllocationError(ReproError):
    """A resource allocation violates its QoS constraints at the *original*
    (unperturbed) operating point, so its robustness is undefined (there is
    no robust region to measure the radius of)."""
