"""Reproduction of the paper's Figure 1.

Figure 1 shows, for a single feature ``phi_i`` and a two-element
perturbation vector, the boundary curve ``{pi : f(pi) = beta_max}``, the
original operating point ``pi_orig``, several candidate directions of
increase, and the minimum-distance boundary point ``pi*`` whose distance is
the robustness radius.  (The ``beta_min`` boundary is the coordinate axes
in the paper's example.)

:func:`boundary_figure` regenerates all of this as data — the curve points,
the witness, the radius — and :class:`BoundaryFigure` renders it as an
ASCII raster so the shape can be inspected without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import ToleranceBounds
from repro.core.mappings import FeatureMapping
from repro.core.radius import RadiusProblem, RadiusResult, compute_radius
from repro.core.solvers.bisection import directional_crossing
from repro.exceptions import SpecificationError
from repro.utils.ascii_plot import AsciiCanvas

__all__ = ["BoundaryFigure", "boundary_figure"]


@dataclass(frozen=True)
class BoundaryFigure:
    """The data behind a Figure-1-style boundary plot.

    Attributes
    ----------
    boundary_points:
        ``(m, 2)`` points on the curve ``f(pi) = bound``.
    origin:
        The original operating point ``pi_orig``.
    witness:
        The minimum-distance boundary point ``pi*`` (the robustness-radius
        witness).
    radius:
        The robustness radius.
    bound:
        The bound value the curve traces.
    """

    boundary_points: np.ndarray
    origin: np.ndarray
    witness: np.ndarray | None
    radius: float
    bound: float

    def render(self, *, width: int = 72, height: int = 24,
               window_radii: float = 4.0) -> str:
        """ASCII rendering: curve ``.``, origin ``O``, witness ``*``.

        Parameters
        ----------
        width, height:
            Raster size.
        window_radii:
            Only boundary points within this many robustness radii of the
            original point are drawn, so distant crossings cannot zoom the
            interesting region out of view.
        """
        pts = self.boundary_points
        if self.witness is not None and np.isfinite(self.radius) \
                and self.radius > 0:
            dists = np.linalg.norm(pts - self.origin, axis=1)
            keep = dists <= window_radii * self.radius
            if np.any(keep):
                pts = pts[keep]
        xs = np.concatenate([pts[:, 0], [self.origin[0]]])
        ys = np.concatenate([pts[:, 1], [self.origin[1]]])
        if self.witness is not None:
            xs = np.concatenate([xs, [self.witness[0]]])
            ys = np.concatenate([ys, [self.witness[1]]])
        pad_x = 0.08 * (xs.max() - xs.min() + 1e-12)
        pad_y = 0.08 * (ys.max() - ys.min() + 1e-12)
        canvas = AsciiCanvas(
            width, height,
            (float(xs.min() - pad_x), float(xs.max() + pad_x)),
            (float(ys.min() - pad_y), float(ys.max() + pad_y)))
        canvas.plot_points(np.asarray(pts)[:, 0], np.asarray(pts)[:, 1], ".")
        if self.witness is not None:
            canvas.plot_line(self.origin[0], self.origin[1],
                             self.witness[0], self.witness[1], "-")
            canvas.plot_points([self.witness[0]], [self.witness[1]], "*")
        canvas.plot_points([self.origin[0]], [self.origin[1]], "O")
        title = (f"boundary f(pi) = {self.bound:.4g}; "
                 f"radius = {self.radius:.4g} (O: orig, *: pi*)")
        return canvas.render(xlabel="pi_1", ylabel="pi_2", title=title)


def boundary_figure(
    mapping: FeatureMapping,
    origin,
    bounds: ToleranceBounds,
    *,
    n_curve_points: int = 256,
    sweep_degrees: tuple[float, float] = (0.0, 90.0),
    t_max: float = 1e6,
    seed=None,
) -> BoundaryFigure:
    """Trace the ``beta_max`` boundary curve around a 2-D original point.

    Boundary points are found by ray-casting from the original point over a
    fan of directions (so curved boundaries — e.g. the bilinear HiPer-D
    computation times — are traced faithfully, not just hyperplanes), and
    the robustness radius and its witness come from
    :func:`~repro.core.radius.compute_radius`.

    Parameters
    ----------
    mapping:
        The 2-input feature.
    origin:
        The original point.
    bounds:
        Tolerance interval; the curve traces ``beta_max`` (the paper's
        Figure 1 convention).
    n_curve_points:
        Number of ray directions in the fan.
    sweep_degrees:
        Angular range of the fan (default: the positive quadrant, since
        perturbations in the paper's figure grow from the origin).
    t_max:
        Ray-casting range limit.
    seed:
        Seed for the radius solver.

    Notes
    -----
    Ray directions are scaled per axis by the magnitude of the original
    point, so a problem whose two coordinates live on very different
    scales (e.g. a unit execution time of milliseconds against a load of
    hundreds of objects) is traced uniformly in *relative* terms rather
    than collapsing onto one axis.
    """
    origin = np.asarray(origin, dtype=np.float64)
    if origin.size != 2 or mapping.n_inputs != 2:
        raise SpecificationError("boundary_figure requires a 2-D problem")
    if not np.isfinite(bounds.beta_max):
        raise SpecificationError("boundary_figure traces beta_max; it must "
                                 "be finite")
    angles = np.deg2rad(np.linspace(sweep_degrees[0], sweep_degrees[1],
                                    n_curve_points))
    # Per-axis direction scaling: trace uniformly in relative coordinates.
    axis_scale = np.where(np.abs(origin) > 0, np.abs(origin), 1.0)
    pts = []
    for theta in angles:
        d = np.array([np.cos(theta), np.sin(theta)]) * axis_scale
        norm = float(np.linalg.norm(d))
        if norm == 0.0:
            continue
        d = d / norm
        t = directional_crossing(mapping, origin, d, bounds.beta_max,
                                 t_max=t_max)
        if t is not None:
            pts.append(origin + t * d)
    if not pts:
        raise SpecificationError(
            "no boundary crossing found in the swept fan; the feature may "
            "never reach beta_max in these directions")
    problem = RadiusProblem(mapping=mapping, origin=origin, bounds=bounds)
    result: RadiusResult = compute_radius(problem, seed=seed)
    return BoundaryFigure(
        boundary_points=np.asarray(pts),
        origin=origin,
        witness=result.boundary_point,
        radius=result.radius,
        bound=float(bounds.beta_max),
    )
