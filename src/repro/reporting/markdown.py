"""GitHub-markdown rendering of reports and experiment results.

The ASCII tables are for terminals; these renderers produce the pipe
tables used in ``EXPERIMENTS.md`` and project READMEs, so documentation
can be regenerated from the same objects the experiments return.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.analysis.experiments import ExperimentResult
from repro.core.metric import RobustnessReport

__all__ = ["markdown_table", "experiment_to_markdown", "report_to_markdown"]


def _cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value).replace("|", "\\|")


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                   *, float_fmt: str = ".6g") -> str:
    """Render a GitHub pipe table.

    Parameters
    ----------
    headers, rows:
        Column titles and row tuples; floats use ``float_fmt``, pipes in
        cells are escaped.
    """
    str_rows = [[_cell(c, float_fmt) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}")
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def experiment_to_markdown(result: ExperimentResult, *,
                           float_fmt: str = ".6g",
                           include_summary: bool = True) -> str:
    """Render an :class:`ExperimentResult` as a markdown section.

    Multi-line summary values (embedded ASCII plots) are placed in fenced
    code blocks so they survive markdown rendering.
    """
    parts = [f"### {result.experiment_id} — {result.title}", "",
             markdown_table(result.headers, result.rows,
                            float_fmt=float_fmt)]
    if include_summary and result.summary:
        parts.append("")
        for key, value in result.summary.items():
            text = str(value)
            if "\n" in text:
                parts.append(f"**{key}**:\n\n```\n{text.strip()}\n```")
            else:
                parts.append(f"- **{key}**: {text}")
    return "\n".join(parts)


def report_to_markdown(report: RobustnessReport, *,
                       float_fmt: str = ".6g") -> str:
    """Render a :class:`RobustnessReport` as a markdown section."""
    headers = ["feature", "radius", "phi_orig", "beta_min", "beta_max",
               "bound hit", "solver", "critical"]
    rows = []
    for r in report.rows:
        rows.append([
            r.feature, r.radius, r.original_value, r.beta_min, r.beta_max,
            "-" if r.bound_hit is None else format(r.bound_hit, float_fmt),
            r.method, "yes" if r.is_critical else "",
        ])
    head = (f"**rho = {report.rho:{float_fmt}}** "
            f"(weighting: {report.weighting}, norm: l{report.norm})")
    return head + "\n\n" + markdown_table(headers, rows, float_fmt=float_fmt)
