"""Reporting: boundary-figure generation (the paper's Figure 1) and
combined robustness/validation reports."""

from repro.reporting.figures import BoundaryFigure, boundary_figure
from repro.reporting.report import full_report
from repro.reporting.markdown import (
    experiment_to_markdown,
    markdown_table,
    report_to_markdown,
)

__all__ = [
    "BoundaryFigure",
    "boundary_figure",
    "full_report",
    "markdown_table",
    "experiment_to_markdown",
    "report_to_markdown",
]
