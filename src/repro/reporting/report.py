"""Combined robustness + validation reporting."""

from __future__ import annotations

from repro.core.fepia import RobustnessAnalysis
from repro.core.metric import robustness_metric
from repro.montecarlo.validate import validate_analysis
from repro.utils.tables import format_table

__all__ = ["full_report"]


def full_report(analysis: RobustnessAnalysis, *, validate: bool = True,
                n_samples: int = 5000, seed=None) -> str:
    """Render the robustness report, optionally with MC validation rows.

    Parameters
    ----------
    analysis:
        The configured analysis.
    validate:
        Append a per-feature Monte-Carlo soundness/tightness table.
    n_samples:
        Samples per feature for the validation.
    seed:
        Validation RNG seed.

    Returns
    -------
    str
        A multi-section text report.
    """
    sections = [robustness_metric(analysis).to_table()]
    if validate:
        checks = validate_analysis(analysis, n_samples=n_samples, seed=seed)
        rows = [
            [name, "yes" if v.sound else "NO", "yes" if v.tight else "NO",
             v.n_samples, v.min_violation_distance]
            for name, v in checks.items()
        ]
        sections.append(format_table(
            ["feature", "sound", "tight", "samples", "closest violation"],
            rows, title="Monte-Carlo validation"))
    return "\n\n".join(sections)
