"""Nestable spans with monotonic timings, recorded per process.

A :class:`Span` times one logical operation — a radius solve, a cascade
tier, a parallel dispatch — and remembers its parent, so a run unrolls
into a tree: *where did the time go?*  Spans record into a
:class:`TraceRecorder`, which is deliberately per-process: worker
processes each build their own recorder around the task they execute and
ship the finished spans home inside the task result, where the parent
recorder merges them **in submission order** (see
:meth:`TraceRecorder.absorb`).  That keeps the library's determinism
contract intact — the wall-clock numbers a trace carries are
observational metadata and never feed back into any computed result.

The module holds no global state; :mod:`repro.observability.runtime`
owns the process-wide active recorder and the zero-cost-when-disabled
``span(...)`` helper that instrumented call sites use.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["Span", "TraceRecorder"]


@dataclass
class Span:
    """One timed operation in the trace tree.

    Attributes
    ----------
    name:
        Dotted operation label, e.g. ``"radius.solve"``.
    span_id:
        Recorder-local id; ids are assigned in span *start* order, and a
        merge re-assigns them so ordering stays meaningful.
    parent_id:
        Enclosing span's id (``None`` for a root span).
    start:
        Seconds since the owning recorder's monotonic epoch.
    elapsed:
        Wall-clock duration in seconds (``None`` while the span is open).
    tags:
        Free-form annotations (feature name, solver, worker pid, ...).
        Call sites may add outcome tags to the yielded span before it
        closes.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    elapsed: float | None = None
    tags: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict:
        """JSON-safe encoding of this span (a ``"span"`` trace record)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "elapsed": self.elapsed,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_record(cls, record: Mapping) -> "Span":
        """Inverse of :meth:`to_record`."""
        return cls(
            name=str(record["name"]),
            span_id=int(record["id"]),
            parent_id=(None if record.get("parent") is None
                       else int(record["parent"])),
            start=float(record.get("start", 0.0)),
            elapsed=(None if record.get("elapsed") is None
                     else float(record["elapsed"])),
            tags=dict(record.get("tags", {})),
        )


class TraceRecorder:
    """Per-process span collector with a shared nesting stack.

    The stack is process-wide rather than thread-local on purpose: the
    resilience layer runs solver bodies on helper threads while the
    calling thread blocks on the result
    (:func:`~repro.resilience.timeouts.call_with_timeout`), and the
    blocked caller's open span *is* the logical parent of whatever the
    helper thread does.  All mutation happens under one lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def start_span(self, name: str, tags: Mapping[str, Any] | None = None
                   ) -> Span:
        """Open a span nested under the currently active one."""
        t = time.perf_counter() - self._epoch
        with self._lock:
            span = Span(
                name=name,
                span_id=self._next_id,
                parent_id=self._stack[-1].span_id if self._stack else None,
                start=t,
                tags=dict(tags) if tags else {},
            )
            self._next_id += 1
            self._spans.append(span)
            self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close a span (tolerates out-of-order closes from helper threads)."""
        elapsed = time.perf_counter() - self._epoch - span.start
        with self._lock:
            span.elapsed = elapsed
            if span in self._stack:
                # Pop everything above it too: a helper thread that
                # abandoned an inner span must not re-parent later spans.
                while self._stack and self._stack[-1] is not span:
                    self._stack.pop()
                if self._stack:
                    self._stack.pop()

    def current_span(self) -> Span | None:
        """The innermost open span, or ``None`` at the top level."""
        with self._lock:
            return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # inspection / merge
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Snapshot of every recorded span, in start order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def to_records(self) -> list[dict]:
        """Every span as a JSON-safe record, in start order."""
        return [s.to_record() for s in self.spans()]

    def absorb(self, records: Iterable[Mapping], *,
               extra_tags: Mapping[str, Any] | None = None) -> None:
        """Merge spans captured in another process into this recorder.

        Ids are re-assigned (preserving the foreign start order) and the
        foreign roots are re-parented under this recorder's currently
        open span, so a worker's sub-tree hangs off the dispatch span
        that shipped it.  Callers absorb worker payloads in submission
        order, which keeps the merged trace deterministic in structure;
        the foreign ``start`` offsets are relative to the *worker's*
        epoch and are kept as-is (observational metadata only).
        """
        spans = [Span.from_record(r) for r in records]
        with self._lock:
            anchor = self._stack[-1].span_id if self._stack else None
            remap: dict[int, int] = {}
            for span in spans:
                remap[span.span_id] = self._next_id
                span.span_id = self._next_id
                self._next_id += 1
            for span in spans:
                if span.parent_id is not None and span.parent_id in remap:
                    span.parent_id = remap[span.parent_id]
                else:
                    span.parent_id = anchor
                if extra_tags:
                    for k, v in extra_tags.items():
                        span.tags.setdefault(k, v)
                self._spans.append(span)

    def __repr__(self) -> str:
        return (f"TraceRecorder(spans={len(self._spans)}, "
                f"open={len(self._stack)})")
