"""The process-wide observability session and its zero-cost-off helpers.

An :class:`Observability` bundles the three collectors — a
:class:`~repro.observability.trace.TraceRecorder`, a
:class:`~repro.observability.metrics.MetricsRegistry`, and an
:class:`~repro.observability.events.EventLog` — into one session that the
instrumented layers feed through three module-level helpers:

``span("radius.solve", feature=...)``
    context manager *and* decorator timing a nested operation;
``emit_event("cache.hit", key=...)``
    appends a discrete event;
``get_metrics().inc("cache.hits")``
    touches a named counter/gauge/histogram.

When no session is active (the default) all three are near-free: ``span``
yields ``None`` without touching a recorder, ``emit_event`` returns
immediately, and ``get_metrics`` hands out the shared no-op
:data:`~repro.observability.metrics.NULL_METRICS` registry — so the
instrumentation can live permanently on the hot paths.

Worker processes get their own session per task
(:func:`observed_call`), whose captured payload rides home inside the
task result; the parent merges payloads in submission order
(:meth:`Observability.absorb`), preserving the library's determinism
contract — timings are observational metadata, never inputs.
"""

from __future__ import annotations

import os
from contextlib import ContextDecorator, contextmanager
from typing import Any, Callable, Mapping

from repro.exceptions import SpecificationError
from repro.observability.events import EventLog, write_trace_records
from repro.observability.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.observability.trace import Span, TraceRecorder

__all__ = [
    "Observability",
    "enable_observability",
    "disable_observability",
    "get_observability",
    "observing",
    "span",
    "emit_event",
    "get_metrics",
    "observed_call",
]

_active: "Observability | None" = None


class Observability:
    """One observability session: trace recorder + metrics + event log."""

    def __init__(self) -> None:
        self.recorder = TraceRecorder()
        self.metrics = MetricsRegistry()
        self.events = EventLog()

    # ------------------------------------------------------------------
    # cross-process merge
    # ------------------------------------------------------------------
    def capture(self) -> dict:
        """Picklable payload of everything this session collected.

        Worker processes return this alongside their task result so the
        parent can merge it (:meth:`absorb`).
        """
        return {
            "pid": os.getpid(),
            "spans": self.recorder.to_records(),
            "metrics": self.metrics.snapshot(),
            "events": self.events.to_records(),
        }

    def absorb(self, payload: Mapping | None) -> None:
        """Merge a worker's captured payload into this session.

        Foreign spans are re-parented under the currently open span and
        tagged with the worker pid; counters/histograms add, gauges take
        the incoming value; events append in absorption order.  Absorbing
        payloads in task-submission order keeps the merged trace
        deterministic in structure.
        """
        if not payload:
            return
        extra = {"worker_pid": payload.get("pid")}
        self.recorder.absorb(payload.get("spans", ()), extra_tags=extra)
        self.metrics.absorb(payload.get("metrics", {}))
        self.events.absorb(payload.get("events", ()))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def write(self, path, **header_extra: Any):
        """Persist the session as a ``repro-events-v1`` JSON-lines file."""
        return write_trace_records(
            path, dict(header_extra, pid=os.getpid()),
            self.recorder.to_records(), self.metrics.snapshot(),
            self.events.to_records())

    def __repr__(self) -> str:
        return (f"Observability(spans={len(self.recorder)}, "
                f"metrics={len(self.metrics)}, events={len(self.events)})")


# ----------------------------------------------------------------------
# active-session management
# ----------------------------------------------------------------------
def enable_observability(obs: Observability | None = None) -> Observability:
    """Install ``obs`` (or a fresh session) as the active session."""
    global _active
    if obs is None:
        obs = Observability()
    if not isinstance(obs, Observability):
        raise SpecificationError(
            f"obs must be an Observability, got {type(obs).__name__}")
    _active = obs
    return obs


def disable_observability() -> None:
    """Deactivate observability (the helpers go back to no-ops)."""
    global _active
    _active = None


def get_observability() -> Observability | None:
    """The active session, or ``None`` when observability is disabled."""
    return _active


@contextmanager
def observing(obs: Observability | None = None):
    """Activate a session for the duration of a ``with`` block.

    Re-entrant: the previously active session (if any) is restored on
    exit, so nested scopes — a test inside a traced CLI run, a worker
    task — compose.
    """
    global _active
    previous = _active
    current = enable_observability(obs)
    try:
        yield current
    finally:
        _active = previous


def get_metrics() -> MetricsRegistry | NullMetricsRegistry:
    """The active session's metrics registry, or the no-op registry."""
    return _active.metrics if _active is not None else NULL_METRICS


def emit_event(kind: str, /, **fields: Any) -> None:
    """Append an event to the active session (no-op when disabled).

    ``kind`` is positional-only so a field may itself be named ``kind``.
    """
    if _active is not None:
        _active.events.emit(kind, **fields)


class span(ContextDecorator):
    """Time a nested operation: ``with span("radius.solve", feature=f):``.

    Usable as a context manager (yields the open
    :class:`~repro.observability.trace.Span`, or ``None`` when
    observability is disabled — guard before mutating ``tags``) and as a
    decorator (``@span("validate.feature")``), in which case activation
    is re-checked on every call, so decorating at import time is free.
    """

    def __init__(self, name: str, **tags: Any) -> None:
        self.name = name
        self.tags = tags
        self._span: Span | None = None
        self._recorder: TraceRecorder | None = None

    def _recreate_cm(self) -> "span":
        # ContextDecorator hook: a fresh instance per decorated call, so
        # one decorator object is safe under recursion and threads.
        return span(self.name, **self.tags)

    def __enter__(self) -> Span | None:
        if _active is not None:
            self._recorder = _active.recorder
            self._span = self._recorder.start_span(self.name, self.tags)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        if self._span is not None and self._recorder is not None:
            # Close against the recorder that opened the span, even if
            # the active session was swapped mid-span.
            self._recorder.end_span(self._span)
        self._span = None
        self._recorder = None
        return False


def observed_call(task: Callable[[], Any]) -> tuple[Any, dict | None]:
    """Run a task under a fresh observability session and capture it.

    The worker-side trampoline of the parallel executor: returns
    ``(result, payload)`` where ``payload`` is the session's
    :meth:`Observability.capture` (or ``None`` if nothing was recorded).
    Module-level so it pickles.
    """
    local = Observability()
    with observing(local):
        with span("parallel.task", pid=os.getpid()):
            result = task()
    payload = local.capture()
    return result, payload
