"""Render a captured trace file as a human-readable run summary.

``repro stats out.jsonl`` goes through :func:`render_report`, which reads
a ``repro-events-v1`` file and prints three sections:

* **span tree** — spans aggregated by name along their parent chain, with
  call counts and *total* vs *self* time (self = total minus the time
  spent in child spans), so "where did this run spend its time" is one
  glance: cascade tiers under radius solves under executor dispatch;
* **metric table** — every counter/gauge/histogram the run touched;
* **event tail** — the last N discrete events (tier transitions, cache
  traffic, retries, checkpoint saves ...).

Aggregation by name keeps the output bounded: a sweep with ten thousand
radius solves prints one ``radius.solve`` row per tree position, not ten
thousand lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.observability.events import TraceFile, read_trace_file
from repro.utils.tables import format_table

__all__ = ["render_report", "render_span_tree", "render_metrics",
           "render_events"]


@dataclass
class _Node:
    """One aggregated position in the span tree."""

    name: str
    count: int = 0
    total: float = 0.0
    child_time: float = 0.0
    children: dict[str, "_Node"] = field(default_factory=dict)
    first_id: int = 0  # for stable, chronological-ish ordering

    @property
    def self_time(self) -> float:
        return max(0.0, self.total - self.child_time)


def _build_tree(spans: list[Mapping]) -> _Node:
    """Aggregate raw span records into a name-keyed tree."""
    by_id = {s["id"]: s for s in spans}
    root = _Node(name="<run>")
    # Node lookup is by the *path* of names from the root, found by
    # walking each span's parent chain.
    node_of: dict[int, _Node] = {}
    for s in sorted(spans, key=lambda s: s["id"]):
        parent = s.get("parent")
        parent_node = node_of.get(parent, root) if parent is not None \
            else root
        node = parent_node.children.get(s["name"])
        if node is None:
            node = _Node(name=s["name"], first_id=s["id"])
            parent_node.children[s["name"]] = node
        node.count += 1
        elapsed = s.get("elapsed") or 0.0
        node.total += elapsed
        if parent is not None and parent in by_id:
            parent_node.child_time += elapsed
        node_of[s["id"]] = node
    return root


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.1f}s"
    if seconds >= 0.1:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.2f}ms"


def render_span_tree(spans: list[Mapping]) -> str:
    """The aggregated span tree with per-position count/total/self time."""
    if not spans:
        return "span tree: (no spans recorded)"
    root = _build_tree(spans)
    lines = [f"{'span':<44} {'count':>6} {'total':>10} {'self':>10}"]

    def walk(node: _Node, depth: int) -> None:
        label = "  " * depth + node.name
        lines.append(f"{label:<44} {node.count:>6} "
                     f"{_fmt_seconds(node.total):>10} "
                     f"{_fmt_seconds(node.self_time):>10}")
        for child in sorted(node.children.values(),
                            key=lambda n: n.first_id):
            walk(child, depth + 1)

    for top in sorted(root.children.values(), key=lambda n: n.first_id):
        walk(top, 0)
    return "span tree (total / self wall-clock time)\n" + "\n".join(lines)


def render_metrics(metrics: Mapping[str, Mapping]) -> str:
    """The metric table (counters, gauges, histogram summaries)."""
    if not metrics:
        return "metrics: (none recorded)"
    rows = []
    for name in sorted(metrics):
        state = metrics[name]
        kind = state.get("kind", "?")
        if kind == "histogram":
            count = int(state.get("count", 0))
            mean = (float(state.get("total", 0.0)) / count) if count else 0.0
            value = f"n={count} mean={_fmt_seconds(mean)}"
        else:
            value = f"{float(state.get('value', 0.0)):g}"
        rows.append([name, kind, value])
    return format_table(["metric", "kind", "value"], rows, title="metrics")


def render_events(events: list[Mapping], *, tail: int = 15) -> str:
    """The last ``tail`` events, one line each."""
    if not events:
        return "events: (none recorded)"
    shown = events[-tail:] if tail > 0 else []
    lines = [f"events (last {len(shown)} of {len(events)})"]
    for e in shown:
        fields = e.get("fields", {})
        detail = " ".join(f"{k}={v}" for k, v in fields.items())
        lines.append(f"  #{e.get('seq', '?'):>5}  {e.get('kind', '?'):<20} "
                     f"{detail}")
    return "\n".join(lines)


def render_report(path, *, events_tail: int = 15) -> str:
    """Full ``repro stats`` report for one ``repro-events-v1`` file."""
    trace: TraceFile = read_trace_file(path)
    header = trace.header
    intro = (f"trace {path} (schema {header.get('schema')}, "
             f"pid {header.get('pid', '?')}, {len(trace.spans)} spans, "
             f"{len(trace.events)} events)")
    return "\n\n".join([
        intro,
        render_span_tree(trace.spans),
        render_metrics(trace.metrics),
        render_events(trace.events, tail=events_tail),
    ])
