"""Process-wide counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` names metrics lazily — ``registry.inc("cache.hits")``
creates the counter on first touch — so instrumented call sites never
declare anything up front.  When observability is disabled the call sites
talk to :data:`NULL_METRICS` instead, whose every operation is a bare
``pass``: the instrumented hot paths (cache lookups, solver invocations)
cost one attribute call and nothing else.

Registries are mergeable: worker processes snapshot theirs into the task
result and the parent :meth:`MetricsRegistry.absorb`\\s them — counters
and histogram buckets add, gauges take the incoming value (last write
wins, matching their point-in-time semantics).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Mapping, Sequence

from repro.exceptions import SpecificationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetricsRegistry", "NULL_METRICS", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds, in seconds — tuned for solver
#: and dispatch latencies (an implicit +inf bucket always exists).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise SpecificationError(
                f"counters only increase; got increment {n}")
        self.value += n

    def snapshot(self) -> dict:
        """JSON-safe state of this counter."""
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def snapshot(self) -> dict:
        """JSON-safe state of this gauge."""
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``buckets`` are sorted upper bounds; an implicit overflow bucket
    catches everything beyond the last bound.  Only counts, the total,
    and the observation count are kept — no per-sample storage, so a
    histogram's memory cost is constant regardless of traffic.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise SpecificationError(
                f"buckets must be non-empty and strictly increasing, "
                f"got {buckets!r}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of the observed values (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-safe state of this histogram."""
        return {"kind": self.kind, "buckets": list(self.buckets),
                "counts": list(self.counts), "count": self.count,
                "total": self.total}


class MetricsRegistry:
    """Named metrics, created lazily on first touch.

    A name is bound to one metric kind for the registry's lifetime;
    touching ``"x"`` as a counter and later as a gauge raises, because a
    silent kind change would corrupt the merged numbers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, cls(*args))
        if not isinstance(metric, cls):
            raise SpecificationError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first touch)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first touch)."""
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram named ``name`` (created on first touch)."""
        return self._get(name, Histogram, buckets)

    # convenience single-call forms used by instrumented call sites ------
    def inc(self, name: str, n: float = 1.0) -> None:
        """Increment the counter ``name`` by ``n``."""
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        """Record ``value`` into the histogram ``name``."""
        self.histogram(name, buckets).observe(value)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Immutable JSON-safe copy of every metric, keyed by name.

        The returned structure shares nothing with the live registry;
        callers holding a snapshot never observe later mutation.
        """
        with self._lock:
            items = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(items)}

    def absorb(self, snapshot: Mapping[str, Mapping]) -> None:
        """Merge a foreign snapshot (e.g. from a worker process).

        Counters add; histogram buckets and totals add (bucket layouts
        must match); gauges take the incoming value.
        """
        for name, state in snapshot.items():
            kind = state.get("kind")
            if kind == "counter":
                self.counter(name).inc(float(state["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(state["value"]))
            elif kind == "histogram":
                hist = self.histogram(name, state["buckets"])
                if list(hist.buckets) != [float(b) for b in state["buckets"]]:
                    raise SpecificationError(
                        f"histogram {name!r} bucket layouts differ; "
                        "cannot merge")
                for i, c in enumerate(state["counts"]):
                    hist.counts[i] += int(c)
                hist.count += int(state["count"])
                hist.total += float(state["total"])
            else:
                raise SpecificationError(
                    f"unknown metric kind {kind!r} for {name!r}")

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self._metrics)})"


class NullMetricsRegistry(MetricsRegistry):
    """The disabled backend: every operation is a no-op.

    Instrumented call sites always talk to *some* registry; when
    observability is off they get this one, so the hot-path cost of an
    instrumented line is a method call that immediately returns.
    """

    def inc(self, name: str, n: float = 1.0) -> None:  # noqa: ARG002
        pass

    def set_gauge(self, name: str, value: float) -> None:  # noqa: ARG002
        pass

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        pass

    def snapshot(self) -> dict[str, dict]:
        return {}

    def absorb(self, snapshot: Mapping[str, Mapping]) -> None:
        pass


#: Shared no-op registry handed out while observability is disabled.
NULL_METRICS = NullMetricsRegistry()
