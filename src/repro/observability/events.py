"""Append-only event log and the ``repro-events-v1`` JSON-lines sink.

Events are the discrete happenings a trace's spans do not capture:
solver-tier transitions, fault injections, retries, checkpoint
saves/resumes, cache hits/misses/evictions, pool fallbacks.  An
:class:`EventLog` collects them in memory (cheap, append-only); the sink
functions serialise a whole observability session — header line, then
span / metric / event records, one JSON object per line — to a file that
:func:`read_trace_file` and ``repro stats`` consume.

Schema (``repro-events-v1``)
----------------------------
Line 1 is a header: ``{"schema": "repro-events-v1", ...}``.  Every
subsequent line carries a ``"type"`` of ``"span"``, ``"metric"`` or
``"event"``:

* span — ``id``, ``parent``, ``name``, ``start``, ``elapsed``, ``tags``;
* metric — ``name`` plus the metric's snapshot (``kind``, ``value`` /
  bucket state);
* event — ``seq``, ``t`` (seconds since the log's epoch), ``kind``,
  ``fields``.

:func:`validate_trace_file` is the single source of truth for
well-formedness; CI runs it against a freshly captured trace so schema
drift fails loudly.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.exceptions import SpecificationError

__all__ = ["EVENTS_SCHEMA", "Event", "EventLog", "TraceFile",
           "read_trace_file", "validate_trace_file"]

EVENTS_SCHEMA = "repro-events-v1"

#: Event kinds the instrumented layers emit.  The set is advisory — the
#: schema accepts any kind string — but keeping it here documents the
#: vocabulary in one place.
KNOWN_EVENT_KINDS = frozenset({
    "cascade.tier", "cascade.degraded",
    "fault.injected", "retry",
    "checkpoint.save", "checkpoint.resume",
    "cache.hit", "cache.miss", "cache.skip", "cache.evict",
    "pool.fallback",
})


@dataclass(frozen=True)
class Event:
    """One discrete happening.

    Attributes
    ----------
    seq:
        Log-local sequence number (re-assigned on merge, preserving
        submission order).
    t:
        Seconds since the owning log's monotonic epoch (observational).
    kind:
        Dotted event kind, e.g. ``"cache.hit"``.
    fields:
        JSON-safe payload describing the happening.
    """

    seq: int
    t: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict:
        """JSON-safe encoding of this event (an ``"event"`` trace record)."""
        return {"type": "event", "seq": self.seq, "t": self.t,
                "kind": self.kind, "fields": dict(self.fields)}

    @classmethod
    def from_record(cls, record: Mapping) -> "Event":
        """Inverse of :meth:`to_record`."""
        return cls(seq=int(record["seq"]), t=float(record.get("t", 0.0)),
                   kind=str(record["kind"]),
                   fields=dict(record.get("fields", {})))


class EventLog:
    """Append-only, thread-safe in-memory event collection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._events: list[Event] = []

    def emit(self, kind: str, /, **fields: Any) -> Event:
        """Append one event and return it.

        ``kind`` is positional-only so a field may itself be named
        ``kind`` (e.g. ``fault.injected`` events carry the fault kind).
        """
        t = time.perf_counter() - self._epoch
        with self._lock:
            event = Event(seq=len(self._events), t=t, kind=kind,
                          fields=fields)
            self._events.append(event)
        return event

    def events(self) -> list[Event]:
        """Snapshot of every event, in emission order."""
        with self._lock:
            return list(self._events)

    def tail(self, n: int) -> list[Event]:
        """The last ``n`` events."""
        with self._lock:
            return list(self._events[-n:]) if n > 0 else []

    def __len__(self) -> int:
        return len(self._events)

    def to_records(self) -> list[dict]:
        """Every event as a JSON-safe record, in emission order."""
        return [e.to_record() for e in self.events()]

    def absorb(self, records: Iterable[Mapping]) -> None:
        """Merge events captured in another process (re-sequenced).

        Foreign timestamps are relative to the *worker's* epoch and are
        kept as-is; only the sequence numbers are re-assigned so the
        merged log stays totally ordered in absorption order.
        """
        foreign = [Event.from_record(r) for r in records]
        with self._lock:
            for event in foreign:
                self._events.append(Event(
                    seq=len(self._events), t=event.t, kind=event.kind,
                    fields=event.fields))

    def __repr__(self) -> str:
        return f"EventLog(events={len(self._events)})"


# ----------------------------------------------------------------------
# JSON-lines sink
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceFile:
    """A parsed ``repro-events-v1`` file: header plus typed records."""

    header: dict
    spans: list[dict]
    metrics: dict[str, dict]
    events: list[dict]


def write_trace_records(path, header_extra: Mapping[str, Any],
                        span_records: Iterable[Mapping],
                        metric_snapshot: Mapping[str, Mapping],
                        event_records: Iterable[Mapping]) -> pathlib.Path:
    """Write one ``repro-events-v1`` JSON-lines file.

    The higher-level entry point is
    :meth:`repro.observability.runtime.Observability.write`; this function
    only knows about records, which keeps the schema in one module.
    """
    path = pathlib.Path(path)
    header = {"schema": EVENTS_SCHEMA, "written_at": time.time()}
    header.update(header_extra)
    lines = [json.dumps(header)]
    lines.extend(json.dumps(dict(r)) for r in span_records)
    lines.extend(json.dumps({"type": "metric", "name": name, **dict(state)})
                 for name, state in metric_snapshot.items())
    lines.extend(json.dumps(dict(r)) for r in event_records)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_trace_file(path) -> TraceFile:
    """Parse (and validate) a ``repro-events-v1`` file."""
    path = pathlib.Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise SpecificationError(f"unreadable trace file {path}: {exc}") \
            from exc
    problems: list[str] = []
    records: list[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i + 1}: not valid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {i + 1}: expected an object, "
                            f"got {type(record).__name__}")
            continue
        records.append(record)
    if not records:
        raise SpecificationError(f"{path} is empty; not a {EVENTS_SCHEMA} "
                                 "trace")
    header, body = records[0], records[1:]
    if header.get("schema") != EVENTS_SCHEMA:
        problems.append(f"header 'schema' must be {EVENTS_SCHEMA!r}, "
                        f"got {header.get('schema')!r}")
    spans: list[dict] = []
    metrics: dict[str, dict] = {}
    events: list[dict] = []
    for i, record in enumerate(body):
        rtype = record.get("type")
        where = f"record {i + 1}"
        if rtype == "span":
            missing = [f for f in ("id", "name", "tags") if f not in record]
            if missing:
                problems.append(f"{where}: span missing field(s) {missing}")
            else:
                spans.append(record)
        elif rtype == "metric":
            if "name" not in record or record.get("kind") not in (
                    "counter", "gauge", "histogram"):
                problems.append(f"{where}: metric needs a 'name' and a "
                                "known 'kind'")
            else:
                metrics[record["name"]] = record
        elif rtype == "event":
            missing = [f for f in ("seq", "kind") if f not in record]
            if missing:
                problems.append(f"{where}: event missing field(s) {missing}")
            else:
                events.append(record)
        else:
            problems.append(f"{where}: unknown record type {rtype!r}")
    if problems:
        raise SpecificationError(
            f"invalid {EVENTS_SCHEMA} trace {path}: " + "; ".join(problems))
    return TraceFile(header=header, spans=spans, metrics=metrics,
                     events=events)


def validate_trace_file(path) -> TraceFile:
    """Validate a trace file, returning the parsed records.

    Alias of :func:`read_trace_file` under the name CI and external
    tooling look for; raises
    :class:`~repro.exceptions.SpecificationError` listing every problem
    found.
    """
    return read_trace_file(path)
