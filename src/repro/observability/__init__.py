"""Tracing, metrics, and event-log observability for the whole stack.

The subsystem answers "where did this run spend its time, which solver
tiers fired, what was the cache hit rate, which chunks were retried?"
without changing a single computed number:

* :mod:`~repro.observability.trace` — nestable, mergeable spans;
* :mod:`~repro.observability.metrics` — counters / gauges / fixed-bucket
  histograms with a no-op null backend, so instrumented hot paths cost
  ~nothing while observability is disabled (the default);
* :mod:`~repro.observability.events` — an append-only event log and the
  schema-versioned ``repro-events-v1`` JSON-lines sink;
* :mod:`~repro.observability.runtime` — the process-wide session and the
  ``span`` / ``emit_event`` / ``get_metrics`` helpers the instrumented
  layers call;
* :mod:`~repro.observability.report` — the ``repro stats`` renderer.

Quick use::

    from repro.observability import Observability, observing

    obs = Observability()
    with observing(obs):
        analysis.rho()                 # instrumented layers record
    obs.write("run.jsonl")             # repro stats run.jsonl

Every CLI command accepts ``--trace PATH`` to do exactly this.
See ``docs/OBSERVABILITY.md`` for the schema and a walkthrough.
"""

from repro.observability.events import (
    EVENTS_SCHEMA,
    Event,
    EventLog,
    TraceFile,
    read_trace_file,
    validate_trace_file,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.observability.report import render_report
from repro.observability.runtime import (
    Observability,
    disable_observability,
    emit_event,
    enable_observability,
    get_metrics,
    get_observability,
    observed_call,
    observing,
    span,
)
from repro.observability.trace import Span, TraceRecorder

__all__ = [
    # session
    "Observability",
    "observing",
    "enable_observability",
    "disable_observability",
    "get_observability",
    # instrumentation helpers
    "span",
    "emit_event",
    "get_metrics",
    "observed_call",
    # tracing
    "Span",
    "TraceRecorder",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    # events + sink
    "Event",
    "EventLog",
    "EVENTS_SCHEMA",
    "TraceFile",
    "read_trace_file",
    "validate_trace_file",
    # reporting
    "render_report",
]
